//! Reference evaluator for algebra expressions.
//!
//! Implements the paper's model of computation (Section 3.2.1): operator
//! trees are evaluated left to right, bottom up; information about bound
//! variables flows from left to right through joins, and relational terms
//! are compiled to `foreach` (no variable bound), `get` (all bound) or
//! `slice` (some bound) accesses against the backing store — exactly the
//! access patterns the storage layer specializes for.
//!
//! The evaluator is written in continuation-passing style over a [`Catalog`]
//! abstraction, so the same code evaluates queries against plain hash-map
//! relations (tests, baselines, the re-evaluation strategy), against record
//! pools (the local execution engine) and against per-worker partitions (the
//! distributed runtime).

use crate::expr::{Expr, RelKind};
use crate::relation::Relation;
use crate::ring::Mult;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Access to stored relations during evaluation.
///
/// `kind` routes the lookup: `Base`/`View` hit materialized state, `Delta`
/// hits the update batch currently being processed.
pub trait Catalog {
    /// Iterate over all tuples of a relation.
    fn scan(&self, name: &str, kind: RelKind, f: &mut dyn FnMut(&Tuple, Mult));

    /// Multiplicity of an exact key (0 when absent).
    fn lookup(&self, name: &str, kind: RelKind, key: &Tuple) -> Mult;

    /// Iterate over tuples whose columns at `positions` equal `key_vals`.
    ///
    /// The default implementation scans and filters; storage backends
    /// override it with secondary-index lookups.
    fn slice(
        &self,
        name: &str,
        kind: RelKind,
        positions: &[usize],
        key_vals: &[Value],
        f: &mut dyn FnMut(&Tuple, Mult),
    ) {
        self.scan(name, kind, &mut |t, m| {
            if positions.iter().zip(key_vals).all(|(&p, v)| t.get(p) == v) {
                f(t, m);
            }
        });
    }
}

/// Variable bindings with stack discipline (push during evaluation of a
/// subtree, truncate on the way out).
#[derive(Default, Clone, Debug)]
pub struct Env {
    bindings: Vec<(String, Value)>,
}

impl Env {
    pub fn new() -> Self {
        Env::default()
    }

    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    pub fn push(&mut self, var: impl Into<String>, val: Value) {
        self.bindings.push((var.into(), val));
    }

    pub fn truncate(&mut self, len: usize) {
        self.bindings.truncate(len);
    }

    /// Latest binding of a variable, if any.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.bindings
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, val)| val)
    }

    pub fn is_bound(&self, var: &str) -> bool {
        self.get(var).is_some()
    }

    /// Project the environment onto a schema, panicking on unbound columns.
    pub fn project(&self, schema: &Schema) -> Tuple {
        Tuple(
            schema
                .iter()
                .map(|c| {
                    self.get(c)
                        .unwrap_or_else(|| panic!("column `{c}` unbound in result projection"))
                        .clone()
                })
                .collect(),
        )
    }
}

/// Evaluation statistics: number of storage operations issued.  These
/// counters are the substitute for the paper's CPU performance counters
/// (Table 2) and feed the distributed runtime's compute-cost model.
#[derive(Default, Clone, Copy, Debug, PartialEq)]
pub struct EvalCounters {
    pub scans: u64,
    pub lookups: u64,
    pub slices: u64,
    pub tuples_visited: u64,
    pub emissions: u64,
}

impl EvalCounters {
    /// Aggregate "instruction" count: a weighted sum of the storage
    /// operations performed, loosely modelling retired instructions.
    pub fn instructions(&self) -> u64 {
        self.scans * 8
            + self.lookups * 12
            + self.slices * 16
            + self.tuples_visited * 24
            + self.emissions * 8
    }

    pub fn add(&mut self, other: &EvalCounters) {
        self.scans += other.scans;
        self.lookups += other.lookups;
        self.slices += other.slices;
        self.tuples_visited += other.tuples_visited;
        self.emissions += other.emissions;
    }
}

/// The evaluator.  Holds mutable counters so callers can meter work.
pub struct Evaluator<'a> {
    catalog: &'a dyn Catalog,
    pub counters: EvalCounters,
}

impl<'a> Evaluator<'a> {
    pub fn new(catalog: &'a dyn Catalog) -> Self {
        Evaluator {
            catalog,
            counters: EvalCounters::default(),
        }
    }

    /// Evaluate an expression from an empty environment into a [`Relation`]
    /// over the expression's schema.
    pub fn eval(&mut self, expr: &Expr) -> Relation {
        self.eval_under(expr, &mut Env::new())
    }

    /// Evaluate an expression under an existing environment (used for
    /// correlated subqueries and by the trigger interpreter, which binds the
    /// current delta tuple before evaluating statement right-hand sides).
    pub fn eval_under(&mut self, expr: &Expr, env: &mut Env) -> Relation {
        let schema = {
            // Columns already bound by the caller stay out of the "result"
            // only if the expression projects them away; the natural output
            // schema is the right thing to materialize.
            expr.schema()
        };
        let mut rel = Relation::new(schema.clone());
        let base = env.len();
        self.stream(expr, env, &mut |env, m| {
            let t = env.project(&schema);
            rel.add(t, m);
        });
        env.truncate(base);
        rel
    }

    /// Core continuation-passing evaluation.  Calls `out` once per produced
    /// tuple with the environment extended by this expression's bindings.
    pub fn stream(&mut self, expr: &Expr, env: &mut Env, out: &mut dyn FnMut(&mut Env, Mult)) {
        match expr {
            Expr::Const(c) => {
                self.counters.emissions += 1;
                out(env, *c);
            }
            Expr::Val(v) => {
                let value = v.eval(&|name| env.get(name).cloned());
                self.counters.emissions += 1;
                out(env, value.as_f64());
            }
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(&|name| env.get(name).cloned());
                let r = rhs.eval(&|name| env.get(name).cloned());
                if op.eval(&l, &r) {
                    self.counters.emissions += 1;
                    out(env, 1.0);
                }
            }
            Expr::AssignVal { var, value } => {
                let v = value.eval(&|name| env.get(name).cloned());
                match env.get(var).cloned() {
                    Some(existing) => {
                        if existing == v {
                            out(env, 1.0);
                        }
                    }
                    None => {
                        let base = env.len();
                        env.push(var.clone(), v);
                        out(env, 1.0);
                        env.truncate(base);
                    }
                }
            }
            Expr::Rel(r) => self.stream_rel(r, env, out),
            Expr::Union(l, r) => {
                let base = env.len();
                self.stream(l, env, out);
                env.truncate(base);
                self.stream(r, env, out);
                env.truncate(base);
            }
            Expr::Join(l, r) => {
                // Information flows left to right: the right operand sees the
                // bindings produced by the left operand.
                let rc: &Expr = r;
                let this = self as *mut Evaluator<'a>;
                let base = env.len();
                // SAFETY-free alternative: we cannot call self.stream twice with
                // a closure capturing self mutably; restructure via explicit
                // recursion using a helper that re-borrows.
                let _ = this;
                self.stream_join(l, rc, env, out);
                env.truncate(base);
            }
            Expr::Sum { group_by, body } => {
                let groups = self.aggregate(body, group_by, env);
                self.emit_groups(group_by, groups, env, out, false);
            }
            Expr::Exists(q) => {
                let schema = q.schema();
                let groups = self.aggregate(q, &schema, env);
                self.emit_groups(&schema, groups, env, out, true);
            }
            Expr::AssignQuery { var, query } => {
                let schema = query.schema();
                let groups = self.aggregate(query, &schema, env);
                let all_prebound = schema.iter().all(|c| env.is_bound(c));
                if groups.is_empty() && all_prebound {
                    // Scalar nested aggregate over an empty input: SQL-style
                    // semantics yield the aggregate value 0.
                    let base = env.len();
                    if env.is_bound(var) {
                        if env.get(var) == Some(&Value::Double(0.0)) {
                            out(env, 1.0);
                        }
                    } else {
                        env.push(var.clone(), Value::Double(0.0));
                        out(env, 1.0);
                        env.truncate(base);
                    }
                    return;
                }
                let base = env.len();
                for (key, mult) in groups {
                    if mult == 0.0 {
                        continue;
                    }
                    let mut consistent = true;
                    for (c, v) in schema.iter().zip(key.0.iter()) {
                        match env.get(c) {
                            Some(existing) => {
                                if existing != v {
                                    consistent = false;
                                    break;
                                }
                            }
                            None => env.push(c.to_string(), v.clone()),
                        }
                    }
                    if consistent {
                        match env.get(var).cloned() {
                            Some(existing) => {
                                if existing == Value::Double(mult) {
                                    out(env, 1.0);
                                }
                            }
                            None => {
                                env.push(var.clone(), Value::Double(mult));
                                out(env, 1.0);
                            }
                        }
                    }
                    env.truncate(base);
                }
            }
        }
    }

    fn stream_join(
        &mut self,
        left: &Expr,
        right: &Expr,
        env: &mut Env,
        out: &mut dyn FnMut(&mut Env, Mult),
    ) {
        // Materialize the left side's emissions to avoid nested mutable
        // borrows of `self` inside the continuation.  Each emission captures
        // only the bindings added by the left subtree.
        let base = env.len();
        let mut left_rows: Vec<(Vec<(String, Value)>, Mult)> = Vec::new();
        self.stream(left, env, &mut |env2, m| {
            left_rows.push((env2.bindings[base..].to_vec(), m));
        });
        env.truncate(base);
        for (bindings, m1) in left_rows {
            let restore = env.len();
            for (k, v) in &bindings {
                env.push(k.clone(), v.clone());
            }
            self.stream(right, env, &mut |env2, m2| {
                out(env2, m1 * m2);
            });
            env.truncate(restore);
        }
    }

    fn stream_rel(
        &mut self,
        r: &crate::expr::RelRef,
        env: &mut Env,
        out: &mut dyn FnMut(&mut Env, Mult),
    ) {
        // Determine which positional columns are already bound.
        let mut bound_positions: Vec<usize> = Vec::new();
        let mut bound_values: Vec<Value> = Vec::new();
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (i, col) in r.cols.iter().enumerate() {
            if let Some(v) = env.get(col) {
                bound_positions.push(i);
                bound_values.push(v.clone());
            } else if let Some(&first) = seen.get(col.as_str()) {
                // Repeated unbound column within the same reference, e.g.
                // R(A, A): the second occurrence must equal the first.  We
                // handle it by filtering inside the emission loop below.
                let _ = first;
            } else {
                seen.insert(col.as_str(), i);
            }
        }

        let name = r.name.as_str();
        let kind = r.kind;
        let cols = &r.cols;

        let emit = |env: &mut Env, t: &Tuple, m: Mult, out: &mut dyn FnMut(&mut Env, Mult)| {
            let base = env.len();
            let mut ok = true;
            for (i, col) in cols.iter().enumerate() {
                match env.get(col) {
                    Some(existing) => {
                        if existing != t.get(i) {
                            ok = false;
                            break;
                        }
                    }
                    None => env.push(col.clone(), t.get(i).clone()),
                }
            }
            if ok {
                out(env, m);
            }
            env.truncate(base);
        };

        if bound_positions.len() == r.cols.len() && !r.cols.is_empty() {
            // All columns bound: point lookup.
            self.counters.lookups += 1;
            let key = Tuple(bound_values);
            let m = self.catalog.lookup(name, kind, &key);
            if m != 0.0 {
                self.counters.tuples_visited += 1;
                out(env, m);
            }
        } else if bound_positions.is_empty() {
            // Nothing bound: full scan.
            self.counters.scans += 1;
            let mut visited = 0u64;
            let mut rows: Vec<(Tuple, Mult)> = Vec::new();
            self.catalog.scan(name, kind, &mut |t, m| {
                visited += 1;
                rows.push((t.clone(), m));
            });
            self.counters.tuples_visited += visited;
            for (t, m) in rows {
                emit(env, &t, m, out);
            }
        } else {
            // Some columns bound: index slice.
            self.counters.slices += 1;
            let mut visited = 0u64;
            let mut rows: Vec<(Tuple, Mult)> = Vec::new();
            self.catalog
                .slice(name, kind, &bound_positions, &bound_values, &mut |t, m| {
                    visited += 1;
                    rows.push((t.clone(), m));
                });
            self.counters.tuples_visited += visited;
            for (t, m) in rows {
                emit(env, &t, m, out);
            }
        }
    }

    /// Evaluate `body` and aggregate multiplicities grouped by `group_by`
    /// (whose columns may be bound either by the body or by the outer
    /// environment — correlation).
    fn aggregate(&mut self, body: &Expr, group_by: &Schema, env: &mut Env) -> Vec<(Tuple, Mult)> {
        let mut groups: HashMap<Tuple, Mult> = HashMap::new();
        let base = env.len();
        self.stream(body, env, &mut |env2, m| {
            let key = Tuple(
                group_by
                    .iter()
                    .map(|c| {
                        env2.get(c)
                            .unwrap_or_else(|| panic!("group-by column `{c}` unbound"))
                            .clone()
                    })
                    .collect(),
            );
            *groups.entry(key).or_insert(0.0) += m;
        });
        env.truncate(base);
        let mut v: Vec<(Tuple, Mult)> = groups
            .into_iter()
            .filter(|(_, m)| m.abs() >= crate::ring::MULT_EPSILON)
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    fn emit_groups(
        &mut self,
        schema: &Schema,
        groups: Vec<(Tuple, Mult)>,
        env: &mut Env,
        out: &mut dyn FnMut(&mut Env, Mult),
        exists_semantics: bool,
    ) {
        let base = env.len();
        for (key, mult) in groups {
            let mut ok = true;
            for (c, v) in schema.iter().zip(key.0.iter()) {
                match env.get(c) {
                    Some(existing) => {
                        if existing != v {
                            ok = false;
                            break;
                        }
                    }
                    None => env.push(c.to_string(), v.clone()),
                }
            }
            if ok {
                self.counters.emissions += 1;
                out(env, if exists_semantics { 1.0 } else { mult });
            }
            env.truncate(base);
        }
    }
}

/// A straightforward [`Catalog`] backed by hash-map [`Relation`]s, used by
/// tests, the re-evaluation baseline and the distributed driver.
#[derive(Default, Clone, Debug)]
pub struct MapCatalog {
    relations: HashMap<(RelKind, String), Relation>,
}

impl MapCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, name: impl Into<String>, kind: RelKind, rel: Relation) {
        self.relations.insert((kind, name.into()), rel);
    }

    pub fn get_relation(&self, name: &str, kind: RelKind) -> Option<&Relation> {
        self.relations.get(&(kind, name.to_string()))
    }

    pub fn get_relation_mut(&mut self, name: &str, kind: RelKind) -> Option<&mut Relation> {
        self.relations.get_mut(&(kind, name.to_string()))
    }

    pub fn remove(&mut self, name: &str, kind: RelKind) -> Option<Relation> {
        self.relations.remove(&(kind, name.to_string()))
    }

    pub fn names(&self) -> impl Iterator<Item = (&RelKind, &String)> {
        self.relations.keys().map(|(k, n)| (k, n))
    }
}

impl Catalog for MapCatalog {
    fn scan(&self, name: &str, kind: RelKind, f: &mut dyn FnMut(&Tuple, Mult)) {
        if let Some(rel) = self.relations.get(&(kind, name.to_string())) {
            for (t, m) in rel.iter() {
                f(t, m);
            }
        }
    }

    fn lookup(&self, name: &str, kind: RelKind, key: &Tuple) -> Mult {
        self.relations
            .get(&(kind, name.to_string()))
            .map(|r| r.get(key))
            .unwrap_or(0.0)
    }
}

/// Evaluate an expression against a catalog from an empty environment.
pub fn evaluate(expr: &Expr, catalog: &dyn Catalog) -> Relation {
    Evaluator::new(catalog).eval(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::*;
    use crate::tuple;

    fn catalog() -> MapCatalog {
        let mut cat = MapCatalog::new();
        cat.insert(
            "R",
            RelKind::Base,
            Relation::from_pairs(
                Schema::new(["A", "B"]),
                vec![
                    (tuple![1, 10], 1.0),
                    (tuple![2, 10], 1.0),
                    (tuple![3, 20], 2.0),
                ],
            ),
        );
        cat.insert(
            "S",
            RelKind::Base,
            Relation::from_pairs(
                Schema::new(["B", "C"]),
                vec![(tuple![10, 100], 1.0), (tuple![20, 200], 3.0)],
            ),
        );
        cat
    }

    #[test]
    fn scan_relation() {
        let cat = catalog();
        let r = evaluate(&rel("R", ["A", "B"]), &cat);
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(&tuple![3, 20]), 2.0);
    }

    #[test]
    fn natural_join_multiplies_multiplicities() {
        let cat = catalog();
        let q = join(rel("R", ["A", "B"]), rel("S", ["B", "C"]));
        let r = evaluate(&q, &cat);
        assert_eq!(r.get(&tuple![1, 10, 100]), 1.0);
        assert_eq!(r.get(&tuple![3, 20, 200]), 6.0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn sum_groups_and_counts() {
        let cat = catalog();
        // COUNT(*) GROUP BY B over R ⋈ S
        let q = sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"])));
        let r = evaluate(&q, &cat);
        assert_eq!(r.get(&tuple![10]), 2.0);
        assert_eq!(r.get(&tuple![20]), 6.0);
    }

    #[test]
    fn total_aggregate_is_scalar() {
        let cat = catalog();
        let q = sum_total(rel("R", ["A", "B"]));
        let r = evaluate(&q, &cat);
        assert_eq!(r.scalar_value(), 4.0);
    }

    #[test]
    fn comparison_filters() {
        let cat = catalog();
        let q = sum_total(join(rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 15)));
        assert_eq!(evaluate(&q, &cat).scalar_value(), 2.0);
    }

    #[test]
    fn value_term_weights_multiplicity() {
        let cat = catalog();
        // SUM(A) over R
        let q = sum_total(join(rel("R", ["A", "B"]), val_var("A")));
        assert_eq!(evaluate(&q, &cat).scalar_value(), 1.0 + 2.0 + 3.0 * 2.0);
    }

    #[test]
    fn exists_collapses_multiplicities() {
        let cat = catalog();
        let q = exists(sum(["B"], rel("R", ["A", "B"])));
        let r = evaluate(&q, &cat);
        assert_eq!(r.get(&tuple![10]), 1.0);
        assert_eq!(r.get(&tuple![20]), 1.0);
    }

    #[test]
    fn nested_aggregate_correlated() {
        let cat = catalog();
        // SELECT COUNT(*) FROM R WHERE R.A < (SELECT COUNT(*) FROM S WHERE S.B = R.B)
        let nested = sum_total(join(rel("S", ["B2", "C"]), cmp_vars("B", CmpOp::Eq, "B2")));
        let q = sum_total(join_all([
            rel("R", ["A", "B"]),
            assign_query("X", nested),
            cmp_vars("A", CmpOp::Lt, "X"),
        ]));
        // R tuples: (1,10): nested count over S with B=10 -> 1, A=1 < 1? no.
        //           (2,10): 2 < 1? no. (3,20): nested count = 3, 3 < 3? no.
        assert_eq!(evaluate(&q, &cat).scalar_value(), 0.0);

        // Loosen to <=: (1,10) passes (1<=1), (3,20) passes with mult 2.
        let nested = sum_total(join(rel("S", ["B2", "C"]), cmp_vars("B", CmpOp::Eq, "B2")));
        let q = sum_total(join_all([
            rel("R", ["A", "B"]),
            assign_query("X", nested),
            cmp_vars("A", CmpOp::Le, "X"),
        ]));
        assert_eq!(evaluate(&q, &cat).scalar_value(), 3.0);
    }

    #[test]
    fn nested_aggregate_uncorrelated_empty_gives_zero() {
        let mut cat = catalog();
        cat.insert("T", RelKind::Base, Relation::new(Schema::new(["D"])));
        // X := COUNT(T); R tuples where A > X (X = 0, so all pass).
        let q = sum_total(join_all([
            rel("R", ["A", "B"]),
            assign_query("X", sum_total(rel("T", ["D"]))),
            cmp_vars("A", CmpOp::Gt, "X"),
        ]));
        assert_eq!(evaluate(&q, &cat).scalar_value(), 4.0);
    }

    #[test]
    fn union_sums_multiplicities() {
        let cat = catalog();
        let q = sum(["B"], union(rel("R", ["A", "B"]), rel("R", ["A", "B"])));
        let r = evaluate(&q, &cat);
        assert_eq!(r.get(&tuple![10]), 4.0);
    }

    #[test]
    fn difference_cancels() {
        let cat = catalog();
        let q = sum(["B"], rel("R", ["A", "B"]) - rel("R", ["A", "B"]));
        assert!(evaluate(&q, &cat).is_empty());
    }

    #[test]
    fn counters_track_access_patterns() {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        // R drives the join; S is probed by slice on B.
        let q = join(rel("R", ["A", "B"]), rel("S", ["B", "C"]));
        ev.eval(&q);
        assert_eq!(ev.counters.scans, 1);
        assert!(ev.counters.slices >= 3);
        assert!(ev.counters.instructions() > 0);
    }

    #[test]
    fn assign_val_binds_and_checks() {
        let cat = catalog();
        let q = sum_total(join_all([
            rel("R", ["A", "B"]),
            assign_val("K", ValExpr::lit(10)),
            cmp_vars("B", CmpOp::Eq, "K"),
        ]));
        assert_eq!(evaluate(&q, &cat).scalar_value(), 2.0);
    }

    #[test]
    fn delta_relations_resolve_against_delta_kind() {
        let mut cat = catalog();
        cat.insert(
            "R",
            RelKind::Delta,
            Relation::from_pairs(Schema::new(["A", "B"]), vec![(tuple![9, 10], 1.0)]),
        );
        let q = sum(
            ["B"],
            join(delta_rel("R", ["A", "B"]), rel("S", ["B", "C"])),
        );
        let r = evaluate(&q, &cat);
        assert_eq!(r.get(&tuple![10]), 1.0);
        assert_eq!(r.len(), 1);
    }
}
