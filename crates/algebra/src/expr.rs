//! The query algebra (AGCA-style) of Section 3.1 / Appendix A.
//!
//! Queries (views) are algebraic formulas over generalized multiset
//! relations: relations, bag union, natural join, multiplicity-preserving
//! projection (`Sum`), constants, value terms, comparisons, and variable
//! assignment — including the generalized form `var := Q` used to express
//! nested aggregates and existential quantification.

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// How a relational term is backed at runtime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelKind {
    /// A base table of the database (materialized by the maintenance program
    /// itself when needed).
    Base,
    /// An auxiliary materialized view created by the recursive IVM compiler.
    View,
    /// A batch of updates (the delta relation `ΔR`); may contain insertions
    /// (positive multiplicities) and deletions (negative multiplicities).
    Delta,
}

/// A reference to a relation together with the variable names its columns
/// bind, e.g. `R(A, B)`.  The same stored relation can be referenced with
/// different variable names (self-joins, renamings).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RelRef {
    pub name: String,
    pub kind: RelKind,
    pub cols: Vec<String>,
}

impl RelRef {
    pub fn schema(&self) -> Schema {
        Schema::new(self.cols.iter().cloned())
    }
}

/// Comparison operators of the language.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(&self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }

    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Interpreted value terms: arithmetic over bound variables and literals.
/// A value term is only valid in a context where all its variables are bound
/// (information flows left to right through joins).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ValExpr {
    Var(String),
    Lit(Value),
    Add(Box<ValExpr>, Box<ValExpr>),
    Sub(Box<ValExpr>, Box<ValExpr>),
    Mul(Box<ValExpr>, Box<ValExpr>),
    Div(Box<ValExpr>, Box<ValExpr>),
}

impl ValExpr {
    pub fn var(name: impl Into<String>) -> Self {
        ValExpr::Var(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Self {
        ValExpr::Lit(v.into())
    }

    /// Free variables of the term, in first-occurrence order.
    pub fn variables(&self) -> Schema {
        fn walk(e: &ValExpr, out: &mut Schema) {
            match e {
                ValExpr::Var(v) => out.push(v.clone()),
                ValExpr::Lit(_) => {}
                ValExpr::Add(a, b)
                | ValExpr::Sub(a, b)
                | ValExpr::Mul(a, b)
                | ValExpr::Div(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut s = Schema::empty();
        walk(self, &mut s);
        s
    }

    /// Evaluate the term given a variable lookup function.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<Value>) -> Value {
        match self {
            ValExpr::Var(v) => {
                lookup(v).unwrap_or_else(|| panic!("unbound variable `{v}` in value term"))
            }
            ValExpr::Lit(v) => v.clone(),
            ValExpr::Add(a, b) => Value::Double(a.eval(lookup).as_f64() + b.eval(lookup).as_f64()),
            ValExpr::Sub(a, b) => Value::Double(a.eval(lookup).as_f64() - b.eval(lookup).as_f64()),
            ValExpr::Mul(a, b) => Value::Double(a.eval(lookup).as_f64() * b.eval(lookup).as_f64()),
            ValExpr::Div(a, b) => {
                let d = b.eval(lookup).as_f64();
                Value::Double(if d == 0.0 {
                    0.0
                } else {
                    a.eval(lookup).as_f64() / d
                })
            }
        }
    }
}

impl fmt::Display for ValExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValExpr::Var(v) => write!(f, "{v}"),
            ValExpr::Lit(v) => write!(f, "{v}"),
            ValExpr::Add(a, b) => write!(f, "({a} + {b})"),
            ValExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            ValExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            ValExpr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

/// A query expression of the algebra.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Relational term `R(A, B, ...)`.
    Rel(RelRef),
    /// Bag union `Q1 + Q2`: multiplicities of matching tuples are summed.
    Union(Box<Expr>, Box<Expr>),
    /// Natural join `Q1 ⋈ Q2`: multiplicities are multiplied; variable
    /// bindings flow from left to right.
    Join(Box<Expr>, Box<Expr>),
    /// Multiplicity-preserving projection `Sum_[A1,...](Q)`.
    Sum { group_by: Schema, body: Box<Expr> },
    /// Constant multiplicity (a singleton relation over the empty tuple).
    Const(f64),
    /// Interpreted value term: its numeric value becomes the multiplicity.
    Val(ValExpr),
    /// Comparison `value1 θ value2`: multiplicity 1 when true, 0 otherwise.
    Cmp {
        op: CmpOp,
        lhs: ValExpr,
        rhs: ValExpr,
    },
    /// Variable assignment over a value term `(var := value)`.
    AssignVal { var: String, value: ValExpr },
    /// Generalized variable assignment `(var := Q)` where `Q` may be an
    /// arbitrary (possibly correlated) subquery: the relation containing the
    /// tuples of `Q` extended by a column `var` holding their multiplicity,
    /// each with multiplicity 1 (Section 3.1).
    AssignQuery { var: String, query: Box<Expr> },
    /// `Exists(Q)`: syntactic sugar for
    /// `Sum_[sch(Q)]((X := Q) ⋈ (X ≠ 0))` — every non-zero multiplicity in
    /// `Q` becomes 1.  Kept as a first-class node because domain extraction
    /// (Section 3.2.2) builds and pattern-matches on it.
    Exists(Box<Expr>),
}

// ---------------------------------------------------------------------------
// Constructors / builders
// ---------------------------------------------------------------------------

/// Reference a base relation: `rel("R", ["A", "B"])`.
pub fn rel(name: impl Into<String>, cols: impl IntoIterator<Item = impl Into<String>>) -> Expr {
    Expr::Rel(RelRef {
        name: name.into(),
        kind: RelKind::Base,
        cols: cols.into_iter().map(Into::into).collect(),
    })
}

/// Reference an auxiliary materialized view.
pub fn view(name: impl Into<String>, cols: impl IntoIterator<Item = impl Into<String>>) -> Expr {
    Expr::Rel(RelRef {
        name: name.into(),
        kind: RelKind::View,
        cols: cols.into_iter().map(Into::into).collect(),
    })
}

/// Reference the update batch (delta relation) of a base relation.
pub fn delta_rel(
    name: impl Into<String>,
    cols: impl IntoIterator<Item = impl Into<String>>,
) -> Expr {
    Expr::Rel(RelRef {
        name: name.into(),
        kind: RelKind::Delta,
        cols: cols.into_iter().map(Into::into).collect(),
    })
}

/// Natural join of two expressions.
pub fn join(l: Expr, r: Expr) -> Expr {
    Expr::Join(Box::new(l), Box::new(r))
}

/// Natural join of several expressions (left-deep).
pub fn join_all(exprs: impl IntoIterator<Item = Expr>) -> Expr {
    let mut it = exprs.into_iter();
    let first = it.next().expect("join_all of empty sequence");
    it.fold(first, join)
}

/// Bag union of two expressions.
pub fn union(l: Expr, r: Expr) -> Expr {
    Expr::Union(Box::new(l), Box::new(r))
}

/// Multiplicity-preserving projection.
pub fn sum(group_by: impl IntoIterator<Item = impl Into<String>>, body: Expr) -> Expr {
    Expr::Sum {
        group_by: Schema::new(group_by),
        body: Box::new(body),
    }
}

/// Total aggregate (`Sum_[]`).
pub fn sum_total(body: Expr) -> Expr {
    Expr::Sum {
        group_by: Schema::empty(),
        body: Box::new(body),
    }
}

/// Comparison term.
pub fn cmp(lhs: ValExpr, op: CmpOp, rhs: ValExpr) -> Expr {
    Expr::Cmp { op, lhs, rhs }
}

/// Comparison between two variables.
pub fn cmp_vars(l: impl Into<String>, op: CmpOp, r: impl Into<String>) -> Expr {
    cmp(ValExpr::Var(l.into()), op, ValExpr::Var(r.into()))
}

/// Comparison between a variable and a literal.
pub fn cmp_lit(l: impl Into<String>, op: CmpOp, r: impl Into<Value>) -> Expr {
    cmp(ValExpr::Var(l.into()), op, ValExpr::Lit(r.into()))
}

/// Variable assignment over a value term.
pub fn assign_val(var: impl Into<String>, value: ValExpr) -> Expr {
    Expr::AssignVal {
        var: var.into(),
        value,
    }
}

/// Generalized variable assignment over a subquery (nested aggregate).
pub fn assign_query(var: impl Into<String>, query: Expr) -> Expr {
    Expr::AssignQuery {
        var: var.into(),
        query: Box::new(query),
    }
}

/// `Exists(Q)`.
pub fn exists(q: Expr) -> Expr {
    Expr::Exists(Box::new(q))
}

/// Value term used as a multiplicity, e.g. `val(ValExpr::var("price"))`.
pub fn val(v: ValExpr) -> Expr {
    Expr::Val(v)
}

/// Multiplicity given by a single variable (`SUM(col)`-style aggregates).
pub fn val_var(name: impl Into<String>) -> Expr {
    Expr::Val(ValExpr::Var(name.into()))
}

/// Negation `-Q`, sugar for `(-1) ⋈ Q`.
pub fn neg(q: Expr) -> Expr {
    join(Expr::Const(-1.0), q)
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        join(self, rhs)
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        union(self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        union(self, neg(rhs))
    }
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

impl Expr {
    /// Output schema of the expression.
    ///
    /// Correlated variables bound by the evaluation context do not appear in
    /// an expression's own schema only when the expression projects them away
    /// (`Sum`); this static notion is the one used by the paper's rewrite
    /// rules.
    pub fn schema(&self) -> Schema {
        match self {
            Expr::Rel(r) => r.schema(),
            Expr::Union(l, r) => l.schema().union(&r.schema()),
            Expr::Join(l, r) => l.schema().union(&r.schema()),
            Expr::Sum { group_by, .. } => group_by.clone(),
            Expr::Const(_) | Expr::Val(_) | Expr::Cmp { .. } => Schema::empty(),
            Expr::AssignVal { var, .. } => Schema::new([var.clone()]),
            Expr::AssignQuery { var, query } => {
                let mut s = query.schema();
                s.push(var.clone());
                s
            }
            Expr::Exists(q) => q.schema(),
        }
    }

    /// Immediate children of this node.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Union(l, r) | Expr::Join(l, r) => vec![l, r],
            Expr::Sum { body, .. } => vec![body],
            Expr::AssignQuery { query, .. } => vec![query],
            Expr::Exists(q) => vec![q],
            _ => vec![],
        }
    }

    /// Rebuild this node with transformed children.
    pub fn map_children(&self, f: &mut dyn FnMut(&Expr) -> Expr) -> Expr {
        match self {
            Expr::Union(l, r) => Expr::Union(Box::new(f(l)), Box::new(f(r))),
            Expr::Join(l, r) => Expr::Join(Box::new(f(l)), Box::new(f(r))),
            Expr::Sum { group_by, body } => Expr::Sum {
                group_by: group_by.clone(),
                body: Box::new(f(body)),
            },
            Expr::AssignQuery { var, query } => Expr::AssignQuery {
                var: var.clone(),
                query: Box::new(f(query)),
            },
            Expr::Exists(q) => Expr::Exists(Box::new(f(q))),
            other => other.clone(),
        }
    }

    /// Visit every node of the expression tree (pre-order).
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// All relational references in the expression (pre-order).
    pub fn relations(&self) -> Vec<RelRef> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Rel(r) = e {
                out.push(r.clone());
            }
        });
        out
    }

    /// Whether the expression references any base or view relation
    /// (`hasRelations` in the paper's Figure 1).
    pub fn has_stored_relations(&self) -> bool {
        self.relations()
            .iter()
            .any(|r| matches!(r.kind, RelKind::Base | RelKind::View))
    }

    /// Whether the expression references any delta relation.
    pub fn has_delta_relations(&self) -> bool {
        self.relations()
            .iter()
            .any(|r| matches!(r.kind, RelKind::Delta))
    }

    /// Whether the expression references the named relation of the given kind.
    pub fn references(&self, name: &str, kind: RelKind) -> bool {
        self.relations()
            .iter()
            .any(|r| r.name == name && r.kind == kind)
    }

    /// The *degree* of the expression: number of base/view relational terms.
    /// The paper uses degree as the complexity measure driving recursive
    /// compilation (each delta derivation strictly reduces it for flat
    /// queries).
    pub fn degree(&self) -> usize {
        self.relations()
            .iter()
            .filter(|r| matches!(r.kind, RelKind::Base | RelKind::View))
            .count()
    }

    /// Replace every occurrence of `target` (by structural equality) with
    /// `replacement`; returns the rewritten expression and how many
    /// replacements were made.
    pub fn replace_subexpr(&self, target: &Expr, replacement: &Expr) -> (Expr, usize) {
        if self == target {
            return (replacement.clone(), 1);
        }
        let mut count = 0usize;
        let out = self.map_children(&mut |c| {
            let (e, n) = c.replace_subexpr(target, replacement);
            count += n;
            e
        });
        (out, count)
    }

    /// Structural size (node count) — used by tests and optimizer heuristics.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Free column variables needed *from the context* for this expression
    /// to be evaluable: variables used by value terms, comparisons and
    /// assignments that are not produced by relational terms to their left.
    /// This is a conservative approximation used by the compiler to decide
    /// whether a subexpression can be hoisted out and materialized on its
    /// own.
    pub fn input_variables(&self) -> Schema {
        fn walk(e: &Expr, bound: &mut Schema, needed: &mut Schema) {
            match e {
                Expr::Rel(r) => {
                    for c in &r.cols {
                        bound.push(c.clone());
                    }
                }
                Expr::Join(l, rr) => {
                    walk(l, bound, needed);
                    walk(rr, bound, needed);
                }
                Expr::Union(l, rr) => {
                    let mut bl = bound.clone();
                    let mut br = bound.clone();
                    walk(l, &mut bl, needed);
                    walk(rr, &mut br, needed);
                    *bound = bound.union(&bl.intersect(&br));
                }
                Expr::Sum { body, group_by } => {
                    let mut b = bound.clone();
                    walk(body, &mut b, needed);
                    *bound = bound.union(group_by);
                }
                Expr::Const(_) => {}
                Expr::Val(v) => {
                    for c in v.variables().iter() {
                        if !bound.contains(c) {
                            needed.push(c.to_string());
                        }
                    }
                }
                Expr::Cmp { lhs, rhs, .. } => {
                    for c in lhs.variables().union(&rhs.variables()).iter() {
                        if !bound.contains(c) {
                            needed.push(c.to_string());
                        }
                    }
                }
                Expr::AssignVal { var, value } => {
                    for c in value.variables().iter() {
                        if !bound.contains(c) {
                            needed.push(c.to_string());
                        }
                    }
                    bound.push(var.clone());
                }
                Expr::AssignQuery { var, query } => {
                    let mut b = bound.clone();
                    walk(query, &mut b, needed);
                    bound.push(var.clone());
                }
                Expr::Exists(q) => walk(q, bound, needed),
            }
        }
        let mut bound = Schema::empty();
        let mut needed = Schema::empty();
        walk(self, &mut bound, &mut needed);
        needed
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Rel(r) => {
                let prefix = match r.kind {
                    RelKind::Base => "",
                    RelKind::View => "",
                    RelKind::Delta => "Δ",
                };
                write!(f, "{prefix}{}({})", r.name, r.cols.join(", "))
            }
            Expr::Union(l, r) => write!(f, "({l} + {r})"),
            Expr::Join(l, r) => write!(f, "({l} * {r})"),
            Expr::Sum { group_by, body } => write!(f, "Sum_{group_by:?}({body})"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Val(v) => write!(f, "[{v}]"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::AssignVal { var, value } => write!(f, "({var} := {value})"),
            Expr::AssignQuery { var, query } => write!(f, "({var} := {query})"),
            Expr::Exists(q) => write!(f, "Exists({q})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Expr {
        // Sum_[B]( R(A,B) * S(B,C) * T(C,D) )
        sum(
            ["B"],
            join_all([
                rel("R", ["A", "B"]),
                rel("S", ["B", "C"]),
                rel("T", ["C", "D"]),
            ]),
        )
    }

    #[test]
    fn schema_inference_join_and_sum() {
        let q = sample_query();
        assert_eq!(q.schema().columns(), ["B"]);
        let j = join(rel("R", ["A", "B"]), rel("S", ["B", "C"]));
        assert_eq!(j.schema().columns(), ["A", "B", "C"]);
    }

    #[test]
    fn degree_counts_stored_relations_only() {
        let q = sample_query();
        assert_eq!(q.degree(), 3);
        let d = join(delta_rel("R", ["A", "B"]), rel("S", ["B", "C"]));
        assert_eq!(d.degree(), 1);
        assert!(d.has_delta_relations());
    }

    #[test]
    fn replace_subexpr_substitutes_views() {
        // join_all builds a left-deep tree: ((R * S) * T).
        let q = sample_query();
        let rs = join(rel("R", ["A", "B"]), rel("S", ["B", "C"]));
        let (rewritten, n) = q.replace_subexpr(&rs, &view("M_RS", ["A", "B", "C"]));
        assert_eq!(n, 1);
        assert!(rewritten.references("M_RS", RelKind::View));
        assert!(!rewritten.references("S", RelKind::Base));
        assert!(rewritten.references("T", RelKind::Base));
    }

    #[test]
    fn operators_build_union_join_difference() {
        let e = rel("R", ["A"]) * rel("S", ["A"]) + rel("T", ["A"]);
        assert_eq!(e.relations().len(), 3);
        let d = rel("R", ["A"]) - rel("S", ["A"]);
        // difference = union with (-1) * S
        assert_eq!(d.relations().len(), 2);
    }

    #[test]
    fn input_variables_detects_correlation() {
        // Sum_[](S(B2,C) * (B = B2)) is correlated on B.
        let q = sum_total(join(rel("S", ["B2", "C"]), cmp_vars("B", CmpOp::Eq, "B2")));
        assert!(q.input_variables().contains("B"));
        assert!(!q.input_variables().contains("B2"));
    }

    #[test]
    fn exists_schema_matches_body() {
        let q = exists(sum(["A"], rel("R", ["A", "B"])));
        assert_eq!(q.schema().columns(), ["A"]);
    }

    #[test]
    fn assign_query_extends_schema() {
        let q = assign_query("X", sum_total(rel("S", ["B", "C"])));
        assert_eq!(q.schema().columns(), ["X"]);
    }

    #[test]
    fn display_round_trips_structure() {
        let q = sample_query();
        let s = q.to_string();
        assert!(s.contains("Sum_[B]"));
        assert!(s.contains("R(A, B)"));
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(rel("R", ["A"]).size(), 1);
        assert_eq!(join(rel("R", ["A"]), rel("S", ["A"])).size(), 3);
    }
}
