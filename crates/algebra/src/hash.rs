//! Deterministic hashing for the data path.
//!
//! `std::collections::HashMap` seeds every instance with a fresh random
//! `RandomState`, so two maps holding the same entries iterate in different
//! orders — across instances, processes and runs.  Iteration order feeds
//! floating-point accumulation (joins, group-bys, scatters), so with random
//! seeds the low-order bits of aggregate multiplicities are not reproducible
//! even between two runs of the *same* backend.
//!
//! [`DetMap`]/[`DetSet`] fix the hasher to `DefaultHasher::new()`'s
//! documented fixed keys.  With every container on the data path hashed
//! deterministically, iteration order becomes a pure function of the
//! insertion history — and since all execution backends (local engine,
//! simulated cluster, threaded runtime, pipelined runtime) perform identical
//! per-node statement sequences over identically-ordered inputs, they
//! perform *bit-identical* float arithmetic.  That is what lets the
//! equivalence suites assert exact equality on float workloads instead of
//! epsilon comparisons.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

/// Fixed-key build-hasher: every hasher it builds produces the same hash for
/// the same input, within and across processes.
pub type DetState = BuildHasherDefault<DefaultHasher>;

/// A `HashMap` with deterministic iteration order (given an insertion
/// history).
pub type DetMap<K, V> = HashMap<K, V, DetState>;

/// A `HashSet` with deterministic iteration order (given an insertion
/// history).
pub type DetSet<T> = HashSet<T, DetState>;

/// 64-bit FNV-1a, the digest primitive of [`Relation::checksum`]
/// (order-sensitive, so callers must feed it canonically ordered bytes).
///
/// [`Relation::checksum`]: crate::relation::Relation::checksum
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv1a(pub u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_map_iteration_is_reproducible_across_instances() {
        let build = |order: &[i64]| {
            let mut m: DetMap<i64, i64> = DetMap::default();
            for &k in order {
                m.insert(k, k);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        // Same insertion history => same iteration order, every time.
        assert_eq!(
            build(&[3, 1, 4, 1, 5, 9, 2, 6]),
            build(&[3, 1, 4, 1, 5, 9, 2, 6])
        );
    }

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv1a::default();
        a.write(&[1, 2]);
        let mut b = Fnv1a::default();
        b.write(&[2, 1]);
        assert_ne!(a.finish(), b.finish());
    }
}
