//! # hotdog-algebra
//!
//! Generalized multiset relations and the AGCA-style query algebra used by
//! the SIGMOD'16 paper *"How to Win a Hot Dog Eating Contest: Distributed
//! Incremental View Maintenance with Batch Updates"*.
//!
//! The crate provides:
//!
//! * [`value::Value`] / [`tuple::Tuple`] — the scalar and row types of the
//!   data model;
//! * [`ring::Ring`] — the multiplicity rings (counts and aggregates live in
//!   multiplicities, not columns);
//! * [`relation::Relation`] — reference hash-map representation of a
//!   generalized multiset relation;
//! * [`schema::Schema`] — ordered column-name sets;
//! * [`expr::Expr`] — the query algebra AST (relations, bag union, natural
//!   join, `Sum`, constants, value terms, comparisons, variable assignment
//!   including nested aggregates, and `Exists`);
//! * [`eval`] — a continuation-passing reference evaluator implementing the
//!   paper's left-to-right model of computation over a pluggable
//!   [`eval::Catalog`].
//!
//! Higher layers build on this crate: `hotdog-ivm` derives delta queries and
//! maintenance triggers, `hotdog-exec` runs them against specialized storage,
//! and `hotdog-distributed` re-compiles them for a simulated cluster.

#![forbid(unsafe_code)]

pub mod eval;
pub mod expr;
pub mod hash;
pub mod relation;
pub mod ring;
pub mod schema;
pub mod tuple;
pub mod value;

pub use eval::{evaluate, Catalog, Env, EvalCounters, Evaluator, MapCatalog};
pub use expr::{
    assign_query, assign_val, cmp, cmp_lit, cmp_vars, delta_rel, exists, join, join_all, neg, rel,
    sum, sum_total, union, val, val_var, view, CmpOp, Expr, RelKind, RelRef, ValExpr,
};
pub use hash::{DetMap, DetSet, DetState};
pub use relation::{Relation, ViewChecksum};
pub use ring::{Mult, Ring};
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::Value;
