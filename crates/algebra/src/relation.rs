//! Generalized multiset relations: finite maps from tuples to multiplicities.
//!
//! This is the reference, hash-map-backed representation used by the
//! from-scratch evaluator, by tests, and as the exchange format between the
//! driver and the workers of the simulated cluster.  The execution engine
//! stores materialized views in the specialized record pools of
//! `hotdog-storage` instead.

use crate::hash::{DetMap, Fnv1a};
use crate::ring::{Mult, MULT_EPSILON};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A generalized multiset relation: unique tuples with non-zero multiplicity.
///
/// The backing map uses the fixed-seed hasher of [`crate::hash`]: iteration
/// order is a deterministic function of the insertion history, which makes
/// the floating-point accumulation it feeds (joins, group-bys, scatters)
/// reproducible across backends and runs.
#[derive(Clone, Default)]
pub struct Relation {
    schema: Schema,
    data: DetMap<Tuple, Mult>,
    /// Incrementally maintained serialized footprint (see
    /// [`Relation::serialized_size`]): the sum of every resident tuple's
    /// value bytes plus its 8-byte multiplicity.  Kept in lock-step by
    /// [`Relation::add`] so size queries are O(1) — the pipelined runtime
    /// reads it on every admission for byte-bounded backpressure.
    bytes: usize,
}

impl Relation {
    /// Empty relation over the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            data: DetMap::default(),
            bytes: 0,
        }
    }

    /// Build from (tuple, multiplicity) pairs, merging duplicates.
    pub fn from_pairs(schema: Schema, pairs: impl IntoIterator<Item = (Tuple, Mult)>) -> Self {
        let mut rel = Relation::new(schema);
        for (t, m) in pairs {
            rel.add(t, m);
        }
        rel
    }

    /// A scalar (0-ary) relation holding a single aggregate value.
    pub fn scalar(value: Mult) -> Self {
        let mut rel = Relation::new(Schema::empty());
        rel.add(Tuple::empty(), value);
        rel
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples with non-zero multiplicity.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Multiplicity of a tuple (0 if absent).
    pub fn get(&self, tuple: &Tuple) -> Mult {
        self.data.get(tuple).copied().unwrap_or(0.0)
    }

    /// Add `mult` to the multiplicity of `tuple`, removing the entry if the
    /// result is (numerically) zero.
    pub fn add(&mut self, tuple: Tuple, mult: Mult) {
        if mult == 0.0 {
            return;
        }
        let tuple_bytes = tuple.values_size() + 8;
        use std::collections::hash_map::Entry;
        match self.data.entry(tuple) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += mult;
                if e.get().abs() < MULT_EPSILON {
                    e.remove();
                    self.bytes -= tuple_bytes;
                }
            }
            Entry::Vacant(v) => {
                v.insert(mult);
                self.bytes += tuple_bytes;
            }
        }
    }

    /// Merge another relation into this one (bag union `+=`).
    pub fn merge(&mut self, other: &Relation) {
        for (t, m) in other.iter() {
            self.add(t.clone(), m);
        }
    }

    /// Bag union producing a new relation.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Negate all multiplicities.
    pub fn negate(&self) -> Relation {
        Relation {
            schema: self.schema.clone(),
            data: self.data.iter().map(|(t, m)| (t.clone(), -m)).collect(),
            bytes: self.bytes,
        }
    }

    /// Multiplicity-preserving projection (the `Sum` operator): group by the
    /// given columns and sum multiplicities.
    pub fn project_sum(&self, group_by: &Schema) -> Relation {
        let positions: Vec<usize> = group_by
            .iter()
            .map(|c| {
                self.schema
                    .position(c)
                    .unwrap_or_else(|| panic!("column {c} not in schema {:?}", self.schema))
            })
            .collect();
        let mut out = Relation::new(group_by.clone());
        for (t, m) in &self.data {
            out.add(t.project(&positions), *m);
        }
        out
    }

    /// Iterate over (tuple, multiplicity) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, Mult)> {
        self.data.iter().map(|(t, m)| (t, *m))
    }

    /// Deterministically ordered contents, for stable test assertions and
    /// printing.
    pub fn sorted(&self) -> Vec<(Tuple, Mult)> {
        let mut v: Vec<_> = self.data.iter().map(|(t, m)| (t.clone(), *m)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The single aggregate value of a scalar relation (0 if empty).
    pub fn scalar_value(&self) -> Mult {
        self.get(&Tuple::empty())
    }

    /// Total serialized size in bytes (tuple values + 8-byte
    /// multiplicities); used for shuffle accounting in the distributed
    /// runtime and for the pipelined runtime's byte-bounded admission
    /// queue.  Maintained incrementally by [`Relation::add`], so this is
    /// O(1) — cheap enough to read on every admission.
    ///
    /// Relation to the real wire codec (`hotdog-net`): the
    /// column-contiguous relation encoding carries arity once in the
    /// schema (no per-row framing) and spends one tag byte per value plus
    /// a per-relation header (encoded schema + 4-byte tuple count), so an
    /// encoded relation is exactly
    /// `serialized_size() + Σ tuple arity + header` bytes — the O(1)
    /// accounting undercounts the wire by one byte per value plus the
    /// fixed header, and never overcounts.  A reconciliation test in
    /// `hotdog-net` pins this bound against the actual encoder.
    pub fn serialized_size(&self) -> usize {
        self.bytes
    }

    /// Rebuild this relation by inserting its (tuple, multiplicity) pairs
    /// in **sorted tuple order** into an empty map — the *wire-canonical
    /// layout*.
    ///
    /// Iteration order of the backing map is a deterministic function of
    /// the insertion history (see [`crate::hash`]), so two relations with
    /// equal contents can still iterate differently if they were built
    /// differently — e.g. an in-process relation versus the same relation
    /// decoded from a byte stream.  Rebuilding from the sorted pair list
    /// collapses both to the *same* insertion history (pure inserts, sorted
    /// order, from empty), making the layout a pure function of content.
    /// Every execution backend canonicalizes relations at its exchange
    /// points (`relabel`, `partition_shards`), which is what lets a real
    /// socket transport — whose decoder can only replay the pair list — be
    /// held bit-for-bit against the in-process backends.
    pub fn canonical(&self) -> Relation {
        Relation::from_pairs(self.schema.clone(), self.sorted())
    }

    /// Order-canonical, bit-exact digest of the relation's contents.
    ///
    /// Tuples are folded in sorted key order — never in map iteration order —
    /// so two relations holding bit-identical (tuple, multiplicity) pairs
    /// produce the same checksum no matter how their backing maps happen to
    /// be laid out.  Multiplicities enter via their raw IEEE-754 bits, which
    /// is what lets the equivalence suites assert *bit-for-bit* equality on
    /// floating-point workloads (deterministic hashing makes the backends'
    /// arithmetic identical; the sorted fold makes the comparison
    /// representation-independent).
    pub fn checksum(&self) -> ViewChecksum {
        let mut digest = Fnv1a::default();
        for (t, m) in self.sorted() {
            for v in &t.0 {
                match v {
                    Value::Long(x) => {
                        digest.write(&[0]);
                        digest.write_u64(*x as u64);
                    }
                    Value::Double(x) => {
                        digest.write(&[1]);
                        digest.write_u64(x.to_bits());
                    }
                    Value::Str(s) => {
                        digest.write(&[2]);
                        digest.write_u64(s.len() as u64);
                        digest.write(s.as_bytes());
                    }
                    Value::Bool(b) => digest.write(&[3, *b as u8]),
                }
            }
            digest.write(&[0xFF]);
            digest.write_u64(m.to_bits());
        }
        ViewChecksum {
            tuples: self.data.len(),
            digest: digest.finish(),
        }
    }

    /// Two relations are equivalent if they contain the same tuples with
    /// multiplicities equal up to a small tolerance.
    pub fn approx_eq(&self, other: &Relation) -> bool {
        self.approx_eq_eps(other, 1e-6)
    }

    /// Like [`Relation::approx_eq`] but with an explicit absolute/relative
    /// tolerance (useful for large floating-point aggregates).
    pub fn approx_eq_eps(&self, other: &Relation, eps: f64) -> bool {
        let close = |a: f64, b: f64| {
            let diff = (a - b).abs();
            diff <= eps || diff <= eps * a.abs().max(b.abs())
        };
        for (t, m) in &self.data {
            if !close(*m, other.get(t)) {
                return false;
            }
        }
        for (t, m) in &other.data {
            if !close(*m, self.get(t)) {
                return false;
            }
        }
        true
    }
}

/// Bit-exact digest of one view's contents (see [`Relation::checksum`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViewChecksum {
    /// Number of tuples with non-zero multiplicity.
    pub tuples: usize,
    /// FNV-1a digest over the sorted (tuple, multiplicity-bits) sequence.
    pub digest: u64,
}

impl fmt::Display for ViewChecksum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tuples, digest {:016x}", self.tuples, self.digest)
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Relation{:?} {{", self.schema)?;
        for (t, m) in self.sorted() {
            writeln!(f, "  {t} -> {m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn add_merges_and_removes_zeros() {
        let mut r = Relation::new(Schema::new(["a"]));
        r.add(tuple![1], 2.0);
        r.add(tuple![1], 3.0);
        assert_eq!(r.get(&tuple![1]), 5.0);
        r.add(tuple![1], -5.0);
        assert!(r.is_empty());
    }

    #[test]
    fn union_and_negate_cancel() {
        let r = Relation::from_pairs(
            Schema::new(["a"]),
            vec![(tuple![1], 2.0), (tuple![2], -1.0)],
        );
        let z = r.union(&r.negate());
        assert!(z.is_empty());
    }

    #[test]
    fn project_sum_groups() {
        let r = Relation::from_pairs(
            Schema::new(["a", "b"]),
            vec![
                (tuple![1, 10], 2.0),
                (tuple![1, 20], 3.0),
                (tuple![2, 10], 4.0),
            ],
        );
        let p = r.project_sum(&Schema::new(["a"]));
        assert_eq!(p.get(&tuple![1]), 5.0);
        assert_eq!(p.get(&tuple![2]), 4.0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn scalar_relation_round_trips() {
        let s = Relation::scalar(42.0);
        assert_eq!(s.scalar_value(), 42.0);
        assert_eq!(Relation::new(Schema::empty()).scalar_value(), 0.0);
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = Relation::from_pairs(Schema::new(["a"]), vec![(tuple![1], 1.0)]);
        let b = Relation::from_pairs(Schema::new(["a"]), vec![(tuple![1], 1.0 + 1e-9)]);
        assert!(a.approx_eq(&b));
        let c = Relation::from_pairs(Schema::new(["a"]), vec![(tuple![1], 1.1)]);
        assert!(!a.approx_eq(&c));
    }

    #[test]
    fn sorted_is_deterministic() {
        let r = Relation::from_pairs(
            Schema::new(["a"]),
            vec![(tuple![3], 1.0), (tuple![1], 1.0), (tuple![2], 1.0)],
        );
        let keys: Vec<i64> = r
            .sorted()
            .iter()
            .map(|(t, _)| match t.get(0) {
                crate::value::Value::Long(v) => *v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn checksum_is_order_canonical_and_value_sensitive() {
        let a = Relation::from_pairs(
            Schema::new(["a"]),
            vec![(tuple![1], 1.0), (tuple![2], 2.0), (tuple![3], 3.0)],
        );
        let b = Relation::from_pairs(
            Schema::new(["a"]),
            vec![(tuple![3], 3.0), (tuple![1], 1.0), (tuple![2], 2.0)],
        );
        assert_eq!(a.checksum(), b.checksum());
        let c = Relation::from_pairs(
            Schema::new(["a"]),
            vec![(tuple![1], 1.0 + 1e-12), (tuple![2], 2.0), (tuple![3], 3.0)],
        );
        assert_ne!(a.checksum(), c.checksum(), "checksum must catch ulp drift");
        assert_eq!(a.checksum().tuples, 3);
    }

    #[test]
    fn iteration_order_is_deterministic_across_instances() {
        let build = || {
            let mut r = Relation::new(Schema::new(["a"]));
            for i in [7i64, 3, 9, 1, 5, 2, 8] {
                r.add(tuple![i], 1.0);
            }
            r.iter().map(|(t, _)| t.clone()).collect::<Vec<_>>()
        };
        assert_eq!(
            build(),
            build(),
            "fixed-seed hasher must fix iteration order"
        );
    }

    #[test]
    fn serialized_size_counts_bytes() {
        let r = Relation::from_pairs(Schema::new(["a"]), vec![(tuple![1i64], 1.0)]);
        // One i64 value (8) + the 8-byte multiplicity; arity is carried by
        // the schema, not per row.
        assert_eq!(r.serialized_size(), 8 + 8);
    }

    #[test]
    fn serialized_size_tracks_mutation_incrementally() {
        // The O(1) counter must agree with a full recount through inserts,
        // multiplicity updates, cancellation and merges.
        let recount =
            |r: &Relation| -> usize { r.iter().map(|(t, _)| t.values_size() + 8).sum::<usize>() };
        let mut r = Relation::new(Schema::new(["a", "b"]));
        assert_eq!(r.serialized_size(), 0);
        r.add(tuple![1, 2], 1.0);
        r.add(tuple![3, 4], 2.0);
        assert_eq!(r.serialized_size(), recount(&r));
        // Multiplicity update on a resident tuple: size unchanged.
        let before = r.serialized_size();
        r.add(tuple![1, 2], 5.0);
        assert_eq!(r.serialized_size(), before);
        // Cancellation removes the entry and its bytes.
        r.add(tuple![3, 4], -2.0);
        assert_eq!(r.serialized_size(), recount(&r));
        // merge / union / negate preserve the invariant.
        let other = Relation::from_pairs(
            Schema::new(["a", "b"]),
            vec![(tuple![1, 2], -6.0), (tuple![9, 9], 1.0)],
        );
        r.merge(&other);
        assert_eq!(r.serialized_size(), recount(&r));
        assert_eq!(r.negate().serialized_size(), r.serialized_size());
        let u = r.union(&other);
        assert_eq!(u.serialized_size(), recount(&u));
    }
}
