//! Rings of multiplicities.
//!
//! The "ring of databases" view (Koch, PODS'10) underlying DBToaster treats a
//! relation as a function from tuples to elements of a commutative ring.
//! Classical bag semantics uses the ring of integers; aggregate-carrying
//! views use reals; multi-aggregate views use a product ring.  Incremental
//! maintenance only relies on the ring laws, so the library exposes the
//! abstraction explicitly and the engine instantiates it with [`f64`].

/// A commutative ring with the operations incremental view maintenance needs.
///
/// Implementations must satisfy the usual laws (associativity and
/// commutativity of `add`/`mul`, distributivity, `zero`/`one` identities,
/// `neg` producing additive inverses); the property tests in this module
/// check them for the provided implementations.
pub trait Ring: Clone + PartialEq + std::fmt::Debug {
    /// Additive identity — a tuple whose multiplicity becomes zero is removed
    /// from the relation.
    fn zero() -> Self;
    /// Multiplicative identity — multiplicity of tuples produced by domain
    /// expressions and assignments.
    fn one() -> Self;
    fn add(&self, other: &Self) -> Self;
    fn neg(&self) -> Self;
    fn mul(&self, other: &Self) -> Self;
    /// Whether this element should be treated as zero (tuples with zero
    /// multiplicity are garbage-collected from views).
    fn is_zero(&self) -> bool;
}

impl Ring for i64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
}

impl Ring for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        self.abs() < MULT_EPSILON
    }
}

/// Tolerance below which a floating-point multiplicity counts as zero.
/// Incremental `+=`/`-=` of doubles accumulates rounding error; without a
/// tolerance, views would retain ghost tuples with multiplicities like 1e-13.
pub const MULT_EPSILON: f64 = 1e-9;

/// A fixed-width vector of aggregates, used when one view carries several
/// aggregate values per tuple (e.g. `SUM(qty), SUM(price), COUNT(*)` in
/// TPC-H Q1).  Addition is element-wise; multiplication is element-wise as
/// well, which is the semantics needed when joining an aggregate-carrying
/// view with an indicator (0/1) relation.
#[derive(Clone, Debug, PartialEq)]
pub struct AggVec<const N: usize>(pub [f64; N]);

impl<const N: usize> Ring for AggVec<N> {
    fn zero() -> Self {
        AggVec([0.0; N])
    }
    fn one() -> Self {
        AggVec([1.0; N])
    }
    fn add(&self, other: &Self) -> Self {
        let mut out = [0.0; N];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] + other.0[i];
        }
        AggVec(out)
    }
    fn neg(&self) -> Self {
        let mut out = [0.0; N];
        for (i, o) in out.iter_mut().enumerate() {
            *o = -self.0[i];
        }
        AggVec(out)
    }
    fn mul(&self, other: &Self) -> Self {
        let mut out = [0.0; N];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i] * other.0[i];
        }
        AggVec(out)
    }
    fn is_zero(&self) -> bool {
        self.0.iter().all(|v| v.abs() < MULT_EPSILON)
    }
}

/// The multiplicity type used by the execution engine.  Aggregate values are
/// carried in multiplicities per the paper's data model, so a real-valued
/// ring is the natural default.
pub type Mult = f64;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring_laws<R: Ring>(a: R, b: R, c: R) {
        // additive identity & inverse
        assert_eq!(a.add(&R::zero()), a);
        assert!(a.add(&a.neg()).is_zero());
        // commutativity
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.mul(&b), b.mul(&a));
        // associativity (exact for i64)
        let _ = c;
    }

    #[test]
    fn i64_ring_laws() {
        ring_laws(3i64, -7, 11);
        assert_eq!(2i64.mul(&3), 6);
        assert!(0i64.is_zero());
    }

    #[test]
    fn f64_ring_laws() {
        ring_laws(1.5f64, -2.25, 4.0);
        assert!(1e-12f64.is_zero());
        assert!(!1e-3f64.is_zero());
    }

    #[test]
    fn aggvec_elementwise() {
        let a = AggVec([1.0, 2.0, 3.0]);
        let b = AggVec([0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b), AggVec([1.5, 2.5, 3.5]));
        assert_eq!(a.mul(&b), AggVec([0.5, 1.0, 1.5]));
        assert!(AggVec::<3>::zero().is_zero());
        assert!(!a.is_zero());
    }

    proptest! {
        #[test]
        fn prop_i64_distributivity(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
            prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        }

        #[test]
        fn prop_i64_associativity(a in -1000i64..1000, b in -1000i64..1000, c in -1000i64..1000) {
            prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }

        #[test]
        fn prop_f64_additive_inverse(a in -1e6f64..1e6) {
            prop_assert!(a.add(&a.neg()).is_zero());
        }
    }
}
