//! Schemas: ordered lists of named columns.
//!
//! The algebra is name-based (natural joins match on column names), so a
//! schema is simply an ordered, duplicate-free list of column names plus
//! helpers for the set operations used by schema inference and domain
//! extraction.

use std::fmt;

/// Ordered, duplicate-free list of column names.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Schema {
    cols: Vec<String>,
}

impl Schema {
    pub fn empty() -> Self {
        Schema { cols: Vec::new() }
    }

    /// Build a schema from column names, keeping the first occurrence of each
    /// name and dropping later duplicates.
    pub fn new<I, S>(cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Schema::empty();
        for c in cols {
            out.push(c.into());
        }
        out
    }

    /// Append a column if not already present.
    pub fn push(&mut self, col: String) {
        if !self.cols.contains(&col) {
            self.cols.push(col);
        }
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    pub fn contains(&self, col: &str) -> bool {
        self.cols.iter().any(|c| c == col)
    }

    /// Position of a column, if present.
    pub fn position(&self, col: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == col)
    }

    pub fn columns(&self) -> &[String] {
        &self.cols
    }

    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.cols.iter().map(|s| s.as_str())
    }

    /// Union preserving the order of `self` then new columns of `other`.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut out = self.clone();
        for c in &other.cols {
            out.push(c.clone());
        }
        out
    }

    /// Intersection preserving the order of `self`.
    pub fn intersect(&self, other: &Schema) -> Schema {
        Schema {
            cols: self
                .cols
                .iter()
                .filter(|c| other.contains(c))
                .cloned()
                .collect(),
        }
    }

    /// Columns of `self` not present in `other`.
    pub fn difference(&self, other: &Schema) -> Schema {
        Schema {
            cols: self
                .cols
                .iter()
                .filter(|c| !other.contains(c))
                .cloned()
                .collect(),
        }
    }

    /// Set equality (ignores ordering).
    pub fn same_columns(&self, other: &Schema) -> bool {
        self.len() == other.len() && self.cols.iter().all(|c| other.contains(c))
    }

    /// Whether every column of `self` appears in `other`.
    pub fn subset_of(&self, other: &Schema) -> bool {
        self.cols.iter().all(|c| other.contains(c))
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.cols.join(", "))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<S: Into<String>> FromIterator<S> for Schema {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        Schema::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_drops_duplicates() {
        let s = Schema::new(["a", "b", "a", "c"]);
        assert_eq!(s.columns(), ["a", "b", "c"]);
    }

    #[test]
    fn union_preserves_order() {
        let a = Schema::new(["x", "y"]);
        let b = Schema::new(["y", "z"]);
        assert_eq!(a.union(&b).columns(), ["x", "y", "z"]);
    }

    #[test]
    fn intersect_and_difference() {
        let a = Schema::new(["x", "y", "z"]);
        let b = Schema::new(["z", "x"]);
        assert_eq!(a.intersect(&b).columns(), ["x", "z"]);
        assert_eq!(a.difference(&b).columns(), ["y"]);
    }

    #[test]
    fn same_columns_ignores_order() {
        assert!(Schema::new(["a", "b"]).same_columns(&Schema::new(["b", "a"])));
        assert!(!Schema::new(["a"]).same_columns(&Schema::new(["b", "a"])));
    }

    #[test]
    fn subset_of_checks_containment() {
        assert!(Schema::new(["a"]).subset_of(&Schema::new(["b", "a"])));
        assert!(!Schema::new(["a", "c"]).subset_of(&Schema::new(["b", "a"])));
        assert!(Schema::empty().subset_of(&Schema::empty()));
    }

    #[test]
    fn position_finds_column() {
        let s = Schema::new(["a", "b"]);
        assert_eq!(s.position("b"), Some(1));
        assert_eq!(s.position("zz"), None);
    }
}
