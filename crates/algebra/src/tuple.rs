//! Tuples: ordered sequences of [`Value`]s forming the keys of generalized
//! multiset relations.

use crate::value::Value;
use std::fmt;

/// An immutable-by-convention row of scalar values.
///
/// Tuples are the keys of generalized multiset relations: each distinct tuple
/// maps to a non-zero multiplicity.  Tuples are small (TPC-H style views keep
/// at most a handful of columns after projection) so a plain `Vec` is used.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// The empty tuple — the key of 0-ary (scalar) views such as a top-level
    /// `COUNT(*)` aggregate.
    pub fn empty() -> Self {
        Tuple(Vec::new())
    }

    /// Build a tuple from anything convertible to values.
    pub fn from_values(vals: impl IntoIterator<Item = Value>) -> Self {
        Tuple(vals.into_iter().collect())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Project onto the given column positions (in the given order).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Access a column.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Sum of the values' encoded payload bytes, with no per-tuple framing.
    /// This is a tuple's contribution to the column-contiguous relation
    /// wire format, where arity lives in the schema, not in each row.
    pub fn values_size(&self) -> usize {
        self.0.iter().map(Value::serialized_size).sum()
    }

    /// Approximate serialized size in bytes of a *standalone* tuple (for
    /// shuffle accounting): the values plus the u16 arity prefix the
    /// standalone wire encoding carries.
    pub fn serialized_size(&self) -> usize {
        self.values_size() + 2
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Tuple(iter.into_iter().map(Into::into).collect())
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, 2.5, "x"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tuple_has_zero_arity() {
        assert_eq!(Tuple::empty().arity(), 0);
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn projection_reorders_columns() {
        let t = tuple![1, 2, 3];
        assert_eq!(t.project(&[2, 0]), tuple![3, 1]);
    }

    #[test]
    fn concat_appends() {
        let t = tuple![1, "a"].concat(&tuple![2.0]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(2), &Value::Double(2.0));
    }

    #[test]
    fn display_formats_angle_brackets() {
        assert_eq!(tuple![1, "x"].to_string(), "<1, 'x'>");
    }

    #[test]
    fn serialized_size_sums_fields() {
        assert_eq!(tuple![1i64, 2i64].serialized_size(), 18);
    }

    #[test]
    fn from_iterator_builds_tuple() {
        let t: Tuple = vec![1i64, 2, 3].into_iter().collect();
        assert_eq!(t.arity(), 3);
    }
}
