//! Scalar values stored inside tuples of generalized multiset relations.
//!
//! The paper's data model (Section 3.1 and Appendix A) keeps *aggregates* in
//! tuple multiplicities, while the tuple itself carries plain SQL scalars:
//! integers, floating point numbers, strings and dates.  `Value` is that
//! scalar type.  Doubles are wrapped so that `Value` can implement `Eq`,
//! `Ord` and `Hash` (required for hash-index keys); NaNs are normalized to a
//! single bit pattern.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar value appearing in a tuple (the key part of a generalized
/// multiset relation record).
#[derive(Clone, Debug)]
pub enum Value {
    /// 64-bit signed integer; also used for surrogate keys and dates
    /// (encoded as `yyyymmdd`).
    Long(i64),
    /// 64-bit IEEE float.  Compared and hashed by normalized bit pattern.
    Double(f64),
    /// Interned UTF-8 string.  `Arc` keeps cloning cheap: tuples are copied
    /// into record pools, shuffle buffers and columnar batches constantly.
    Str(Arc<str>),
    /// Boolean flag (e.g. precomputed predicate results).
    Bool(bool),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Numeric view of the value used by arithmetic value terms.
    ///
    /// Strings have no numeric interpretation and evaluate to 0, mirroring
    /// the paper's treatment of value terms as functions over *bound numeric
    /// variables* only.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Long(v) => *v as f64,
            Value::Double(v) => *v,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Str(_) => 0.0,
        }
    }

    /// Integer view (truncating); used by partitioning functions.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Long(v) => *v,
            Value::Double(v) => *v as i64,
            Value::Bool(b) => *b as i64,
            Value::Str(s) => {
                // Stable, cheap string hash so string keys can partition too.
                let mut h: i64 = 1469598103934665603u64 as i64;
                for b in s.as_bytes() {
                    h ^= *b as i64;
                    h = h.wrapping_mul(1099511628211);
                }
                h
            }
        }
    }

    /// Approximate serialized size in bytes; used by the distributed runtime
    /// to account for shuffled data volume.
    pub fn serialized_size(&self) -> usize {
        match self {
            Value::Long(_) => 8,
            Value::Double(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 4 + s.len(),
        }
    }

    fn normalized_double_bits(v: f64) -> u64 {
        if v.is_nan() {
            f64::NAN.to_bits()
        } else if v == 0.0 {
            0u64 // collapse -0.0 and +0.0
        } else {
            v.to_bits()
        }
    }

    /// Map a double to a `u64` whose integer order is a *total* order
    /// over doubles: `-inf < … < -0 = +0 < … < +inf < NaN` (all NaNs
    /// normalized to one pattern).  The standard trick: flip all bits of
    /// negative values, set the sign bit of non-negative ones.  Raw IEEE
    /// bits alone are NOT order-preserving (the sign bit makes negative
    /// values huge), which used to leave `Ord` cyclic around NaN —
    /// `sort` panics on such comparators, and relation
    /// canonicalization sorts every exchanged relation.
    fn total_order_key(v: f64) -> u64 {
        let bits = Self::normalized_double_bits(v);
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1u64 << 63)
        }
    }

    /// Total order over values of *any* variant: variants are ordered by a
    /// discriminant rank first, then by value.  This gives `Value` a lawful
    /// `Ord`, which index structures and deterministic test output rely on.
    fn rank(&self) -> u8 {
        match self {
            Value::Long(_) => 0,
            Value::Double(_) => 1,
            Value::Str(_) => 2,
            Value::Bool(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Long(a), Value::Long(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => {
                Self::normalized_double_bits(*a) == Self::normalized_double_bits(*b)
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            // Cross-variant numeric equality: Long(3) == Double(3.0).  The
            // workload generators mix integer and double columns, and join
            // keys must match across them.
            (Value::Long(a), Value::Double(b)) | (Value::Double(b), Value::Long(a)) => {
                (*a as f64) == *b
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Long(a), Value::Long(b)) => a.cmp(b),
            // Numeric comparisons go through the total-order key, so NaN
            // sits consistently above every number (Long or Double) and
            // the comparator is lawful for `sort` — required by relation
            // canonicalization, which sorts every exchanged relation.
            (Value::Double(a), Value::Double(b)) => {
                Self::total_order_key(*a).cmp(&Self::total_order_key(*b))
            }
            (Value::Long(a), Value::Double(b)) => {
                Self::total_order_key(*a as f64).cmp(&Self::total_order_key(*b))
            }
            (Value::Double(a), Value::Long(b)) => {
                Self::total_order_key(*a).cmp(&Self::total_order_key(*b as f64))
            }
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Longs and equal-valued Doubles must hash identically because
            // they compare equal (see PartialEq above).
            Value::Long(v) => Self::normalized_double_bits(*v as f64).hash(state),
            Value::Double(v) => Self::normalized_double_bits(*v).hash(state),
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Long(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn long_and_double_numeric_equality() {
        assert_eq!(Value::Long(3), Value::Double(3.0));
        assert_ne!(Value::Long(3), Value::Double(3.5));
        assert_eq!(hash_of(&Value::Long(3)), hash_of(&Value::Double(3.0)));
    }

    #[test]
    fn negative_zero_collapses() {
        assert_eq!(Value::Double(0.0), Value::Double(-0.0));
        assert_eq!(hash_of(&Value::Double(0.0)), hash_of(&Value::Double(-0.0)));
    }

    #[test]
    fn nan_is_self_equal_for_hashing() {
        assert_eq!(
            hash_of(&Value::Double(f64::NAN)),
            hash_of(&Value::Double(f64::NAN))
        );
    }

    #[test]
    fn ordering_is_lawful_around_nan_and_negatives() {
        // The old bit-fallback comparator had a cycle:
        // -1.0 < 1e308 < NaN < -1.0 (negative bits compare huge).  The
        // total-order key must place NaN above everything numeric and
        // keep the comparator transitive — `sort` panics on unlawful
        // comparators since Rust 1.81.
        let mut vals = [
            Value::Double(f64::NAN),
            Value::Double(-1.0),
            Value::Double(1e308),
            Value::Double(f64::NEG_INFINITY),
            Value::Double(f64::INFINITY),
            Value::Double(-0.0),
            Value::Long(-5),
            Value::Double(f64::NAN),
        ];
        vals.sort(); // must not panic
        assert_eq!(vals.first(), Some(&Value::Double(f64::NEG_INFINITY)));
        // NaN is the numeric maximum (both copies at the end).
        assert!(matches!(vals[vals.len() - 1], Value::Double(v) if v.is_nan()));
        assert!(matches!(vals[vals.len() - 2], Value::Double(v) if v.is_nan()));
        // Long vs Double NaN is consistent with Double vs Double NaN.
        assert!(Value::Long(i64::MAX) < Value::Double(f64::NAN));
        assert!(Value::Double(-1.0) < Value::Double(f64::NAN));
    }

    #[test]
    fn ordering_is_total_across_variants() {
        let mut vals = vec![
            Value::str("b"),
            Value::Long(2),
            Value::Double(1.5),
            Value::Bool(true),
            Value::str("a"),
            Value::Long(-1),
        ];
        vals.sort();
        // Must not panic and must be deterministic.
        let again = {
            let mut v = vals.clone();
            v.sort();
            v
        };
        assert_eq!(vals, again);
    }

    #[test]
    fn string_values_display_quoted() {
        assert_eq!(Value::str("abc").to_string(), "'abc'");
        assert_eq!(Value::Long(7).to_string(), "7");
    }

    #[test]
    fn serialized_sizes() {
        assert_eq!(Value::Long(1).serialized_size(), 8);
        assert_eq!(Value::str("abcd").serialized_size(), 8);
        assert_eq!(Value::Bool(true).serialized_size(), 1);
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Long(4).as_f64(), 4.0);
        assert_eq!(Value::Bool(true).as_f64(), 1.0);
        assert_eq!(Value::str("x").as_f64(), 0.0);
    }

    #[test]
    fn as_i64_is_stable_for_strings() {
        assert_eq!(Value::str("abc").as_i64(), Value::str("abc").as_i64());
        assert_ne!(Value::str("abc").as_i64(), Value::str("abd").as_i64());
    }
}
