//! Criterion micro-benchmarks for the core building blocks: record-pool
//! operations, delta derivation, domain extraction, and trigger application
//! at different batch sizes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hotdog::ivm::Strategy;
use hotdog::prelude::*;

fn bench_record_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_pool");
    g.bench_function("update_1k_keys", |b| {
        b.iter_batched(
            || RecordPool::with_secondary_indexes(2, &[vec![1]]),
            |mut pool| {
                for i in 0..1_000i64 {
                    pool.update(
                        Tuple::from_values([Value::Long(i), Value::Long(i % 37)]),
                        1.0,
                    );
                }
                pool
            },
            BatchSize::SmallInput,
        )
    });
    let mut pool = RecordPool::with_secondary_indexes(2, &[vec![1]]);
    for i in 0..10_000i64 {
        pool.update(
            Tuple::from_values([Value::Long(i), Value::Long(i % 37)]),
            1.0,
        );
    }
    g.bench_function("slice_via_secondary_index", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            pool.slice(&[1], &[Value::Long(5)], &mut |_, m| acc += m);
            acc
        })
    });
    g.bench_function("point_lookup", |b| {
        b.iter(|| pool.get(&Tuple::from_values([Value::Long(77), Value::Long(77 % 37)])))
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    let q3 = query("Q3").unwrap();
    let q17 = query("Q17").unwrap();
    g.bench_function("delta_q3", |b| b.iter(|| delta(&q3.expr, "LINEITEM")));
    g.bench_function("domain_extraction_q17", |b| {
        let d = delta(&q17.expr, "LINEITEM");
        b.iter(|| extract_domain(&d))
    });
    g.bench_function("compile_recursive_q3", |b| {
        b.iter(|| compile_recursive("Q3", &q3.expr))
    });
    g.finish();
}

fn bench_trigger_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("trigger_execution");
    g.sample_size(10);
    let q = query("Q3").unwrap();
    let stream = generate_tpch(5, 5_000);
    for (label, mode) in [
        ("single_tuple", ExecMode::SingleTuple),
        ("batched_1000", ExecMode::Batched { preaggregate: true }),
    ] {
        g.bench_function(format!("q3_{label}"), |b| {
            b.iter_batched(
                || LocalEngine::new(compile(q.id, &q.expr, Strategy::RecursiveIvm), mode),
                |mut engine| {
                    for batch in stream.batches(1_000) {
                        for (rel, delta) in batch {
                            engine.apply_batch(rel, &delta);
                        }
                    }
                    engine
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_record_pool,
    bench_compiler,
    bench_trigger_execution
);
criterion_main!(benches);
