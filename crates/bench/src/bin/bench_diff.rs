//! Bench-trend regression gate over two `BENCH_runtime.json` artifacts.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> \
//!     [--tolerance=0.25] [--throughput-tolerance=0.5]
//! ```
//!
//! Compares the tracked metrics (pipeline_stream speedups, adaptive_stream
//! adaptive-vs-best-static ratios, fig9/fig10 throughput) and exits
//! non-zero when any regresses beyond its tolerance — see
//! [`hotdog_bench::diff`] for which metrics are gated tightly vs. loosely.
//! Exit codes: 0 = pass, 1 = regression, 2 = usage / unreadable artifact.

use hotdog_bench::diff::{diff_artifacts, Tolerances};
use hotdog_bench::json::JsonValue;
use hotdog_bench::{f, print_table};
use std::process::ExitCode;

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).ok_or_else(|| format!("{path} is not valid JSON"))
}

fn main() -> ExitCode {
    let mut paths = Vec::new();
    let mut tolerances = Tolerances::default();
    // A NaN tolerance would make every `drop > tolerance` comparison false
    // and silently disarm the gate; only finite non-negative values count.
    let parse_tolerance = |v: &str| v.parse::<f64>().ok().filter(|t| t.is_finite() && *t >= 0.0);
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--tolerance=") {
            match parse_tolerance(v) {
                Some(t) => tolerances.ratio = t,
                None => {
                    eprintln!("bad --tolerance value {v:?} (finite fraction >= 0 required)");
                    return ExitCode::from(2);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--throughput-tolerance=") {
            match parse_tolerance(v) {
                Some(t) => tolerances.throughput = t,
                None => {
                    eprintln!(
                        "bad --throughput-tolerance value {v:?} (finite fraction >= 0 required)"
                    );
                    return ExitCode::from(2);
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("unknown flag {arg}");
            return ExitCode::from(2);
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_diff <baseline.json> <candidate.json> \
             [--tolerance=R] [--throughput-tolerance=T]"
        );
        return ExitCode::from(2);
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::from(2);
        }
    };

    let report = diff_artifacts(&baseline, &candidate, tolerances);
    let mut rows: Vec<Vec<String>> = report
        .compared
        .iter()
        .map(|d| {
            vec![
                d.metric.clone(),
                f(d.baseline),
                f(d.candidate),
                format!("{:+.1}%", -d.drop * 100.0),
                format!("{:.0}%", d.tolerance * 100.0),
                if d.regressed() { "REGRESSED" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    rows.sort_by(|a, b| a[0].cmp(&b[0]));
    print_table(
        &format!("bench_diff — {baseline_path} vs {candidate_path}"),
        &[
            "metric",
            "baseline",
            "candidate",
            "delta",
            "allowed drop",
            "verdict",
        ],
        &rows,
    );
    for missing in &report.missing {
        println!("note: {missing} missing from candidate (skipped)");
    }
    // Telemetry counters ride along for trend visibility but never gate:
    // message/instruction counts legitimately move with protocol changes.
    for d in &report.tracked {
        println!(
            "tracked (non-gating): {} {} -> {} ({:+.1}%)",
            d.metric,
            f(d.baseline),
            f(d.candidate),
            -d.drop * 100.0
        );
    }

    let regressions = report.regressions();
    if report.compared.is_empty() {
        // A gate that silently compares nothing would pass forever.
        eprintln!("bench_diff: no tracked metrics found in both artifacts");
        return ExitCode::from(1);
    }
    if report.ratio_gate_lost {
        // Same rationale, scoped to the tight machine-independent gate:
        // modelled throughput rows must not keep CI green while every
        // speedup/adaptive ratio went missing (e.g. comparison keys
        // drifted from the baseline's worker count).
        eprintln!(
            "bench_diff: the baseline tracks ratio metrics but none matched \
             the candidate — the ratio gate is not being applied"
        );
        return ExitCode::from(1);
    }
    if regressions.is_empty() {
        println!(
            "bench_diff: {} tracked metrics within tolerance",
            report.compared.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_diff: {} of {} tracked metrics regressed beyond tolerance",
            regressions.len(),
            report.compared.len()
        );
        ExitCode::from(1)
    }
}
