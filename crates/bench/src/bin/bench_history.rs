//! `bench_history` — the committed long-horizon bench record.
//!
//! CI's `bench-trend` job diffs against the last N runs' *artifacts*,
//! which expire with GitHub's artifact retention (90 days by default).
//! The committed `BENCH_HISTORY.jsonl` outlives that: one JSON line per
//! main-branch bench run, appended by CI, holding the flattened
//! machine-independent ratio metrics
//! ([`diff::RATIO_SECTIONS`](hotdog_bench::diff::RATIO_SECTIONS)).
//!
//! Two subcommands:
//!
//! * `bench_history emit <BENCH_runtime.json>` — print one history line
//!   for the given artifact (sha from `GITHUB_SHA`, unix timestamp,
//!   flattened ratio metrics).  CI appends it to `BENCH_HISTORY.jsonl`
//!   and commits.
//! * `bench_history check <BENCH_HISTORY.jsonl> <BENCH_runtime.json>
//!   [--tolerance=0.6] [--window=50]` — hold the fresh artifact against
//!   the last `window` history lines: any tracked ratio that dropped
//!   more than `tolerance` relative to *any* line in the window fails
//!   (exit 1) — the long-horizon drift gate that survives artifact
//!   expiry.  An empty or missing history passes (young repo).

use hotdog_bench::diff::ratio_metrics;
use hotdog_bench::json::{JsonObj, JsonValue};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: bench_history emit <BENCH_runtime.json>\n\
         \x20      bench_history check <BENCH_HISTORY.jsonl> <BENCH_runtime.json> \
         [--tolerance=0.6] [--window=50]"
    );
    exit(2);
}

fn load_artifact(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_history: cannot read {path}: {e}");
        exit(2);
    });
    JsonValue::parse(&text).unwrap_or_else(|| {
        eprintln!("bench_history: cannot parse {path}");
        exit(2);
    })
}

fn emit(artifact_path: &str) {
    let artifact = load_artifact(artifact_path);
    let sha = std::env::var("GITHUB_SHA").unwrap_or_else(|_| "unknown".into());
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut metrics = JsonObj::new();
    for (key, value) in ratio_metrics(&artifact) {
        metrics = metrics.num(&key, value);
    }
    let line = JsonObj::new()
        .str("sha", &sha)
        .int("unix_time", unix)
        .raw("metrics", metrics.render())
        .render();
    println!("{line}");
}

fn check(history_path: &str, artifact_path: &str, tolerance: f64, window: usize) {
    let artifact = load_artifact(artifact_path);
    let fresh = ratio_metrics(&artifact);
    let text = match std::fs::read_to_string(history_path) {
        Ok(t) => t,
        Err(_) => {
            println!("no bench history at {history_path} — long-horizon gate is empty, passing");
            return;
        }
    };
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let tail = &lines[lines.len().saturating_sub(window)..];
    if tail.is_empty() {
        println!("bench history is empty — long-horizon gate passes");
        return;
    }
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for line in tail {
        let Some(entry) = JsonValue::parse(line) else {
            eprintln!("bench_history: skipping unparseable history line");
            continue;
        };
        let sha = entry
            .get("sha")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        let Some(metrics) = entry.get("metrics") else {
            continue;
        };
        for (key, now) in &fresh {
            let Some(past) = metrics.get(key).and_then(|v| v.as_f64()) else {
                continue;
            };
            compared += 1;
            if past > 0.0 && (past - now) / past > tolerance {
                regressions.push(format!(
                    "{key}: {now:.3} is {:.0}% below {past:.3} (run {})",
                    (past - now) / past * 100.0,
                    &sha[..sha.len().min(12)]
                ));
            }
        }
    }
    println!(
        "compared {compared} metric point(s) against {} history line(s), window {window}",
        tail.len()
    );
    if !regressions.is_empty() {
        eprintln!("long-horizon regressions (tolerance {tolerance}):");
        for r in &regressions {
            eprintln!("  {r}");
        }
        exit(1);
    }
    println!("long-horizon gate passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.6f64;
    let mut window = 50usize;
    let mut positional = Vec::new();
    for a in &args {
        if let Some(v) = a.strip_prefix("--tolerance=") {
            tolerance = v.parse().unwrap_or_else(|_| usage());
        } else if let Some(v) = a.strip_prefix("--window=") {
            window = v.parse().unwrap_or_else(|_| usage());
        } else {
            positional.push(a.as_str());
        }
    }
    match positional.as_slice() {
        ["emit", artifact] => emit(artifact),
        ["check", history, artifact] => check(history, artifact, tolerance, window),
        _ => usage(),
    }
}
