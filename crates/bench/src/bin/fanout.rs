//! Fan-out bench: the serving layer's shared-plan claim, measured.
//!
//! N synthetic subscribers (default 10 000, `HOTDOG_FANOUT_SUBS`) register
//! parameter bindings over one TPC-H standing-query shape; the hub
//! maintains **one** trigger program and fans each committed batch's
//! captured delta out through the per-subscriber filters.  The
//! counterfactual arm runs a sample of *independent* trigger programs —
//! what N subscribers would cost without plan sharing — and extrapolates
//! to N.
//!
//! Reported per `(query, workers)` entry in the `fanout` section of
//! `BENCH_runtime.json` (gated by `bench_diff`, recorded by
//! `bench_history`):
//!
//! * `subscribers_per_sec` — registration throughput (subscribe loop);
//! * `push_p50_ms` / `push_p99_ms` — per-round fan-out latency (commit +
//!   capture drain + N delta-splits);
//! * `deltas_per_sec` — pushed delta throughput across the stream;
//! * `shared_vs_per_subscriber` — extrapolated cost of N independent
//!   programs over the shared-plan cost (the acceptance gate: ≥ 5x at
//!   10k subscribers).

use hotdog::prelude::*;
use hotdog_bench::{f, json, num_cpus_capped, print_table, stream_for};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct FanoutRun {
    query: String,
    workers: usize,
    subscribers: usize,
    rounds: usize,
    deltas_pushed: u64,
    subscribers_per_sec: f64,
    push_p50_ms: f64,
    push_p99_ms: f64,
    deltas_per_sec: f64,
    shared_secs: f64,
    per_program_secs: f64,
    shared_vs_per_subscriber: f64,
}

fn run_fanout(
    q: &CatalogQuery,
    workers: usize,
    subscribers: usize,
    tuples: usize,
    batch_tuples: usize,
    sample_programs: usize,
) -> FanoutRun {
    let shape = QueryShape::new(q.id, q.expr.clone(), q.partition_keys.iter().copied());
    let stream = stream_for(q, tuples, 0xFA9);
    let batches = stream.batches(batch_tuples);

    // -- shared-plan arm: one program, N filtered subscribers ------------
    let mut hub = SubscriptionHub::new(|_s: &QueryShape, dplan: DistributedPlan| {
        ThreadedCluster::new(dplan, workers)
    });
    let start = Instant::now();
    let (first_id, _) = hub.subscribe(&shape, ParamFilter::all());
    let schema = hub.schema_of(first_id).expect("live").clone();
    // Scalar views (e.g. Q6's total) have no columns to bind — every
    // subscriber then takes the whole view, which only makes the
    // fan-out split *more* expensive per subscriber, not less.
    let column = schema.columns().first().cloned();
    for i in 1..subscribers {
        let filter = match &column {
            Some(col) => ParamFilter::equals(col.clone(), Value::Long(i as i64 % 1000)),
            None => ParamFilter::all(),
        };
        hub.subscribe(&shape, filter);
    }
    let subscribe_secs = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(hub.active_programs(), 1);
    assert_eq!(hub.subscriber_count(), subscribers);

    let mut push_secs: Vec<f64> = Vec::with_capacity(batches.len());
    let mut deltas_pushed = 0u64;
    let shared_start = Instant::now();
    for round in &batches {
        for (rel, batch) in round {
            hub.apply_batch(rel, batch);
        }
        let pump_start = Instant::now();
        deltas_pushed += hub.pump().len() as u64;
        push_secs.push(pump_start.elapsed().as_secs_f64());
    }
    let shared_secs = shared_start.elapsed().as_secs_f64().max(1e-9);

    // -- counterfactual arm: independent programs, extrapolated to N -----
    // Each subscriber without plan sharing runs its own trigger program
    // over the same stream (its parameter filter only narrows the *read*;
    // maintenance work is the full view's).  A small sample is measured
    // and scaled.
    let per_start = Instant::now();
    for _ in 0..sample_programs {
        let mut solo = ThreadedCluster::new(shape.compile(), workers);
        for round in &batches {
            for (rel, batch) in round {
                solo.apply_batch(rel, batch);
            }
            // The per-round push a dedicated program would serve.
            let _ = solo.query_result();
        }
    }
    let per_program_secs =
        per_start.elapsed().as_secs_f64().max(1e-9) / sample_programs.max(1) as f64;
    let extrapolated = per_program_secs * subscribers as f64;

    let mut sorted = push_secs.clone();
    sorted.sort_by(f64::total_cmp);
    let total_push: f64 = push_secs.iter().sum();
    FanoutRun {
        query: q.id.to_string(),
        workers,
        subscribers,
        rounds: batches.len(),
        deltas_pushed,
        subscribers_per_sec: subscribers as f64 / subscribe_secs,
        push_p50_ms: percentile(&sorted, 0.50) * 1e3,
        push_p99_ms: percentile(&sorted, 0.99) * 1e3,
        deltas_per_sec: deltas_pushed as f64 / total_push.max(1e-9),
        shared_secs,
        per_program_secs,
        shared_vs_per_subscriber: extrapolated / shared_secs,
    }
}

fn to_json(r: &FanoutRun) -> String {
    json::JsonObj::new()
        .str("query", &r.query)
        .int("workers", r.workers as u64)
        .int("subscribers", r.subscribers as u64)
        .int("rounds", r.rounds as u64)
        .int("deltas_pushed", r.deltas_pushed)
        .num("subscribers_per_sec", r.subscribers_per_sec)
        .num("push_p50_ms", r.push_p50_ms)
        .num("push_p99_ms", r.push_p99_ms)
        .num("deltas_per_sec", r.deltas_per_sec)
        .num("shared_secs", r.shared_secs)
        .num("per_program_secs", r.per_program_secs)
        .num("shared_vs_per_subscriber", r.shared_vs_per_subscriber)
        .render()
}

fn main() {
    let subscribers = env_usize("HOTDOG_FANOUT_SUBS", 10_000);
    let tuples = env_usize("HOTDOG_FANOUT_TUPLES", 4_000);
    let batch_tuples = env_usize("HOTDOG_FANOUT_BATCH", 250);
    let sample_programs = env_usize("HOTDOG_FANOUT_SAMPLE", 4);
    // Same pinning knob as the other measured stream comparisons: CI fixes
    // the worker count so entry keys match the committed baseline's.
    let workers = std::env::var("HOTDOG_STREAM_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| num_cpus_capped(4));

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for id in ["Q3", "Q6"] {
        let q = query(id).unwrap();
        let run = run_fanout(
            &q,
            workers,
            subscribers,
            tuples,
            batch_tuples,
            sample_programs,
        );
        rows.push(vec![
            run.query.clone(),
            run.workers.to_string(),
            run.subscribers.to_string(),
            f(run.subscribers_per_sec / 1e3),
            f(run.push_p50_ms),
            f(run.push_p99_ms),
            f(run.deltas_per_sec / 1e3),
            f(run.shared_vs_per_subscriber),
        ]);
        entries.push(to_json(&run));
    }
    print_table(
        &format!("Fan-out — shared-plan subscriptions ({subscribers} subscribers, x{workers})"),
        &[
            "query",
            "workers",
            "subs",
            "sub/s (K)",
            "push p50 (ms)",
            "push p99 (ms)",
            "deltas/s (K)",
            "shared vs per-sub",
        ],
        &rows,
    );

    let path = json::bench_json_path();
    match json::update_bench_json(&path, "fanout", &json::jarray(entries)) {
        Ok(()) => eprintln!("wrote section \"fanout\" (2 entries) to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
