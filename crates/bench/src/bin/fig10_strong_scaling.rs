//! Figures 10 & 11: strong scalability — fixed batch sizes, growing worker
//! counts, including the re-evaluation-on-cluster comparison point.

use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let base: usize = std::env::var("HOTDOG_STRONG_BATCH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let batch_sizes = [base / 4, base / 2, base];
    let workers_axis = [2usize, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for id in ["Q6", "Q17", "Q3", "Q7", "Q1", "Q12", "Q14", "Q22"] {
        let q = query(id).unwrap();
        for &batch in &batch_sizes {
            let stream = stream_for(&q, batch * 2, 10);
            for workers in workers_axis {
                let run = run_distributed(&q, &stream, workers, batch, OptLevel::O3);
                rows.push(vec![
                    id.into(),
                    batch.to_string(),
                    workers.to_string(),
                    f(run.median_latency_secs * 1e3),
                    f(run.throughput / 1e3),
                ]);
            }
        }
    }
    print_table(
        &format!("Figures 10/11 — strong scaling (modelled latency, batches up to {base} tuples)"),
        &["query", "batch", "workers", "median latency (ms)", "throughput (Ktup/s)"],
        &rows,
    );
}
