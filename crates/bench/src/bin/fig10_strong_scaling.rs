//! Figures 10 & 11: strong scalability — fixed batch sizes, growing worker
//! counts, including the re-evaluation-on-cluster comparison point.
//!
//! By default the simulated cluster reports *modelled* latency over the
//! paper's worker axis.  With `--real` the experiment instead runs on the
//! `hotdog-runtime` thread-per-worker backend (measured wall-clock, worker
//! axis bounded by the machine's cores); `--pipeline` / `--coalesce=N`
//! select its pipelined ingestion path.  Every run appends a
//! `fig10_strong_scaling` section to `BENCH_runtime.json` so the perf
//! trajectory is tracked across PRs, plus an `async_gather_strong` section
//! comparing the tagged-reply protocol against its positional-FIFO
//! schedule on a deep (multi-stage) query where gathers dominate.

use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let backend = BackendKind::from_args();
    let base: usize = std::env::var("HOTDOG_STRONG_BATCH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let batch_sizes = [base / 4, base / 2, base];
    let workers_axis: &[usize] = match backend {
        BackendKind::Simulated => &[2, 4, 8, 16, 32, 64],
        // Measured scaling only makes sense up to the physical parallelism.
        _ => &[1, 2, 4, 8],
    };
    let queries: &[&str] = match backend {
        BackendKind::Simulated => &["Q6", "Q17", "Q3", "Q7", "Q1", "Q12", "Q14", "Q22"],
        _ => &["Q6", "Q17", "Q3", "Q7"],
    };
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for id in queries {
        let q = query(id).unwrap();
        for &batch in &batch_sizes {
            let stream = stream_for(&q, batch * 2, 10);
            for &workers in workers_axis {
                let run = run_distributed_on(&q, &stream, workers, batch, OptLevel::O3, backend);
                rows.push(vec![
                    (*id).into(),
                    batch.to_string(),
                    workers.to_string(),
                    f(run.median_latency_secs * 1e3),
                    f(run.throughput / 1e3),
                ]);
                runs.push(run);
            }
        }
    }
    print_table(
        &format!(
            "Figures 10/11 — strong scaling ({} latency, batches up to {base} tuples)",
            backend.label()
        ),
        &[
            "query",
            "batch",
            "workers",
            backend.latency_column(),
            "throughput (Ktup/s)",
        ],
        &rows,
    );
    emit_bench_json("fig10_strong_scaling", &runs);

    // Tagged-reply protocol on a *deep* plan: Q7 compiles to a six-stage
    // program, so every trigger pays several repart/gather rounds — the
    // worst case for full-window drains and the best case for async
    // gathers.  HOTDOG_STREAM_WORKERS pins the comparison keys to the
    // committed baseline's worker count (same convention as fig9's stream
    // sections).
    let stream_workers = std::env::var("HOTDOG_STREAM_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| num_cpus_capped(4));
    let tuples_per_batch: usize = std::env::var("HOTDOG_STREAM_BATCH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let q = query("Q7").unwrap();
    let cmp = compare_async_gather(
        &q,
        stream_workers,
        64,
        tuples_per_batch,
        2 * tuples_per_batch,
    );
    let ag_rows = vec![async_gather_row(&cmp)];
    let ag_json = vec![cmp.to_json()];
    print_table(
        "Tagged-reply protocol on a deep plan (positional FIFO vs async gathers)",
        &ASYNC_GATHER_HEADER,
        &ag_rows,
    );
    let path = json::bench_json_path();
    let _ = json::update_bench_json(&path, "async_gather_strong", &json::jarray(ag_json));
}
