//! Figures 10 & 11: strong scalability — fixed batch sizes, growing worker
//! counts, including the re-evaluation-on-cluster comparison point.
//!
//! By default the simulated cluster reports *modelled* latency over the
//! paper's worker axis.  With `--real` the experiment instead runs on the
//! `hotdog-runtime` thread-per-worker backend (measured wall-clock, worker
//! axis bounded by the machine's cores); `--pipeline` / `--coalesce=N`
//! select its pipelined ingestion path.  Every run appends a
//! `fig10_strong_scaling` section to `BENCH_runtime.json` so the perf
//! trajectory is tracked across PRs.

use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let backend = BackendKind::from_args();
    let base: usize = std::env::var("HOTDOG_STRONG_BATCH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    let batch_sizes = [base / 4, base / 2, base];
    let workers_axis: &[usize] = match backend {
        BackendKind::Simulated => &[2, 4, 8, 16, 32, 64],
        // Measured scaling only makes sense up to the physical parallelism.
        _ => &[1, 2, 4, 8],
    };
    let queries: &[&str] = match backend {
        BackendKind::Simulated => &["Q6", "Q17", "Q3", "Q7", "Q1", "Q12", "Q14", "Q22"],
        _ => &["Q6", "Q17", "Q3", "Q7"],
    };
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for id in queries {
        let q = query(id).unwrap();
        for &batch in &batch_sizes {
            let stream = stream_for(&q, batch * 2, 10);
            for &workers in workers_axis {
                let run = run_distributed_on(&q, &stream, workers, batch, OptLevel::O3, backend);
                rows.push(vec![
                    (*id).into(),
                    batch.to_string(),
                    workers.to_string(),
                    f(run.median_latency_secs * 1e3),
                    f(run.throughput / 1e3),
                ]);
                runs.push(run);
            }
        }
    }
    print_table(
        &format!(
            "Figures 10/11 — strong scaling ({} latency, batches up to {base} tuples)",
            backend.label()
        ),
        &[
            "query",
            "batch",
            "workers",
            backend.latency_column(),
            "throughput (Ktup/s)",
        ],
        &rows,
    );
    emit_bench_json("fig10_strong_scaling", &runs);
}
