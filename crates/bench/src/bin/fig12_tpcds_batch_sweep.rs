//! Figure 12: normalized throughput of the TPC-DS queries for different
//! batch sizes, single-tuple execution as the baseline.

use hotdog::ivm::Strategy;
use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let tuples = default_local_tuples();
    let batch_sizes = [1usize, 10, 100, 1_000, 10_000];
    let mut rows = Vec::new();
    for q in tpcds_queries() {
        let stream = stream_for(&q, tuples, 17);
        let baseline = single_tuple_baseline(&q, &stream);
        let mut row = vec![q.id.to_string(), f(baseline.throughput)];
        for bs in batch_sizes {
            let run = run_local(
                &q,
                &stream,
                Strategy::RecursiveIvm,
                ExecMode::Batched { preaggregate: true },
                bs,
            );
            row.push(f(run.throughput / baseline.throughput));
        }
        rows.push(row);
    }
    print_table(
        &format!("Figure 12 — TPC-DS normalized batched throughput ({tuples} tuples)"),
        &[
            "query",
            "single t/s",
            "bs=1",
            "bs=10",
            "bs=100",
            "bs=1k",
            "bs=10k",
        ],
        &rows,
    );
}
