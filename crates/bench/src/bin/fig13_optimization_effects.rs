//! Figure 13: effect of the distributed-compilation optimizations (O0 naive,
//! O1 simplifications, O2 block fusion, O3 CSE/DCE) on TPC-H Q3 latency.

use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let batch: usize = std::env::var("HOTDOG_STRONG_BATCH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8_000);
    let q = query("Q3").unwrap();
    let stream = stream_for(&q, batch * 2, 12);
    let mut rows = Vec::new();
    for workers in [2usize, 4, 8, 16, 32] {
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            let run = run_distributed(&q, &stream, workers, batch, opt);
            rows.push(vec![
                workers.to_string(),
                opt.label().to_string(),
                f(run.median_latency_secs * 1e3),
                run.stages.to_string(),
                f(run.mb_shuffled_per_worker),
            ]);
        }
    }
    print_table(
        &format!("Figure 13 — optimization effects on Q3 ({batch}-tuple batches, modelled)"),
        &[
            "workers",
            "opt level",
            "median latency (ms)",
            "stages",
            "MB shuffled/worker",
        ],
        &rows,
    );
}
