//! Figure 5: the block fusion effect on TPC-H Q3 — the distributed program
//! before (one block per statement) and after block fusion, with block
//! counts per mode.

use hotdog::distributed::StmtMode;
use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let q = query("Q3").unwrap();
    let plan = compile_recursive(q.id, &q.expr);
    let spec = PartitioningSpec::heuristic(&plan, &q.partition_keys);

    let before = compile_distributed(&plan, &spec, OptLevel::O1);
    let after = compile_distributed(&plan, &spec, OptLevel::O3);

    println!("=== Q3 distributed program BEFORE block fusion (O1) ===");
    print!("{}", before.pretty());
    println!("\n=== Q3 distributed program AFTER block fusion + CSE/DCE (O3) ===");
    print!("{}", after.pretty());

    let count = |dp: &DistributedPlan, mode: StmtMode| {
        dp.programs
            .iter()
            .flat_map(|p| p.blocks.iter())
            .filter(|b| b.mode == mode)
            .count()
    };
    let mut rows = Vec::new();
    for (label, dp) in [("before (O1)", &before), ("after (O3)", &after)] {
        rows.push(vec![
            label.to_string(),
            count(dp, StmtMode::Local).to_string(),
            count(dp, StmtMode::Distributed).to_string(),
        ]);
    }
    print_table(
        "Figure 5 — statement blocks before/after fusion (all Q3 triggers)",
        &["program", "local blocks", "distributed blocks"],
        &rows,
    );
}
