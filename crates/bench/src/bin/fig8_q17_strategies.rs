//! Figure 8: TPC-H Q17 view refresh rate for re-evaluation, classical IVM
//! (the PostgreSQL stand-ins run on the same interpreter) and recursive IVM,
//! across batch sizes.

use hotdog::ivm::Strategy;
use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let tuples = (default_local_tuples() / 3).max(3_000);
    let q = query("Q17").unwrap();
    let stream = stream_for(&q, tuples, 8);
    let batch_sizes = [1usize, 10, 100, 1_000, 10_000];

    let mut rows = Vec::new();
    let single = single_tuple_baseline(&q, &stream);
    rows.push(vec![
        "RIVM single-tuple".into(),
        "-".into(),
        f(single.throughput),
    ]);
    for (label, strategy) in [
        ("Re-eval", Strategy::Reevaluation),
        ("IVM (classical)", Strategy::ClassicalIvm),
        ("RIVM (recursive)", Strategy::RecursiveIvm),
    ] {
        for bs in batch_sizes {
            let run = run_local(
                &q,
                &stream,
                strategy,
                ExecMode::Batched { preaggregate: true },
                bs,
            );
            rows.push(vec![label.into(), bs.to_string(), f(run.throughput)]);
        }
    }
    print_table(
        &format!("Figure 8 — Q17 view refresh rate (tuples/sec, {tuples} tuples)"),
        &["strategy", "batch size", "throughput"],
        &rows,
    );
}
