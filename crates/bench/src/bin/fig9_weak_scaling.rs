//! Figure 9: weak scalability of distributed IVM — every worker processes a
//! fixed batch partition, the worker count grows.
//!
//! By default the simulated cluster reports *modelled* latency; with
//! `--real` the experiment runs on the `hotdog-runtime` thread-per-worker
//! backend (measured wall-clock), and with `--pipeline` (optionally
//! `--coalesce=N`) on its pipelined ingestion path.  Every run also
//! appends a `fig9_weak_scaling` section to `BENCH_runtime.json`
//! (machine-readable throughput and latency percentiles), plus a
//! `pipeline_stream` section comparing the epoch-synchronous and
//! pipelined+coalescing paths head-to-head on a many-small-batch stream —
//! the number tracked across PRs for the runtime's streaming throughput.

use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let backend = BackendKind::from_args();
    let per_worker: usize = std::env::var("HOTDOG_PER_WORKER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let workers_axis: &[usize] = match backend {
        BackendKind::Simulated => &[2, 4, 8, 16, 32, 64],
        _ => &[1, 2, 4, 8],
    };
    let mut rows = Vec::new();
    let mut runs = Vec::new();
    for id in ["Q6", "Q17", "Q3", "Q7"] {
        let q = query(id).unwrap();
        for &workers in workers_axis {
            let batch = per_worker * workers;
            let stream = stream_for(&q, batch * 2, 9);
            let run = run_distributed_on(&q, &stream, workers, batch, OptLevel::O3, backend);
            rows.push(vec![
                id.into(),
                workers.to_string(),
                (per_worker * workers).to_string(),
                f(run.median_latency_secs * 1e3),
                f(run.throughput / 1e3),
                f(run.mb_shuffled_per_worker),
            ]);
            runs.push(run);
        }
    }
    print_table(
        &format!(
            "Figure 9 — weak scaling ({per_worker} tuples/worker/batch, {})",
            backend.label()
        ),
        &[
            "query",
            "workers",
            "batch",
            backend.latency_column(),
            "throughput (Ktup/s)",
            "MB shuffled/worker",
        ],
        &rows,
    );
    emit_bench_json("fig9_weak_scaling", &runs);

    // Streaming head-to-head (the acceptance number for the pipelined
    // runtime): 64 small batches through the epoch-synchronous path vs. the
    // pipelined path coalescing up to 64 batches into one trigger.
    let tuples_per_batch: usize = std::env::var("HOTDOG_STREAM_BATCH")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    // Worker count of the measured stream comparisons.  Overridable so CI's
    // bench_diff gate can pin it to the committed baseline's value (the
    // comparison keys include the worker count; the tracked numbers are
    // per-host ratios, not absolute throughput).
    let workers = std::env::var("HOTDOG_STREAM_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| num_cpus_capped(4));
    let mut cmp_rows = Vec::new();
    let mut cmp_json = Vec::new();
    for id in ["Q3", "Q6"] {
        let q = query(id).unwrap();
        let cmp =
            compare_stream_throughput(&q, workers, 64, tuples_per_batch, 64 * tuples_per_batch);
        cmp_rows.push(vec![
            id.into(),
            workers.to_string(),
            format!("64 x {tuples_per_batch}"),
            f(cmp.sync.throughput / 1e3),
            f(cmp.pipelined.throughput / 1e3),
            format!("{:.2}x", cmp.speedup()),
            cmp.pipelined
                .coalesce
                .as_ref()
                .map(|c| format!("{} -> {}", c.batches_admitted, c.batches_executed))
                .unwrap_or_default(),
        ]);
        cmp_json.push(cmp.to_json());
    }
    print_table(
        "Pipelined stream throughput (epoch-synchronous vs pipelined+coalescing)",
        &[
            "query",
            "workers",
            "stream",
            "sync (Ktup/s)",
            "pipelined (Ktup/s)",
            "speedup",
            "triggers",
        ],
        &cmp_rows,
    );
    let path = json::bench_json_path();
    let _ = json::update_bench_json(&path, "pipeline_stream", &json::jarray(cmp_json));

    // Tagged-reply protocol head-to-head (the acceptance number for the
    // async-gather/batched-scatter rework): the same 64-small-batch stream
    // through the pipelined runtime on the positional-FIFO schedule (drain
    // the window before every fetch, one scatter message per statement)
    // vs. the tagged schedule (fully async gathers, ApplyMany batching).
    // A tight coalescing bound keeps many triggers — and therefore many
    // gather rounds — in the stream: the schedule difference under test.
    let mut ag_rows = Vec::new();
    let mut ag_json = Vec::new();
    for id in ["Q3", "Q6"] {
        let q = query(id).unwrap();
        let cmp = compare_async_gather(&q, workers, 64, tuples_per_batch, 2 * tuples_per_batch);
        ag_rows.push(async_gather_row(&cmp));
        ag_json.push(cmp.to_json());
    }
    print_table(
        "Tagged-reply protocol (positional FIFO vs async gathers + batched scatters)",
        &ASYNC_GATHER_HEADER,
        &ag_rows,
    );
    let _ = json::update_bench_json(&path, "async_gather", &json::jarray(ag_json));

    // Net-overhead head-to-head (the acceptance number for the socket
    // transport): the same 64-small-batch stream through the
    // epoch-synchronous threaded backend and through the multi-process
    // TCP backend — same driver, same schedule, real sockets instead of
    // channels.  The ratio is what the wire costs; the ROADMAP's
    // network-path optimizations are held against it.
    let mut net_rows = Vec::new();
    let mut net_json = Vec::new();
    for id in ["Q3", "Q6"] {
        let q = query(id).unwrap();
        let cmp = compare_net_overhead(&q, workers, 64, tuples_per_batch);
        net_rows.push(vec![
            id.into(),
            workers.to_string(),
            format!("64 x {tuples_per_batch}"),
            f(cmp.threaded.throughput / 1e3),
            f(cmp.tcp.throughput / 1e3),
            format!("{:.2}x", cmp.tcp_vs_threaded()),
        ]);
        net_json.push(cmp.to_json());
    }
    print_table(
        "Net overhead (threaded channels vs multi-process TCP, epoch-synchronous)",
        &[
            "query",
            "workers",
            "stream",
            "threaded (Ktup/s)",
            "tcp (Ktup/s)",
            "tcp/threaded",
        ],
        &net_rows,
    );
    let _ = json::update_bench_json(&path, "net_overhead", &json::jarray(net_json));

    // Columnar-vs-row interpreter head-to-head (the acceptance number for
    // the vectorized trigger path): the same stream through a single
    // threaded worker with the `HOTDOG_COLUMNAR` knob off and on.  One
    // worker so trigger execution dominates; both arms are bit-identical
    // in output, so the ratio is pure interpreter speed.
    let mut col_rows = Vec::new();
    let mut col_json = Vec::new();
    for id in ["Q3", "Q6"] {
        let q = query(id).unwrap();
        let cmp = compare_columnar(&q, 1, 16, 32 * tuples_per_batch);
        col_rows.push(vec![
            id.into(),
            "1".into(),
            format!("16 x {}", 32 * tuples_per_batch),
            f(cmp.row.throughput / 1e3),
            f(cmp.columnar.throughput / 1e3),
            format!("{:.2}x", cmp.columnar_vs_row()),
        ]);
        col_json.push(cmp.to_json());
    }
    print_table(
        "Columnar trigger execution (row interpreter vs vectorized, 1 worker)",
        &[
            "query",
            "workers",
            "stream",
            "row (Ktup/s)",
            "columnar (Ktup/s)",
            "columnar/row",
        ],
        &col_rows,
    );
    let _ = json::update_bench_json(&path, "columnar", &json::jarray(col_json));

    // Static-vs-adaptive coalescing on a stream whose batch-size
    // distribution shifts mid-run (the adaptive controller's acceptance
    // number: `adaptive_vs_best_static`).  Phase sizes scale with
    // HOTDOG_STREAM_SCALE so CI smoke mode stays fast.
    let scale: usize = std::env::var("HOTDOG_STREAM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let phases: Vec<(usize, usize)> = vec![(192 * scale, 2), (24 * scale, 48), (3 * scale, 512)];
    let mut ad_rows = Vec::new();
    let mut ad_json = Vec::new();
    for id in ["Q3", "Q6"] {
        let q = query(id).unwrap();
        let cmp = compare_adaptive_stream(&q, workers, &phases, 64);
        let (best_label, best_tps) = {
            let (l, t) = cmp.best_static();
            (l.to_string(), t)
        };
        for (label, run) in &cmp.runs {
            ad_rows.push(vec![
                id.into(),
                label.clone(),
                f(run.throughput / 1e3),
                run.coalesce
                    .as_ref()
                    .map(|c| format!("{} -> {}", c.batches_admitted, c.batches_executed))
                    .unwrap_or_default(),
                run.coalesce
                    .as_ref()
                    .map(|c| c.coalesce_bound.to_string())
                    .unwrap_or_default(),
            ]);
        }
        ad_rows.push(vec![
            id.into(),
            format!("best static: {best_label}"),
            f(best_tps / 1e3),
            format!("adaptive/best = {:.2}", cmp.adaptive_vs_best_static()),
            String::new(),
        ]);
        ad_json.push(cmp.to_json());
    }
    print_table(
        "Adaptive coalescing on a shifting-batch-size stream (static {1, 64, inf} vs adaptive)",
        &[
            "query",
            "config",
            "throughput (Ktup/s)",
            "triggers",
            "final bound",
        ],
        &ad_rows,
    );
    let _ = json::update_bench_json(&path, "adaptive_stream", &json::jarray(ad_json));
}
