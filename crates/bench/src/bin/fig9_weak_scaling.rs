//! Figure 9: weak scalability of distributed IVM — every worker processes a
//! fixed batch partition, the worker count grows.
//!
//! By default the simulated cluster reports *modelled* latency; with
//! `--real` the experiment runs on the `hotdog-runtime` thread-per-worker
//! backend and reports *measured* wall-clock latency.

use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let backend = Backend::from_args();
    let per_worker: usize = std::env::var("HOTDOG_PER_WORKER")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let workers_axis: &[usize] = match backend {
        Backend::Simulated => &[2, 4, 8, 16, 32, 64],
        Backend::Threaded => &[1, 2, 4, 8],
    };
    let mut rows = Vec::new();
    for id in ["Q6", "Q17", "Q3", "Q7"] {
        let q = query(id).unwrap();
        for &workers in workers_axis {
            let batch = per_worker * workers;
            let stream = stream_for(&q, batch * 2, 9);
            let run = run_distributed_on(&q, &stream, workers, batch, OptLevel::O3, backend);
            rows.push(vec![
                id.into(),
                workers.to_string(),
                (per_worker * workers).to_string(),
                f(run.median_latency_secs * 1e3),
                f(run.throughput / 1e3),
                f(run.mb_shuffled_per_worker),
            ]);
        }
    }
    print_table(
        &format!(
            "Figure 9 — weak scaling ({per_worker} tuples/worker/batch, {})",
            backend.label()
        ),
        &[
            "query",
            "workers",
            "batch",
            "median latency (ms)",
            "throughput (Ktup/s)",
            "MB shuffled/worker",
        ],
        &rows,
    );
}
