//! Table 1: throughput of re-evaluation, classical IVM and recursive IVM for
//! the TPC-H and TPC-DS catalogs across batch sizes (tuples per second).

use hotdog::ivm::Strategy;
use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    // The full matrix is expensive; default to a reduced stream and the
    // batch sizes that show the trend.  Scale up via HOTDOG_TUPLES.
    let tuples = (default_local_tuples() / 3).max(5_000);
    let batch_sizes = [1usize, 100, 10_000];
    let mut rows = Vec::new();
    for q in all_queries() {
        let stream = stream_for(&q, tuples, 13);
        let mut row = vec![q.id.to_string()];
        for strategy in [
            Strategy::Reevaluation,
            Strategy::ClassicalIvm,
            Strategy::RecursiveIvm,
        ] {
            for bs in batch_sizes {
                let run = run_local(
                    &q,
                    &stream,
                    strategy,
                    ExecMode::Batched { preaggregate: true },
                    bs,
                );
                row.push(f(run.throughput));
            }
        }
        let single = single_tuple_baseline(&q, &stream);
        row.push(f(single.throughput));
        rows.push(row);
    }
    print_table(
        &format!("Table 1 — throughput in tuples/sec ({tuples} tuples per query)"),
        &[
            "query",
            "reeval b=1",
            "reeval b=100",
            "reeval b=10k",
            "ivm b=1",
            "ivm b=100",
            "ivm b=10k",
            "rivm b=1",
            "rivm b=100",
            "rivm b=10k",
            "rivm single",
        ],
        &rows,
    );
}
