//! Table 2: cache-locality proxy for TPC-H Q3 across batch sizes.  Hardware
//! counters are replaced by engine counters: interpreter "instructions" and
//! index/pool probes (a proxy for last-level-cache references).

use hotdog::ivm::Strategy;
use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let tuples = default_local_tuples();
    let q = query("Q3").unwrap();
    let stream = stream_for(&q, tuples, 3);
    let mut rows = Vec::new();

    let single = single_tuple_baseline(&q, &stream);
    rows.push(vec![
        "single".into(),
        single.instructions.to_string(),
        single.probes.to_string(),
        f(single.throughput),
    ]);
    for bs in [1usize, 10, 100, 1_000, 10_000] {
        let run = run_local(
            &q,
            &stream,
            Strategy::RecursiveIvm,
            ExecMode::Batched { preaggregate: true },
            bs,
        );
        rows.push(vec![
            format!("batch {bs}"),
            run.instructions.to_string(),
            run.probes.to_string(),
            f(run.throughput),
        ]);
    }
    print_table(
        &format!("Table 2 — Q3 work counters vs batch size ({tuples} tuples)"),
        &[
            "config",
            "instructions (proxy)",
            "index probes (LLC-ref proxy)",
            "tuples/s",
        ],
        &rows,
    );
}
