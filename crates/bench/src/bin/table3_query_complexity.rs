//! Table 3: view-maintenance complexity of the TPC-H queries in the
//! distributed runtime — jobs and stages needed to process one batch.

use hotdog::prelude::*;
use hotdog_bench::*;

fn main() {
    let mut rows = Vec::new();
    for q in tpch_queries() {
        let plan = compile_recursive(q.id, &q.expr);
        let spec = PartitioningSpec::heuristic(&plan, &q.partition_keys);
        let dplan = compile_distributed(&plan, &spec, OptLevel::O3);
        let (jobs, stages) = dplan.complexity();
        rows.push(vec![
            q.id.to_string(),
            jobs.to_string(),
            stages.to_string(),
            plan.views.len().to_string(),
            plan.statement_count().to_string(),
        ]);
    }
    print_table(
        "Table 3 — jobs / stages per update batch (plus plan size)",
        &["query", "jobs", "stages", "views", "statements"],
        &rows,
    );
}
