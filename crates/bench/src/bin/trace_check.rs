//! CI validator for the `HOTDOG_TRACE` Chrome trace-event export.
//!
//! Usage: `trace_check <trace.json> [--min-batches=N]`
//!
//! Parses the artifact with the in-repo JSON reader and asserts the
//! invariants the exporter promises:
//!
//! * the document is valid JSON with a `traceEvents` array;
//! * every event is either a complete span (`ph == "X"`, with `name`,
//!   `ts`, `dur`, `pid`, `tid`) or track metadata (`ph == "M"`) — begin/
//!   end pairs never appear, so an unclosed span is structurally
//!   impossible and any other phase letter means the exporter regressed;
//! * at least `--min-batches` (default 1) root spans named `batch` are
//!   present, i.e. the traced run actually stitched complete trees.
//!
//! Exits nonzero with a diagnostic on the first violation, so the CI
//! `telemetry-smoke` job fails loudly instead of shipping a trace that
//! Perfetto cannot load.

use hotdog_bench::json::JsonValue;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut path = None;
    let mut min_batches = 1usize;
    for arg in std::env::args().skip(1) {
        if let Some(n) = arg.strip_prefix("--min-batches=") {
            match n.parse() {
                Ok(n) => min_batches = n,
                Err(_) => return fail(&format!("bad --min-batches value {n:?}")),
            }
        } else {
            path = Some(arg);
        }
    }
    let Some(path) = path else {
        return fail("usage: trace_check <trace.json> [--min-batches=N]");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let Some(doc) = JsonValue::parse(&text) else {
        return fail(&format!("{path} is not valid JSON"));
    };
    let Some(events) = doc.get("traceEvents").and_then(|v| v.as_array()) else {
        return fail(&format!("{path} has no traceEvents array"));
    };

    let mut complete = 0usize;
    let mut metadata = 0usize;
    let mut batches = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Some(ph) = ev.get("ph").and_then(|v| v.as_str()) else {
            return fail(&format!("event {i} has no ph field"));
        };
        match ph {
            "X" => {
                for field in ["name", "ts", "dur", "pid", "tid"] {
                    if ev.get(field).is_none() {
                        return fail(&format!("complete event {i} is missing {field:?}"));
                    }
                }
                complete += 1;
                if ev.get("name").and_then(|v| v.as_str()) == Some("batch") {
                    batches += 1;
                }
            }
            "M" => metadata += 1,
            // "B"/"E" would mean the exporter emitted an *unclosed* span
            // (or any span as a begin/end pair at all) — a regression.
            other => {
                return fail(&format!(
                    "event {i} has phase {other:?}; only complete (X) and \
                     metadata (M) events are allowed"
                ))
            }
        }
    }
    if batches < min_batches {
        return fail(&format!(
            "only {batches} root span(s) named \"batch\" (need >= {min_batches}); \
             {complete} complete event(s) total"
        ));
    }
    println!(
        "trace_check: OK: {path}: {complete} complete span(s) across \
         {batches} batch trace(s), {metadata} track metadata event(s), \
         no unclosed spans"
    );
    ExitCode::SUCCESS
}
