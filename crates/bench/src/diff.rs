//! Bench-trend regression gate: compare two `BENCH_runtime.json` artifacts
//! and flag tracked metrics that regressed beyond a tolerance.
//!
//! Used by the `bench_diff` binary, which CI runs against a fresh smoke-mode
//! artifact to hold the runtime's wins instead of just measuring them.
//! Two metric classes with separate tolerances:
//!
//! * **ratio metrics** — machine-independent numbers computed on one host
//!   within one run (`pipeline_stream[*].speedup`,
//!   `adaptive_stream[*].adaptive_vs_best_static`,
//!   `async_gather[*].speedup` / `async_gather_strong[*].speedup`,
//!   `net_overhead[*].tcp_vs_threaded`, `columnar[*].columnar_vs_row`).
//!   These are the tight gate: a drop means the *relative* win shrank.
//! * **throughput metrics** — absolute tuples/sec
//!   (`fig9_weak_scaling.rows[*].throughput_tps`, same for fig10).  These
//!   move with the host, so their tolerance is loose by default; they catch
//!   order-of-magnitude cliffs, not percent-level noise.
//!
//! Rows present in the baseline but missing from the candidate are reported
//! as *missing*, not failed — smoke mode may legitimately run fewer points
//! (and modelled rows don't change machine-to-machine anyway).

use crate::json::JsonValue;

/// Allowed fractional drop per metric class (`0.25` = a candidate may be up
/// to 25% below the baseline before the gate trips).
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// For machine-independent ratio metrics (speedups).
    pub ratio: f64,
    /// For absolute throughput metrics (host-dependent).
    pub throughput: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            ratio: 0.25,
            throughput: 0.5,
        }
    }
}

/// One tracked metric compared across the two artifacts.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Human-readable metric identity, e.g.
    /// `pipeline_stream[Q3 x1].speedup`.
    pub metric: String,
    pub baseline: f64,
    pub candidate: f64,
    /// Fractional drop (`(baseline - candidate) / baseline`; negative =
    /// improvement).
    pub drop: f64,
    /// Allowed drop for this metric's class.
    pub tolerance: f64,
}

impl MetricDelta {
    pub fn regressed(&self) -> bool {
        self.drop > self.tolerance
    }
}

/// Result of diffing two artifacts.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every tracked metric found in both artifacts.
    pub compared: Vec<MetricDelta>,
    /// Tracked metrics present in the baseline but absent from the
    /// candidate (warned, not failed — unless a whole ratio section
    /// vanishes, see [`DiffReport::ratio_gate_lost`]).
    pub missing: Vec<String>,
    /// Some ratio *section* (the machine-independent tight gate —
    /// `pipeline_stream`, `adaptive_stream`) has rows in the baseline but
    /// matched *no* candidate row at all.  Individual missing rows are
    /// tolerated; a whole section evaporating (dropped by a bench change,
    /// or its comparison keys drifting) must not leave the deterministic
    /// modelled rows keeping CI green, so callers treat this as a failure.
    pub ratio_gate_lost: bool,
    /// Tracked-but-non-gating metrics: the per-run telemetry counters
    /// (`telemetry_*` row fields).  Reported for trend visibility — a
    /// message-count or instruction-count shift is worth seeing in the CI
    /// log — but never fails the gate: counts legitimately move with any
    /// intentional protocol or plan change.
    pub tracked: Vec<MetricDelta>,
}

impl DiffReport {
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.compared.iter().filter(|d| d.regressed()).collect()
    }
}

/// Identity of one `rows[]` entry in the fig9/fig10 sections.
fn row_key(row: &JsonValue) -> String {
    let s = |k: &str| row.get(k).and_then(|v| v.as_str()).unwrap_or("?");
    let n = |k: &str| {
        row.get(k)
            .and_then(|v| v.as_f64())
            .map(|v| format!("{v}"))
            .unwrap_or_else(|| "?".into())
    };
    format!(
        "{} {} x{} b{}",
        s("query"),
        s("backend"),
        n("workers"),
        n("batch_tuples")
    )
}

/// Identity of one `pipeline_stream` / `adaptive_stream` comparison entry.
fn cmp_key(entry: &JsonValue) -> String {
    let query = entry.get("query").and_then(|v| v.as_str()).unwrap_or("?");
    let workers = entry
        .get("workers")
        .and_then(|v| v.as_f64())
        .map(|v| format!("{v}"))
        .unwrap_or_else(|| "?".into());
    format!("{query} x{workers}")
}

/// Collect `(key, value)` for one metric field over an array of entries.
fn metric_rows<'a>(
    artifact: &'a JsonValue,
    section: &str,
    rows_field: Option<&str>,
    metric: &str,
    key_of: fn(&JsonValue) -> String,
) -> Vec<(String, f64)> {
    let Some(mut node) = artifact.get(section) else {
        return Vec::new();
    };
    if let Some(field) = rows_field {
        match node.get(field) {
            Some(inner) => node = inner,
            None => return Vec::new(),
        }
    }
    node.as_array()
        .into_iter()
        .flatten()
        .filter_map(|row| {
            let v = row.get(metric)?.as_f64()?;
            Some((key_of(row), v))
        })
        .collect()
}

/// Compare one metric across both artifacts, appending deltas and missing
/// keys to the report.
fn diff_metric(
    report: &mut DiffReport,
    baseline: &[(String, f64)],
    candidate: &[(String, f64)],
    label: &str,
    tolerance: f64,
) {
    for (key, base) in baseline {
        let Some((_, cand)) = candidate.iter().find(|(k, _)| k == key) else {
            report.missing.push(format!("{label}[{key}]"));
            continue;
        };
        let drop = if *base != 0.0 {
            (base - cand) / base.abs()
        } else if *cand >= 0.0 {
            0.0
        } else {
            1.0
        };
        report.compared.push(MetricDelta {
            metric: format!("{label}[{key}]"),
            baseline: *base,
            candidate: *cand,
            drop,
            tolerance,
        });
    }
}

/// The tracked machine-independent ratio metrics: `(section, field)`.
/// Shared by the per-PR gate ([`diff_artifacts`]), and by the
/// `bench_history` tool that appends one flattened line per main-branch
/// run to the committed `BENCH_HISTORY.jsonl`.
pub const RATIO_SECTIONS: [(&str, &str); 7] = [
    ("pipeline_stream", "speedup"),
    ("adaptive_stream", "adaptive_vs_best_static"),
    ("async_gather", "speedup"),
    ("async_gather_strong", "speedup"),
    ("net_overhead", "tcp_vs_threaded"),
    ("columnar", "columnar_vs_row"),
    ("fanout", "shared_vs_per_subscriber"),
];

/// Per-run telemetry counters tracked across artifacts *without* gating
/// (see [`DiffReport::tracked`]): deterministic message/work counts plus
/// the wire byte counters, on the sections whose rows carry them.
pub const TRACKED_TELEMETRY_FIELDS: [&str; 4] = [
    "telemetry_messages_sent",
    "telemetry_instructions",
    "telemetry_net_bytes_sent",
    "telemetry_tuples_applied",
];

/// Where the telemetry counters actually live in the artifact: the
/// measured runs nested inside the comparison sections (`(section,
/// run_field)`).  The fig9/fig10 `rows` are modelled by default and
/// carry no telemetry; the head-to-head comparisons always run on a
/// real backend, so their embedded [`DistRun`](crate::DistRun) objects
/// are the durable cross-PR record of message/byte/instruction counts.
pub const TRACKED_TELEMETRY_RUNS: [(&str, &str); 8] = [
    ("pipeline_stream", "sync"),
    ("pipeline_stream", "pipelined"),
    ("async_gather", "fifo"),
    ("async_gather", "tagged"),
    ("net_overhead", "threaded"),
    ("net_overhead", "tcp"),
    ("columnar", "row"),
    ("columnar", "columnar"),
];

/// Collect `(key, value)` for one telemetry field over the nested run
/// objects of a comparison section.
fn nested_run_rows(
    artifact: &JsonValue,
    section: &str,
    run_field: &str,
    metric: &str,
) -> Vec<(String, f64)> {
    artifact
        .get(section)
        .and_then(|v| v.as_array())
        .into_iter()
        .flatten()
        .filter_map(|entry| {
            let v = entry.get(run_field)?.get(metric)?.as_f64()?;
            Some((cmp_key(entry), v))
        })
        .collect()
}

/// Flatten every tracked ratio metric of an artifact into
/// `("section.field[key]", value)` rows — the per-run record shape of the
/// committed bench history.
pub fn ratio_metrics(artifact: &JsonValue) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (section, metric) in RATIO_SECTIONS {
        for (key, v) in metric_rows(artifact, section, None, metric, cmp_key) {
            out.push((format!("{section}.{metric}[{key}]"), v));
        }
    }
    out
}

/// Diff every tracked metric of two parsed `BENCH_runtime.json` artifacts.
pub fn diff_artifacts(
    baseline: &JsonValue,
    candidate: &JsonValue,
    tolerances: Tolerances,
) -> DiffReport {
    let mut report = DiffReport::default();
    // Machine-independent ratios: the tight gate, enforced per section.
    for (section, metric) in RATIO_SECTIONS {
        let base_rows = metric_rows(baseline, section, None, metric, cmp_key);
        let compared_before = report.compared.len();
        diff_metric(
            &mut report,
            &base_rows,
            &metric_rows(candidate, section, None, metric, cmp_key),
            &format!("{section}.{metric}"),
            tolerances.ratio,
        );
        if !base_rows.is_empty() && report.compared.len() == compared_before {
            report.ratio_gate_lost = true;
        }
    }
    // Absolute throughput: host-dependent, loose gate.
    for section in ["fig9_weak_scaling", "fig10_strong_scaling"] {
        diff_metric(
            &mut report,
            &metric_rows(baseline, section, Some("rows"), "throughput_tps", row_key),
            &metric_rows(candidate, section, Some("rows"), "throughput_tps", row_key),
            &format!("{section}.throughput_tps"),
            tolerances.throughput,
        );
    }
    // Telemetry counters: tracked for visibility, never gating.  Collected
    // into a scratch report so their comparisons and missing keys stay out
    // of the gated lists.
    let mut scratch = DiffReport::default();
    for section in ["fig9_weak_scaling", "fig10_strong_scaling"] {
        for field in TRACKED_TELEMETRY_FIELDS {
            diff_metric(
                &mut scratch,
                &metric_rows(baseline, section, Some("rows"), field, row_key),
                &metric_rows(candidate, section, Some("rows"), field, row_key),
                &format!("{section}.{field}"),
                f64::INFINITY,
            );
        }
    }
    for (section, run) in TRACKED_TELEMETRY_RUNS {
        for field in TRACKED_TELEMETRY_FIELDS {
            diff_metric(
                &mut scratch,
                &nested_run_rows(baseline, section, run, field),
                &nested_run_rows(candidate, section, run, field),
                &format!("{section}.{run}.{field}"),
                f64::INFINITY,
            );
        }
    }
    report.tracked = scratch.compared;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(speedup: f64, adaptive: f64, tps: f64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{
              "pipeline_stream": [
                {{"query": "Q3", "workers": 1, "speedup": {speedup}}}
              ],
              "adaptive_stream": [
                {{"query": "Q3", "workers": 1, "adaptive_vs_best_static": {adaptive}}}
              ],
              "fig9_weak_scaling": {{"rows": [
                {{"query": "Q6", "backend": "modelled", "workers": 2,
                  "batch_tuples": 4000, "throughput_tps": {tps}}}
              ]}}
            }}"#
        ))
        .expect("test artifact must parse")
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact(1.5, 1.02, 60000.0);
        let report = diff_artifacts(&a, &a, Tolerances::default());
        assert_eq!(report.compared.len(), 3);
        assert!(report.regressions().is_empty());
        assert!(report.missing.is_empty());
    }

    #[test]
    fn ratio_regression_beyond_tolerance_trips() {
        let base = artifact(2.0, 1.0, 60000.0);
        // 40% speedup drop vs 25% tolerance: trips.  Throughput halved vs
        // 50% tolerance: does not trip (boundary is strict).
        let cand = artifact(1.2, 1.0, 30000.0);
        let report = diff_artifacts(&base, &cand, Tolerances::default());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].metric.starts_with("pipeline_stream.speedup"));
        assert!((regs[0].drop - 0.4).abs() < 1e-12);
    }

    #[test]
    fn throughput_cliff_trips_the_loose_gate() {
        let base = artifact(1.5, 1.0, 60000.0);
        let cand = artifact(1.5, 1.0, 6000.0);
        let report = diff_artifacts(&base, &cand, Tolerances::default());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].metric.starts_with("fig9_weak_scaling"));
    }

    #[test]
    fn improvements_never_trip() {
        let base = artifact(1.5, 0.9, 60000.0);
        let cand = artifact(3.0, 1.8, 120000.0);
        let report = diff_artifacts(&base, &cand, Tolerances::default());
        assert!(report.regressions().is_empty());
        assert!(report.compared.iter().all(|d| d.drop < 0.0));
    }

    #[test]
    fn missing_candidate_rows_warn_but_do_not_fail() {
        let base = artifact(1.5, 1.0, 60000.0);
        let cand = JsonValue::parse(r#"{"pipeline_stream": []}"#).unwrap();
        let report = diff_artifacts(&base, &cand, Tolerances::default());
        assert!(report.regressions().is_empty());
        assert_eq!(report.missing.len(), 3);
    }

    #[test]
    fn losing_every_ratio_metric_is_flagged() {
        let base = artifact(1.5, 1.0, 60000.0);
        // Candidate keeps the (deterministic) modelled rows but its stream
        // comparisons ran under different keys — e.g. a drifted worker
        // count — so no ratio metric matches.
        let cand = JsonValue::parse(
            r#"{
              "pipeline_stream": [
                {"query": "Q3", "workers": 4, "speedup": 1.5}
              ],
              "fig9_weak_scaling": {"rows": [
                {"query": "Q6", "backend": "modelled", "workers": 2,
                  "batch_tuples": 4000, "throughput_tps": 60000.0}
              ]}
            }"#,
        )
        .unwrap();
        let report = diff_artifacts(&base, &cand, Tolerances::default());
        assert!(report.ratio_gate_lost, "lost ratio gate must be flagged");
        // The gate is per section: pipeline_stream matching does not excuse
        // adaptive_stream (the acceptance metric) going entirely missing.
        let cand2 = JsonValue::parse(
            r#"{"pipeline_stream": [{"query": "Q3", "workers": 1, "speedup": 1.4}]}"#,
        )
        .unwrap();
        let report2 = diff_artifacts(&base, &cand2, Tolerances::default());
        assert!(report2.ratio_gate_lost, "per-section loss must be flagged");
        // One matching row per ratio section clears the flag, even with
        // other (throughput) rows missing.
        let cand3 = JsonValue::parse(
            r#"{
              "pipeline_stream": [{"query": "Q3", "workers": 1, "speedup": 1.4}],
              "adaptive_stream": [
                {"query": "Q3", "workers": 1, "adaptive_vs_best_static": 1.0}
              ]
            }"#,
        )
        .unwrap();
        let report3 = diff_artifacts(&base, &cand3, Tolerances::default());
        assert!(!report3.ratio_gate_lost);
        assert!(!report3.missing.is_empty());
    }

    #[test]
    fn async_gather_sections_are_gated() {
        let ag = |speedup: f64, strong: f64| {
            JsonValue::parse(&format!(
                r#"{{
                  "async_gather": [
                    {{"query": "Q3", "workers": 1, "speedup": {speedup}}}
                  ],
                  "async_gather_strong": [
                    {{"query": "Q7", "workers": 1, "speedup": {strong}}}
                  ]
                }}"#
            ))
            .unwrap()
        };
        let base = ag(1.3, 1.2);
        // Within tolerance: both protocol ratios compare, nothing trips.
        let report = diff_artifacts(&base, &ag(1.25, 1.15), Tolerances::default());
        assert_eq!(report.compared.len(), 2);
        assert!(report.regressions().is_empty());
        // A tagged-path collapse beyond tolerance trips the tight gate.
        let report = diff_artifacts(&base, &ag(0.6, 1.2), Tolerances::default());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].metric.starts_with("async_gather.speedup"));
        // The whole section evaporating is flagged, per section.
        let cand = JsonValue::parse(
            r#"{"async_gather": [{"query": "Q3", "workers": 1, "speedup": 1.3}]}"#,
        )
        .unwrap();
        let report = diff_artifacts(&base, &cand, Tolerances::default());
        assert!(report.ratio_gate_lost, "async_gather_strong loss must flag");
    }

    #[test]
    fn telemetry_counters_are_tracked_but_never_gate() {
        let with_telemetry = |msgs: u64, instr: u64| {
            JsonValue::parse(&format!(
                r#"{{
                  "pipeline_stream": [
                    {{"query": "Q3", "workers": 1, "speedup": 1.5,
                      "sync": {{"telemetry_messages_sent": {msgs},
                               "telemetry_instructions": {instr}}},
                      "pipelined": {{"telemetry_messages_sent": {msgs}}}}}
                  ],
                  "fig9_weak_scaling": {{"rows": [
                    {{"query": "Q6", "backend": "threaded", "workers": 2,
                      "batch_tuples": 4000, "throughput_tps": 60000.0,
                      "telemetry_messages_sent": {msgs},
                      "telemetry_instructions": {instr},
                      "telemetry_net_bytes_sent": 0,
                      "telemetry_tuples_applied": 777}}
                  ]}}
                }}"#
            ))
            .unwrap()
        };
        let base = with_telemetry(1000, 500_000);
        // A 10x message-count jump and an instruction collapse are both
        // reported in the tracked list — and neither trips the gate.
        let cand = with_telemetry(10_000, 50);
        let report = diff_artifacts(&base, &cand, Tolerances::default());
        assert!(report.regressions().is_empty());
        // 4 flat fig9 row fields + 3 nested comparison-run fields.
        assert_eq!(report.tracked.len(), 7);
        assert!(report.tracked.iter().all(|d| !d.regressed()));
        assert!(report.tracked.iter().any(|d| d
            .metric
            .starts_with("fig9_weak_scaling.telemetry_messages_sent")));
        assert!(report.tracked.iter().any(|d| d
            .metric
            .starts_with("pipeline_stream.sync.telemetry_instructions")));
        // Candidates without the new fields stay silent (old artifacts):
        // nothing compared, nothing missing from the *gated* lists.
        let old = JsonValue::parse(
            r#"{"pipeline_stream": [{"query": "Q3", "workers": 1, "speedup": 1.5}]}"#,
        )
        .unwrap();
        let report = diff_artifacts(&base, &old, Tolerances::default());
        assert!(report.tracked.is_empty());
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn custom_tolerances_apply() {
        let base = artifact(2.0, 1.0, 60000.0);
        let cand = artifact(1.9, 1.0, 50000.0);
        let strict = Tolerances {
            ratio: 0.01,
            throughput: 0.01,
        };
        let report = diff_artifacts(&base, &cand, strict);
        assert_eq!(report.regressions().len(), 2);
    }
}
