//! Minimal JSON emission for machine-readable benchmark artifacts.
//!
//! The container has no crates.io access (so no `serde`); this module
//! hand-rolls the small subset needed to maintain `BENCH_runtime.json`: a
//! flat top-level object whose sections are written independently by the
//! benchmark binaries (`fig9_weak_scaling` writes its section without
//! clobbering `fig10_strong_scaling`'s, and vice versa).  Section values
//! are stored as raw JSON strings; merging only needs a tokenizer that can
//! split the top-level object on key boundaries, skipping nested
//! braces/brackets and strings.

use std::fmt::Write as _;
use std::fs;

/// Escape a string into a JSON string literal (with quotes).
pub fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number (JSON has no NaN/Inf; those become
/// `null`).
pub fn jnum(v: f64) -> String {
    if v.is_finite() {
        // Enough precision for latencies in seconds; trims trailing noise.
        let s = format!("{v:.6}");
        if s.contains('.') {
            s.trim_end_matches('0').trim_end_matches('.').to_string()
        } else {
            s
        }
    } else {
        "null".to_string()
    }
}

/// Incrementally built JSON object (keys in insertion order, raw values).
#[derive(Default, Clone, Debug)]
pub struct JsonObj {
    parts: Vec<(String, String)>,
}

impl JsonObj {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a raw JSON value (caller guarantees validity).
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.parts.push((key.to_string(), value.into()));
        self
    }

    pub fn str(self, key: &str, value: &str) -> Self {
        let v = jstr(value);
        self.raw(key, v)
    }

    pub fn num(self, key: &str, value: f64) -> Self {
        let v = jnum(value);
        self.raw(key, v)
    }

    pub fn int(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    pub fn render(&self) -> String {
        let body = self
            .parts
            .iter()
            .map(|(k, v)| format!("{}: {v}", jstr(k)))
            .collect::<Vec<_>>()
            .join(", ");
        format!("{{{body}}}")
    }
}

/// Render a JSON array from raw element strings.
pub fn jarray(elems: impl IntoIterator<Item = String>) -> String {
    let body = elems.into_iter().collect::<Vec<_>>().join(",\n    ");
    if body.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n    {body}\n  ]")
    }
}

/// A parsed JSON value — the reading side of this module, used by the
/// `bench_diff` regression gate to compare two `BENCH_runtime.json`
/// artifacts.  Object keys keep insertion order (we only ever read files
/// this module wrote; duplicate keys keep the last value).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// anything else after the value is an error).  Nesting deeper than
    /// [`MAX_PARSE_DEPTH`] is rejected rather than recursed into, so a
    /// corrupt artifact (e.g. a truncated file of `[` bytes) returns
    /// `None` instead of overflowing the stack.
    pub fn parse(text: &str) -> Option<JsonValue> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

/// Parse the double-quoted string starting at `*pos` (which must point at
/// the opening quote); leaves `*pos` after the closing quote.
fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    let start = *pos + 1;
    let mut i = start;
    while i < bytes.len() && bytes[i] != b'"' {
        if bytes[i] == b'\\' {
            i += 1;
        }
        i += 1;
    }
    if i >= bytes.len() {
        return None;
    }
    let raw = std::str::from_utf8(&bytes[start..i]).ok()?;
    *pos = i + 1;
    junescape(raw)
}

/// Deepest container nesting [`JsonValue::parse`] will recurse into.  Far
/// above anything the artifact writers emit; bounds stack use on corrupt
/// input.
pub const MAX_PARSE_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<JsonValue> {
    if depth > MAX_PARSE_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match *bytes.get(*pos)? {
        b'"' => parse_string(bytes, pos).map(JsonValue::Str),
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return None;
                }
                *pos += 1;
                pairs.push((key, parse_value(bytes, pos, depth + 1)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(JsonValue::Obj(pairs));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(JsonValue::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b't' => {
            *pos = pos.checked_add(4)?;
            (bytes.get(*pos - 4..*pos)? == b"true").then_some(JsonValue::Bool(true))
        }
        b'f' => {
            *pos = pos.checked_add(5)?;
            (bytes.get(*pos - 5..*pos)? == b"false").then_some(JsonValue::Bool(false))
        }
        b'n' => {
            *pos = pos.checked_add(4)?;
            (bytes.get(*pos - 4..*pos)? == b"null").then_some(JsonValue::Null)
        }
        _ => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()?
                .parse::<f64>()
                .ok()
                .map(JsonValue::Num)
        }
    }
}

/// Inverse of [`jstr`]'s escaping for the escape sequences it emits.
/// Returns `None` on malformed escapes.
fn junescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Split the body of a flat JSON object into (key, raw value) pairs, keys
/// unescaped (so section lookup and re-rendering round-trip).  Only
/// structural correctness is required (we wrote the file ourselves);
/// returns `None` on anything that does not scan cleanly, in which case
/// the caller starts a fresh file.
fn split_top_level(text: &str) -> Option<Vec<(String, String)>> {
    let body = text.trim();
    let body = body.strip_prefix('{')?.strip_suffix('}')?;
    let bytes = body.as_bytes();
    let mut pairs = Vec::new();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    loop {
        skip_ws(&mut i);
        if i >= bytes.len() {
            break;
        }
        // Key.
        if bytes[i] != b'"' {
            return None;
        }
        let key_start = i + 1;
        let mut j = key_start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        if j >= bytes.len() {
            return None;
        }
        let key = junescape(body.get(key_start..j)?)?;
        i = j + 1;
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        // Value: scan to the next top-level comma.
        let val_start = i;
        let mut depth = 0i32;
        let mut in_str = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_str {
                if b == b'\\' {
                    i += 1;
                } else if b == b'"' {
                    in_str = false;
                }
            } else {
                match b {
                    b'"' => in_str = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => depth -= 1,
                    b',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if depth != 0 || in_str {
            return None;
        }
        pairs.push((key, body.get(val_start..i)?.trim().to_string()));
        if i < bytes.len() {
            i += 1; // consume the comma
        }
    }
    Some(pairs)
}

/// Write (or replace) one section of the benchmark JSON file, preserving
/// every other section.  `value` must be a complete raw JSON value.
pub fn update_bench_json(path: &str, section: &str, value: &str) -> std::io::Result<()> {
    let mut sections = fs::read_to_string(path)
        .ok()
        .and_then(|text| split_top_level(&text))
        .unwrap_or_default();
    match sections.iter_mut().find(|(k, _)| k == section) {
        Some((_, v)) => *v = value.to_string(),
        None => sections.push((section.to_string(), value.to_string())),
    }
    let body = sections
        .iter()
        .map(|(k, v)| format!("  {}: {v}", jstr(k)))
        .collect::<Vec<_>>()
        .join(",\n");
    fs::write(path, format!("{{\n{body}\n}}\n"))
}

/// Default path of the benchmark artifact (override with `BENCH_JSON`).
pub fn bench_json_path() -> String {
    std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_runtime.json".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_and_escapes_render() {
        let o = JsonObj::new()
            .str("name", "a\"b\\c")
            .num("x", 1.25)
            .int("n", 7)
            .num("bad", f64::NAN);
        assert_eq!(
            o.render(),
            r#"{"name": "a\"b\\c", "x": 1.25, "n": 7, "bad": null}"#
        );
        assert_eq!(jnum(0.000001), "0.000001");
        assert_eq!(jnum(1500.0), "1500");
    }

    #[test]
    fn sections_merge_without_clobbering() {
        let dir = std::env::temp_dir().join("hotdog_bench_json_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        update_bench_json(path, "fig9", r#"{"rows": [1, 2, {"a": "b,}"}]}"#).unwrap();
        update_bench_json(path, "fig10", r#"{"rows": []}"#).unwrap();
        update_bench_json(path, "fig9", r#"{"rows": [3]}"#).unwrap();

        let text = std::fs::read_to_string(path).unwrap();
        let pairs = split_top_level(&text).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, "fig9");
        assert_eq!(pairs[0].1, r#"{"rows": [3]}"#);
        assert_eq!(pairs[1].0, "fig10");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn escaped_section_keys_round_trip() {
        let dir = std::env::temp_dir().join("hotdog_bench_json_test3");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        let key = "quoted \"key\"\\with\nescapes";
        update_bench_json(path, key, "1").unwrap();
        update_bench_json(path, key, "2").unwrap();
        update_bench_json(path, "plain", "3").unwrap();
        let pairs = split_top_level(&std::fs::read_to_string(path).unwrap()).unwrap();
        // The tricky key updated in place (no duplicate, no re-escaping).
        assert_eq!(
            pairs,
            vec![
                (key.to_string(), "2".to_string()),
                ("plain".to_string(), "3".to_string())
            ]
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn parser_round_trips_what_this_module_writes() {
        let rendered = JsonObj::new()
            .str("name", "a\"b\\c\nnl")
            .num("x", -1.25e3)
            .int("n", 7)
            .num("nan", f64::NAN)
            .raw("arr", jarray(vec!["1".into(), "[2, 3]".into()]))
            .raw("obj", r#"{"t": true, "f": false}"#)
            .render();
        let v = JsonValue::parse(&rendered).expect("must parse");
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\\c\nnl"));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("nan"), Some(&JsonValue::Null));
        let arr = v.get("arr").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_array().unwrap().len(), 2);
        assert_eq!(v.get("obj").unwrap().get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, 2",
            r#"{"a": }"#,
            r#"{"a": 1} trailing"#,
            "tru",
            r#"{"a" 1}"#,
            "[1,]",
        ] {
            assert!(JsonValue::parse(bad).is_none(), "accepted {bad:?}");
        }
        // Structural whitespace and nested containers are fine.
        assert!(JsonValue::parse(" { \"a\" : [ { } , [ ] , null ] } ").is_some());
        // Pathological nesting is rejected, not recursed into (a corrupt
        // artifact must produce the "not valid JSON" diagnostic, not a
        // stack overflow).
        let deep = "[".repeat(100_000);
        assert!(JsonValue::parse(&deep).is_none());
        let balanced_deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(JsonValue::parse(&balanced_deep).is_none());
        let within = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&within).is_some());
    }

    #[test]
    fn corrupt_files_start_fresh() {
        let dir = std::env::temp_dir().join("hotdog_bench_json_test2");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("bench.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, "not json at all").unwrap();
        update_bench_json(path, "s", "1").unwrap();
        let pairs = split_top_level(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(pairs, vec![("s".to_string(), "1".to_string())]);
        let _ = std::fs::remove_file(path);
    }
}
