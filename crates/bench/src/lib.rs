//! # hotdog-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation section on the laptop-scale simulator.  Each binary under
//! `src/bin/` regenerates one artifact (the machine-readable ones maintain
//! sections of `BENCH_runtime.json`, documented in the README; `bench_diff`
//! gates those sections against a baseline); this library holds the shared
//! experiment drivers and plain-text table printing.
//!
//! Absolute numbers differ from the paper (interpreter vs. generated C++,
//! simulated cluster vs. 100 Spark servers); the harness is built to
//! reproduce the *shapes*: which strategy wins, how throughput moves with
//! batch size, and how latency scales with workers.

use hotdog::distributed::ClusterTotals;
use hotdog::ivm::Strategy;
use hotdog::prelude::*;
use std::time::Instant;

pub mod diff;
pub mod json;

/// How many stream tuples the local experiments process by default.  Can be
/// overridden with the `HOTDOG_TUPLES` environment variable.
pub fn default_local_tuples() -> usize {
    std::env::var("HOTDOG_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000)
}

/// Default stream size for the distributed experiments
/// (`HOTDOG_DIST_TUPLES`).
pub fn default_dist_tuples() -> usize {
    std::env::var("HOTDOG_DIST_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000)
}

/// Generate the stream matching a catalog query's workload family.
pub fn stream_for(q: &CatalogQuery, tuples: usize, seed: u64) -> UpdateStream {
    match q.workload {
        hotdog::workload::Workload::TpcH => generate_tpch(seed, tuples),
        hotdog::workload::Workload::TpcDs => generate_tpcds(seed, tuples),
    }
}

/// Result of one local maintenance run.
#[derive(Clone, Debug)]
pub struct LocalRun {
    pub query: String,
    pub strategy: Strategy,
    pub mode: &'static str,
    pub batch_size: usize,
    pub tuples: usize,
    pub elapsed_secs: f64,
    pub throughput: f64,
    pub result_size: usize,
    pub instructions: u64,
    pub probes: u64,
}

/// Run one query over a stream with the given strategy/mode/batch size and
/// measure wall-clock throughput plus engine counters.
pub fn run_local(
    q: &CatalogQuery,
    stream: &UpdateStream,
    strategy: Strategy,
    mode: ExecMode,
    batch_size: usize,
) -> LocalRun {
    let plan = compile(q.id, &q.expr, strategy);
    let mut engine = LocalEngine::new(plan, mode);
    let start = Instant::now();
    for batch in stream.batches(batch_size) {
        for (rel, delta) in batch {
            engine.apply_batch(rel, &delta);
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    LocalRun {
        query: q.id.to_string(),
        strategy,
        mode: mode.label(),
        batch_size,
        tuples: stream.len(),
        elapsed_secs: elapsed,
        throughput: stream.len() as f64 / elapsed,
        result_size: engine.query_result().len(),
        instructions: engine.totals.eval.instructions(),
        probes: engine.database().counters().probes(),
    }
}

/// Throughput of specialized single-tuple processing, used as the
/// normalization baseline of Figures 7 and 12.
pub fn single_tuple_baseline(q: &CatalogQuery, stream: &UpdateStream) -> LocalRun {
    run_local(q, stream, Strategy::RecursiveIvm, ExecMode::SingleTuple, 1)
}

/// Which execution backend a distributed experiment runs on.  All of them
/// implement the [`Backend`] trait, so the experiment driver
/// ([`run_distributed_on`]) is written once.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum BackendKind {
    /// Single-threaded simulator with the modelled cost model (the default).
    Simulated,
    /// `hotdog-runtime` epoch-synchronous thread-per-worker backend;
    /// latencies are measured wall-clock.
    Threaded,
    /// `hotdog-runtime` pipelined thread-per-worker backend with delta
    /// coalescing up to the given static tuple threshold; throughput is
    /// measured over the whole stream's wall-clock.
    Pipelined { coalesce_tuples: usize },
    /// Pipelined backend with the *self-tuning* coalescing bound: the
    /// hill-climbing controller searches the paper's concave
    /// throughput-vs-batch-size curve online instead of fixing a point on
    /// it a priori.
    Adaptive,
    /// Pipelined backend on the positional-FIFO compatibility schedule
    /// (drain the in-flight window before every gather, one scatter
    /// message per statement): the baseline arm of the tagged-reply
    /// protocol's `async_gather` comparison.
    PipelinedFifo { coalesce_tuples: usize },
    /// `hotdog-net`'s multi-process TCP backend, epoch-synchronous:
    /// worker subprocesses on loopback speaking the binary codec.  The
    /// `net_overhead` section compares it against [`BackendKind::Threaded`]
    /// — same driver, same schedule, real sockets instead of channels.
    Tcp,
    /// The TCP backend on the pipelined ingestion path with delta
    /// coalescing — batching decisions paying their dividend where there
    /// is an actual network to amortize.
    TcpPipelined { coalesce_tuples: usize },
}

impl BackendKind {
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Simulated => "modelled",
            BackendKind::Threaded => "measured",
            BackendKind::Pipelined { .. } => "pipelined",
            BackendKind::Adaptive => "adaptive",
            BackendKind::PipelinedFifo { .. } => "pipelined-fifo",
            BackendKind::Tcp => "tcp",
            BackendKind::TcpPipelined { .. } => "tcp-pipelined",
        }
    }

    /// What the latency percentiles of a run on this backend measure.
    /// Simulated/threaded runs report end-to-end batch latencies; the
    /// pipelined backends execute batches asynchronously, so their
    /// per-batch numbers are *driver-side issue times* (worker execution
    /// overlaps and is excluded) — not comparable across backends.
    /// Throughput is comparable everywhere (pipelined throughput is stream
    /// wall-clock).
    pub fn latency_kind(&self) -> &'static str {
        match self {
            BackendKind::Simulated => "modelled_batch",
            BackendKind::Threaded | BackendKind::Tcp => "measured_batch_wall",
            BackendKind::Pipelined { .. }
            | BackendKind::Adaptive
            | BackendKind::PipelinedFifo { .. }
            | BackendKind::TcpPipelined { .. } => "driver_issue_time",
        }
    }

    /// Table column header for this backend's latency percentiles (flags
    /// the pipelined backends' issue-time semantics, see
    /// [`BackendKind::latency_kind`]).
    pub fn latency_column(&self) -> &'static str {
        match self {
            BackendKind::Pipelined { .. }
            | BackendKind::Adaptive
            | BackendKind::PipelinedFifo { .. }
            | BackendKind::TcpPipelined { .. } => "median issue (ms)",
            _ => "median latency (ms)",
        }
    }

    /// The pipeline configuration this backend kind runs under (`None` for
    /// the synchronous backends).
    pub fn pipeline_config(&self) -> Option<PipelineConfig> {
        match self {
            BackendKind::Simulated | BackendKind::Threaded | BackendKind::Tcp => None,
            BackendKind::Pipelined { coalesce_tuples }
            | BackendKind::TcpPipelined { coalesce_tuples } => {
                Some(PipelineConfig::with_coalesce(*coalesce_tuples))
            }
            BackendKind::Adaptive => Some(PipelineConfig::adaptive()),
            BackendKind::PipelinedFifo { coalesce_tuples } => Some(PipelineConfig {
                coalesce_tuples: *coalesce_tuples,
                ..PipelineConfig::fifo_compat()
            }),
        }
    }

    /// Parse `--real`, `--tcp`, `--pipeline`, `--coalesce=N`, `--adaptive`
    /// and `--fifo-gather` from a binary's argument list (`--coalesce`
    /// implies `--pipeline`; `--adaptive` wins over both; `--fifo-gather`
    /// demotes a pipelined run to the positional-FIFO compatibility
    /// schedule; `--tcp` moves a threaded or pipelined run onto the
    /// multi-process socket transport).
    pub fn from_args() -> BackendKind {
        let mut pipeline = false;
        let mut real = false;
        let mut adaptive = false;
        let mut fifo = false;
        let mut tcp = false;
        let mut coalesce = PipelineConfig::default().coalesce_tuples;
        for arg in std::env::args() {
            match arg.as_str() {
                "--real" => real = true,
                "--tcp" => tcp = true,
                "--pipeline" => pipeline = true,
                "--adaptive" => adaptive = true,
                "--fifo-gather" => {
                    pipeline = true;
                    fifo = true;
                }
                a => {
                    if let Some(n) = a.strip_prefix("--coalesce=") {
                        pipeline = true;
                        coalesce = n.parse().unwrap_or(coalesce);
                    }
                }
            }
        }
        if tcp && pipeline {
            BackendKind::TcpPipelined {
                coalesce_tuples: coalesce,
            }
        } else if tcp {
            BackendKind::Tcp
        } else if adaptive {
            BackendKind::Adaptive
        } else if fifo {
            BackendKind::PipelinedFifo {
                coalesce_tuples: coalesce,
            }
        } else if pipeline {
            BackendKind::Pipelined {
                coalesce_tuples: coalesce,
            }
        } else if real {
            BackendKind::Threaded
        } else {
            BackendKind::Simulated
        }
    }
}

/// Per-run telemetry counters embedded into `BENCH_runtime.json`: the
/// deterministic totals gathered over the protocol's `Stats` message,
/// plus the wire-level `net.*` counters (zero on the in-process
/// transports — only the TCP backend moves frames).
#[derive(Clone, Debug, Default)]
pub struct TelemetryRun {
    pub messages_sent: u64,
    pub replies_received: u64,
    pub instructions: u64,
    pub blocks_run: u64,
    pub statements: u64,
    pub tuples_applied: u64,
    pub net_frames_sent: u64,
    pub net_bytes_sent: u64,
    pub net_frames_received: u64,
    pub net_bytes_received: u64,
    /// Critical-path analysis of the last traced batch (`None` when no
    /// batch ran): which stage the batch was actually waiting on, from
    /// the stitched span tree.
    pub critical_path: Option<CriticalPath>,
}

/// Gather a driver's telemetry for a bench row (flushes the pipeline and
/// collects every worker's counters over the protocol).
fn collect_telemetry<T: Transport>(d: &mut Driver<T>) -> TelemetryRun {
    let totals = d.telemetry_totals();
    let snap = d.telemetry().snapshot();
    TelemetryRun {
        messages_sent: totals.messages_sent,
        replies_received: totals.replies_received,
        instructions: totals.instructions,
        blocks_run: totals.blocks_run,
        statements: totals.statements,
        tuples_applied: totals.tuples_applied,
        net_frames_sent: snap.counter("net.frames.sent"),
        net_bytes_sent: snap.counter("net.bytes.sent"),
        net_frames_received: snap.counter("net.frames.received"),
        net_bytes_received: snap.counter("net.bytes.received"),
        critical_path: d.critical_path(),
    }
}

/// Result of one distributed run.
#[derive(Clone, Debug)]
pub struct DistRun {
    pub query: String,
    pub workers: usize,
    pub batch_tuples: usize,
    pub opt: OptLevel,
    pub backend: BackendKind,
    pub median_latency_secs: f64,
    pub p95_latency_secs: f64,
    pub p99_latency_secs: f64,
    pub throughput: f64,
    pub mb_shuffled_per_worker: f64,
    pub jobs: usize,
    pub stages: usize,
    /// Pipelined-ingestion counters (`None` for synchronous backends).
    pub coalesce: Option<PipelineStats>,
    /// Per-run telemetry counters (`None` for the modelled simulator,
    /// which has no real driver).
    pub telemetry: Option<TelemetryRun>,
}

impl DistRun {
    /// One JSON object per run, for `BENCH_runtime.json` sections.
    pub fn to_json(&self) -> String {
        let mut obj = json::JsonObj::new()
            .str("query", &self.query)
            .str("backend", self.backend.label())
            .str("opt", self.opt.label())
            .int("workers", self.workers as u64)
            .int("batch_tuples", self.batch_tuples as u64)
            .num("throughput_tps", self.throughput)
            .str("latency_kind", self.backend.latency_kind())
            .num("median_latency_secs", self.median_latency_secs)
            .num("p95_latency_secs", self.p95_latency_secs)
            .num("p99_latency_secs", self.p99_latency_secs)
            .num("mb_shuffled_per_worker", self.mb_shuffled_per_worker)
            .int("jobs", self.jobs as u64)
            .int("stages", self.stages as u64);
        if let Some(c) = &self.coalesce {
            obj = obj.raw(
                "coalesce",
                json::JsonObj::new()
                    .int("batches_admitted", c.batches_admitted as u64)
                    .int("batches_coalesced", c.batches_coalesced as u64)
                    .int("batches_executed", c.batches_executed as u64)
                    .int("tuples_admitted", c.tuples_admitted as u64)
                    .int("tuples_executed", c.tuples_executed as u64)
                    .int("max_queue_depth", c.max_queue_depth as u64)
                    .int("max_queue_bytes", c.max_queue_bytes as u64)
                    .int("forced_by_bytes", c.executions_forced_by_bytes as u64)
                    .int("forced_by_latency", c.executions_forced_by_latency as u64)
                    .int("coalesce_bound", c.coalesce_bound as u64)
                    .int("bound_adjustments", c.bound_adjustments as u64)
                    .int("bound_reversals", c.bound_reversals as u64)
                    .int("gathers_overlapped", c.gathers_overlapped as u64)
                    .int("scatter_messages_sent", c.scatter_messages_sent as u64)
                    .int("scatter_messages_saved", c.scatter_messages_saved as u64)
                    .render(),
            );
        }
        if let Some(t) = &self.telemetry {
            // Flat `telemetry_*` fields so `bench_diff` can track them
            // with the same one-level row accessors as every other metric.
            obj = obj
                .int("telemetry_messages_sent", t.messages_sent)
                .int("telemetry_replies_received", t.replies_received)
                .int("telemetry_instructions", t.instructions)
                .int("telemetry_blocks_run", t.blocks_run)
                .int("telemetry_statements", t.statements)
                .int("telemetry_tuples_applied", t.tuples_applied)
                .int("telemetry_net_frames_sent", t.net_frames_sent)
                .int("telemetry_net_bytes_sent", t.net_bytes_sent)
                .int("telemetry_net_frames_received", t.net_frames_received)
                .int("telemetry_net_bytes_received", t.net_bytes_received);
            if let Some(cp) = &t.critical_path {
                // Nested object (durations are wall-clock, so `bench_diff`
                // must not track them field-by-field like the flat
                // `telemetry_*` counters above).
                obj =
                    obj.raw(
                        "critical_path",
                        json::JsonObj::new()
                            .int("trace", cp.trace)
                            .int("total_micros", cp.total_micros)
                            .num("attributed_fraction", cp.attributed_fraction())
                            .raw(
                                "stages",
                                json::jarray(cp.stages.iter().map(|(name, micros)| {
                                    format!("[{}, {micros}]", json::jstr(name))
                                })),
                            )
                            .render(),
                    );
            }
        }
        obj.render()
    }
}

/// Write one experiment's runs as a section of `BENCH_runtime.json` (path
/// overridable via `BENCH_JSON`), preserving other experiments' sections.
pub fn emit_bench_json(section: &str, runs: &[DistRun]) {
    let value = json::JsonObj::new()
        .raw("rows", json::jarray(runs.iter().map(|r| r.to_json())))
        .render();
    let path = json::bench_json_path();
    if let Err(e) = json::update_bench_json(&path, section, &value) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote section {section:?} ({} rows) to {path}", runs.len());
    }
}

/// Available hardware parallelism, capped (measured experiments only make
/// sense up to the physical core count).
pub fn num_cpus_capped(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, cap.max(1))
}

/// Drive any execution backend over a pre-batched stream (the generic
/// experiment loop shared by benches and tests).
pub fn drive_backend<B: hotdog::distributed::Backend>(
    backend: &mut B,
    stream: &UpdateStream,
    batch_tuples: usize,
) -> ClusterTotals {
    backend.apply_stream(&stream.batches(batch_tuples));
    backend.totals().clone()
}

/// Backend-generic driver over pre-built (possibly phased) batches;
/// `batch_tuples` is only recorded in the result (0 = mixed sizes).
pub fn run_distributed_batches(
    q: &CatalogQuery,
    batches: &[Vec<(&'static str, Relation)>],
    workers: usize,
    batch_tuples: usize,
    opt: OptLevel,
    backend: BackendKind,
) -> DistRun {
    let plan = compile_recursive(q.id, &q.expr);
    let spec = PartitioningSpec::heuristic(&plan, &q.partition_keys);
    let dplan = compile_distributed(&plan, &spec, opt);
    let (jobs, stages) = dplan.complexity();
    let (totals, coalesce, telemetry) = match (backend, backend.pipeline_config()) {
        (BackendKind::Simulated, _) => {
            let mut cluster = Cluster::new(dplan, ClusterConfig::with_workers(workers));
            cluster.apply_stream(batches);
            (cluster.totals().clone(), None, None)
        }
        (BackendKind::Tcp, _) => {
            let mut cluster =
                TcpCluster::new(dplan, &tcp_bench_config(workers)).expect("tcp cluster");
            cluster.apply_stream(batches);
            let telemetry = collect_telemetry(&mut cluster);
            (cluster.totals().clone(), None, Some(telemetry))
        }
        (BackendKind::TcpPipelined { .. }, Some(config)) => {
            let mut cluster = TcpCluster::pipelined(dplan, &tcp_bench_config(workers), config)
                .expect("tcp cluster");
            cluster.apply_stream(batches);
            let stats = cluster.pipeline_stats();
            let telemetry = collect_telemetry(&mut cluster);
            (cluster.totals().clone(), stats, Some(telemetry))
        }
        (_, None) => {
            let mut cluster = ThreadedCluster::new(dplan, workers);
            cluster.apply_stream(batches);
            let telemetry = collect_telemetry(&mut cluster);
            (cluster.totals().clone(), None, Some(telemetry))
        }
        (_, Some(config)) => {
            let mut cluster = ThreadedCluster::pipelined(dplan, workers, config);
            cluster.apply_stream(batches);
            let stats = cluster.pipeline_stats();
            let telemetry = collect_telemetry(&mut cluster);
            (cluster.totals().clone(), stats, Some(telemetry))
        }
    };
    DistRun {
        query: q.id.to_string(),
        workers,
        batch_tuples,
        opt,
        backend,
        median_latency_secs: totals.median_latency(),
        p95_latency_secs: totals.latency_percentile(0.95),
        p99_latency_secs: totals.latency_percentile(0.99),
        throughput: totals.throughput(),
        mb_shuffled_per_worker: totals.bytes_shuffled as f64
            / 1e6
            / workers as f64
            / totals.batches.max(1) as f64,
        jobs,
        stages,
        coalesce,
        telemetry,
    }
}

/// Static-vs-adaptive coalescing on a shifting-batch-size stream: the
/// static arms fix one point of the paper's Fig. 7 throughput curve
/// ({1 = no coalescing, a mid value, ∞ = coalesce everything}), the
/// adaptive arm searches the curve online.  The tracked acceptance number
/// is [`AdaptiveStreamComparison::adaptive_vs_best_static`].
#[derive(Clone, Debug)]
pub struct AdaptiveStreamComparison {
    pub query: String,
    pub workers: usize,
    pub phases: Vec<(usize, usize)>,
    /// `(label, run)` per arm: `static-1`, `static-64`, `static-inf`,
    /// `adaptive`.
    pub runs: Vec<(String, DistRun)>,
}

/// Static coalescing bound standing in for "coalesce everything".
pub const COALESCE_UNBOUNDED: usize = usize::MAX / 4;

impl AdaptiveStreamComparison {
    pub fn adaptive_run(&self) -> &DistRun {
        &self
            .runs
            .iter()
            .find(|(l, _)| l == "adaptive")
            .expect("comparison always has an adaptive arm")
            .1
    }

    /// Best throughput among the static arms.
    pub fn best_static(&self) -> (&str, f64) {
        self.runs
            .iter()
            .filter(|(l, _)| l != "adaptive")
            .map(|(l, r)| (l.as_str(), r.throughput))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("comparison always has static arms")
    }

    /// Adaptive throughput over the best static throughput (≥ 1 means the
    /// self-tuning policy matched or beat every static setting).
    pub fn adaptive_vs_best_static(&self) -> f64 {
        let best = self.best_static().1;
        if best == 0.0 {
            0.0
        } else {
            self.adaptive_run().throughput / best
        }
    }

    pub fn to_json(&self) -> String {
        let (best_label, best_tps) = self.best_static();
        json::JsonObj::new()
            .str("query", &self.query)
            .int("workers", self.workers as u64)
            .raw(
                "phases",
                json::jarray(
                    self.phases
                        .iter()
                        .map(|(n, t)| format!("[{n}, {t}]"))
                        .collect::<Vec<_>>(),
                ),
            )
            .str("best_static", best_label)
            .num("best_static_tps", best_tps)
            .num("adaptive_tps", self.adaptive_run().throughput)
            .num("adaptive_vs_best_static", self.adaptive_vs_best_static())
            .raw(
                "runs",
                json::jarray(self.runs.iter().map(|(label, r)| {
                    json::JsonObj::new()
                        .str("label", label)
                        .raw("run", r.to_json())
                        .render()
                })),
            )
            .render()
    }
}

/// Run the static-vs-adaptive comparison for one query on a phased stream.
pub fn compare_adaptive_stream(
    q: &CatalogQuery,
    workers: usize,
    phases: &[(usize, usize)],
    seed: u64,
) -> AdaptiveStreamComparison {
    let total: usize = phases.iter().map(|(n, t)| n * t).sum();
    let stream = stream_for(q, total, seed);
    let batches = stream.phased_batches(phases);
    let arms: Vec<(String, BackendKind)> = vec![
        (
            "static-1".into(),
            BackendKind::Pipelined { coalesce_tuples: 1 },
        ),
        (
            "static-64".into(),
            BackendKind::Pipelined {
                coalesce_tuples: 64,
            },
        ),
        (
            "static-inf".into(),
            BackendKind::Pipelined {
                coalesce_tuples: COALESCE_UNBOUNDED,
            },
        ),
        ("adaptive".into(), BackendKind::Adaptive),
    ];
    let runs = arms
        .into_iter()
        .map(|(label, kind)| {
            let run = run_distributed_batches(q, &batches, workers, 0, OptLevel::O3, kind);
            (label, run)
        })
        .collect();
    AdaptiveStreamComparison {
        query: q.id.to_string(),
        workers,
        phases: phases.to_vec(),
        runs,
    }
}

/// Run a query on the simulated cluster, chunking the stream into batches of
/// `batch_tuples`, and report modelled latency/throughput.
pub fn run_distributed(
    q: &CatalogQuery,
    stream: &UpdateStream,
    workers: usize,
    batch_tuples: usize,
    opt: OptLevel,
) -> DistRun {
    run_distributed_on(
        q,
        stream,
        workers,
        batch_tuples,
        opt,
        BackendKind::Simulated,
    )
}

/// Run a query on the real thread-per-worker runtime and report measured
/// wall-clock latency/throughput.
pub fn run_distributed_real(
    q: &CatalogQuery,
    stream: &UpdateStream,
    workers: usize,
    batch_tuples: usize,
    opt: OptLevel,
) -> DistRun {
    run_distributed_on(q, stream, workers, batch_tuples, opt, BackendKind::Threaded)
}

/// Backend-generic distributed experiment driver (uniform batch sizes; see
/// [`run_distributed_batches`] for phased streams).
pub fn run_distributed_on(
    q: &CatalogQuery,
    stream: &UpdateStream,
    workers: usize,
    batch_tuples: usize,
    opt: OptLevel,
    backend: BackendKind,
) -> DistRun {
    let batches = stream.batches(batch_tuples);
    run_distributed_batches(q, &batches, workers, batch_tuples, opt, backend)
}

/// Head-to-head stream throughput: the same many-small-batch stream pushed
/// through the epoch-synchronous path and through the pipelined+coalescing
/// path on the same host (the runtime-layer version of the paper's batching
/// thesis: fewer, larger triggers amortize per-batch overhead).
#[derive(Clone, Debug)]
pub struct StreamComparison {
    pub query: String,
    pub workers: usize,
    pub n_batches: usize,
    pub tuples_per_batch: usize,
    pub sync: DistRun,
    pub pipelined: DistRun,
}

impl StreamComparison {
    pub fn speedup(&self) -> f64 {
        if self.sync.throughput == 0.0 {
            0.0
        } else {
            self.pipelined.throughput / self.sync.throughput
        }
    }

    pub fn to_json(&self) -> String {
        json::JsonObj::new()
            .str("query", &self.query)
            .int("workers", self.workers as u64)
            .int("n_batches", self.n_batches as u64)
            .int("tuples_per_batch", self.tuples_per_batch as u64)
            .num("speedup", self.speedup())
            .raw("sync", self.sync.to_json())
            .raw("pipelined", self.pipelined.to_json())
            .render()
    }
}

/// Push a `n_batches`×`tuples_per_batch` stream through both threaded
/// paths; the pipelined path may coalesce up to `coalesce_tuples` per
/// trigger.
pub fn compare_stream_throughput(
    q: &CatalogQuery,
    workers: usize,
    n_batches: usize,
    tuples_per_batch: usize,
    coalesce_tuples: usize,
) -> StreamComparison {
    let stream = stream_for(q, n_batches * tuples_per_batch, 64);
    let sync = run_distributed_on(
        q,
        &stream,
        workers,
        tuples_per_batch,
        OptLevel::O3,
        BackendKind::Threaded,
    );
    let pipelined = run_distributed_on(
        q,
        &stream,
        workers,
        tuples_per_batch,
        OptLevel::O3,
        BackendKind::Pipelined { coalesce_tuples },
    );
    StreamComparison {
        query: q.id.to_string(),
        workers,
        n_batches,
        tuples_per_batch,
        sync,
        pipelined,
    }
}

/// Head-to-head of the tagged-reply protocol against its positional-FIFO
/// compatibility schedule: the same many-small-batch stream through the
/// pipelined runtime with fully async gathers + batched scatters (tagged)
/// and with full-window drains before every fetch + one scatter message per
/// statement (fifo).  Both arms run the identical trigger sequence, so the
/// speedup isolates the protocol change.
#[derive(Clone, Debug)]
pub struct AsyncGatherComparison {
    pub query: String,
    pub workers: usize,
    pub n_batches: usize,
    pub tuples_per_batch: usize,
    pub fifo: DistRun,
    pub tagged: DistRun,
}

impl AsyncGatherComparison {
    /// Tagged over FIFO throughput (≥ 1 means the tagged protocol matched
    /// or beat the positional schedule).
    pub fn speedup(&self) -> f64 {
        if self.fifo.throughput == 0.0 {
            0.0
        } else {
            self.tagged.throughput / self.fifo.throughput
        }
    }

    pub fn to_json(&self) -> String {
        let c = self.tagged.coalesce.as_ref();
        json::JsonObj::new()
            .str("query", &self.query)
            .int("workers", self.workers as u64)
            .int("n_batches", self.n_batches as u64)
            .int("tuples_per_batch", self.tuples_per_batch as u64)
            .num("speedup", self.speedup())
            .int(
                "gathers_overlapped",
                c.map(|c| c.gathers_overlapped).unwrap_or(0) as u64,
            )
            .int(
                "scatter_messages_saved",
                c.map(|c| c.scatter_messages_saved).unwrap_or(0) as u64,
            )
            .raw("fifo", self.fifo.to_json())
            .raw("tagged", self.tagged.to_json())
            .render()
    }
}

/// Table header matching [`async_gather_row`], shared by the fig9/fig10
/// protocol-comparison tables.
pub const ASYNC_GATHER_HEADER: [&str; 8] = [
    "query",
    "workers",
    "stream",
    "fifo (Ktup/s)",
    "tagged (Ktup/s)",
    "speedup",
    "overlapped gathers",
    "msgs saved",
];

/// One [`print_table`] row for a protocol comparison (columns per
/// [`ASYNC_GATHER_HEADER`]).
pub fn async_gather_row(cmp: &AsyncGatherComparison) -> Vec<String> {
    let c = cmp.tagged.coalesce.as_ref();
    vec![
        cmp.query.clone(),
        cmp.workers.to_string(),
        format!("{} x {}", cmp.n_batches, cmp.tuples_per_batch),
        f(cmp.fifo.throughput / 1e3),
        f(cmp.tagged.throughput / 1e3),
        format!("{:.2}x", cmp.speedup()),
        c.map(|c| c.gathers_overlapped.to_string())
            .unwrap_or_default(),
        c.map(|c| c.scatter_messages_saved.to_string())
            .unwrap_or_default(),
    ]
}

/// Push a `n_batches`×`tuples_per_batch` stream through the pipelined
/// runtime under both reply-accounting schedules, coalescing up to
/// `coalesce_tuples` per trigger in each arm.
///
/// The streams are tiny (the point is many small triggers, i.e. many
/// gather rounds), so a single run is at the mercy of scheduler noise:
/// each arm runs three times in alternating order and the
/// median-throughput run represents it — the same treatment for both
/// arms, so the ratio stays honest while the tails are cut.
pub fn compare_async_gather(
    q: &CatalogQuery,
    workers: usize,
    n_batches: usize,
    tuples_per_batch: usize,
    coalesce_tuples: usize,
) -> AsyncGatherComparison {
    const REPEATS: usize = 3;
    let stream = stream_for(q, n_batches * tuples_per_batch, 64);
    let mut fifo_runs = Vec::with_capacity(REPEATS);
    let mut tagged_runs = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        fifo_runs.push(run_distributed_on(
            q,
            &stream,
            workers,
            tuples_per_batch,
            OptLevel::O3,
            BackendKind::PipelinedFifo { coalesce_tuples },
        ));
        tagged_runs.push(run_distributed_on(
            q,
            &stream,
            workers,
            tuples_per_batch,
            OptLevel::O3,
            BackendKind::Pipelined { coalesce_tuples },
        ));
    }
    let median = |mut runs: Vec<DistRun>| -> DistRun {
        runs.sort_by(|a, b| a.throughput.total_cmp(&b.throughput));
        runs.swap_remove(REPEATS / 2)
    };
    let fifo = median(fifo_runs);
    let tagged = median(tagged_runs);
    AsyncGatherComparison {
        query: q.id.to_string(),
        workers,
        n_batches,
        tuples_per_batch,
        fifo,
        tagged,
    }
}

/// TCP cluster configuration for benches: subprocess workers by default,
/// `HOTDOG_TCP_SPAWN=thread` (handled by `TcpConfig::from_env`) swaps in
/// in-process socket threads on hosts where spawning is unavailable.
pub fn tcp_bench_config(workers: usize) -> TcpConfig {
    TcpConfig::from_env(workers)
}

/// Head-to-head of the in-process channel transport against the real
/// socket transport: the same stream through `ThreadedCluster` and
/// `TcpCluster`, both epoch-synchronous, same driver and schedule — the
/// throughput ratio isolates what the wire costs (framing, codec,
/// syscalls, process isolation).  This is the number the network-path
/// optimizations of the ROADMAP (scatter batching across triggers,
/// compression, zero-copy) will be held against.
#[derive(Clone, Debug)]
pub struct NetOverheadComparison {
    pub query: String,
    pub workers: usize,
    pub n_batches: usize,
    pub tuples_per_batch: usize,
    pub threaded: DistRun,
    pub tcp: DistRun,
}

impl NetOverheadComparison {
    /// TCP over threaded throughput (≤ 1 in practice: the wire can only
    /// cost; how *little* it costs is the tracked number).
    pub fn tcp_vs_threaded(&self) -> f64 {
        if self.threaded.throughput == 0.0 {
            0.0
        } else {
            self.tcp.throughput / self.threaded.throughput
        }
    }

    pub fn to_json(&self) -> String {
        json::JsonObj::new()
            .str("query", &self.query)
            .int("workers", self.workers as u64)
            .int("n_batches", self.n_batches as u64)
            .int("tuples_per_batch", self.tuples_per_batch as u64)
            .num("tcp_vs_threaded", self.tcp_vs_threaded())
            .raw("threaded", self.threaded.to_json())
            .raw("tcp", self.tcp.to_json())
            .render()
    }
}

/// Run the net-overhead comparison on the fig9 stream shape
/// (`n_batches`×`tuples_per_batch`).  Both arms are timing-measured and
/// the TCP arm pays per-message syscalls, so each arm runs three times in
/// alternating order and its median-throughput run represents it (the
/// same median-of-3 treatment as [`compare_async_gather`]).  One
/// `TcpCluster` is built per run — worker spawn/handshake cost is *not*
/// inside the measured stream window (totals time the stream, not
/// construction).
pub fn compare_net_overhead(
    q: &CatalogQuery,
    workers: usize,
    n_batches: usize,
    tuples_per_batch: usize,
) -> NetOverheadComparison {
    const REPEATS: usize = 3;
    let stream = stream_for(q, n_batches * tuples_per_batch, 64);
    let mut threaded_runs = Vec::with_capacity(REPEATS);
    let mut tcp_runs = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        threaded_runs.push(run_distributed_on(
            q,
            &stream,
            workers,
            tuples_per_batch,
            OptLevel::O3,
            BackendKind::Threaded,
        ));
        tcp_runs.push(run_distributed_on(
            q,
            &stream,
            workers,
            tuples_per_batch,
            OptLevel::O3,
            BackendKind::Tcp,
        ));
    }
    let median = |mut runs: Vec<DistRun>| -> DistRun {
        runs.sort_by(|a, b| a.throughput.total_cmp(&b.throughput));
        runs.swap_remove(REPEATS / 2)
    };
    NetOverheadComparison {
        query: q.id.to_string(),
        workers,
        n_batches,
        tuples_per_batch,
        threaded: median(threaded_runs),
        tcp: median(tcp_runs),
    }
}

/// Head-to-head of the row-at-a-time reference interpreter against the
/// columnar vectorized path (`hotdog-exec`'s `vectorized` module) on the
/// same stream, same single-worker threaded cluster, same schedule — the
/// throughput ratio isolates what per-tuple interpretation costs.  Both
/// arms produce bit-identical results (the differential tests hold them to
/// that), so this ratio is pure speed.
#[derive(Clone, Debug)]
pub struct ColumnarComparison {
    pub query: String,
    pub workers: usize,
    pub n_batches: usize,
    pub tuples_per_batch: usize,
    /// The reference interpreter arm (`set_columnar(false)`).
    pub row: DistRun,
    /// The vectorized arm (`set_columnar(true)`, the default mode).
    pub columnar: DistRun,
}

impl ColumnarComparison {
    /// Columnar over row throughput (> 1 when vectorization pays).
    pub fn columnar_vs_row(&self) -> f64 {
        if self.row.throughput == 0.0 {
            0.0
        } else {
            self.columnar.throughput / self.row.throughput
        }
    }

    pub fn to_json(&self) -> String {
        json::JsonObj::new()
            .str("query", &self.query)
            .int("workers", self.workers as u64)
            .int("n_batches", self.n_batches as u64)
            .int("tuples_per_batch", self.tuples_per_batch as u64)
            .num("columnar_vs_row", self.columnar_vs_row())
            .raw("row", self.row.to_json())
            .raw("columnar", self.columnar.to_json())
            .render()
    }
}

/// Run the columnar-vs-row comparison on a fig9-family stream
/// (`n_batches`×`tuples_per_batch`, single worker so trigger execution —
/// not scheduling — dominates).  The interpreter knob is flipped
/// process-wide per arm via [`hotdog::exec::set_columnar`]; arms alternate
/// and each is represented by its median-of-3 run, the same treatment as
/// [`compare_net_overhead`].  The knob is restored to columnar (the
/// default) before returning.
pub fn compare_columnar(
    q: &CatalogQuery,
    workers: usize,
    n_batches: usize,
    tuples_per_batch: usize,
) -> ColumnarComparison {
    const REPEATS: usize = 3;
    let stream = stream_for(q, n_batches * tuples_per_batch, 64);
    let mut row_runs = Vec::with_capacity(REPEATS);
    let mut col_runs = Vec::with_capacity(REPEATS);
    for _ in 0..REPEATS {
        hotdog::exec::set_columnar(false);
        row_runs.push(run_distributed_on(
            q,
            &stream,
            workers,
            tuples_per_batch,
            OptLevel::O3,
            BackendKind::Threaded,
        ));
        hotdog::exec::set_columnar(true);
        col_runs.push(run_distributed_on(
            q,
            &stream,
            workers,
            tuples_per_batch,
            OptLevel::O3,
            BackendKind::Threaded,
        ));
    }
    hotdog::exec::set_columnar(true);
    let median = |mut runs: Vec<DistRun>| -> DistRun {
        runs.sort_by(|a, b| a.throughput.total_cmp(&b.throughput));
        runs.swap_remove(REPEATS / 2)
    };
    ColumnarComparison {
        query: q.id.to_string(),
        workers,
        n_batches,
        tuples_per_batch,
        row: median(row_runs),
        columnar: median(col_runs),
    }
}

/// Print a plain-text table: header row then rows, columns padded.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with limited precision for table output.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_run_produces_sane_metrics() {
        let q = query("Q6").unwrap();
        let stream = stream_for(&q, 2_000, 1);
        let run = run_local(
            &q,
            &stream,
            Strategy::RecursiveIvm,
            ExecMode::Batched { preaggregate: true },
            500,
        );
        assert!(run.throughput > 0.0);
        assert!(run.instructions > 0);
        assert_eq!(run.tuples, stream.len());
    }

    #[test]
    fn distributed_run_produces_sane_metrics() {
        let q = query("Q3").unwrap();
        let stream = stream_for(&q, 2_000, 1);
        let run = run_distributed(&q, &stream, 4, 1_000, OptLevel::O3);
        assert!(run.median_latency_secs > 0.0);
        assert!(run.jobs >= 1);
        assert!(run.stages >= 1);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "test",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.4), "123");
    }
}
