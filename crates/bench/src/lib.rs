//! # hotdog-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation section on the laptop-scale simulator.  Each binary under
//! `src/bin/` regenerates one artifact (see `EXPERIMENTS.md` at the
//! repository root for the mapping and recorded outputs); this library holds
//! the shared experiment drivers and plain-text table printing.
//!
//! Absolute numbers differ from the paper (interpreter vs. generated C++,
//! simulated cluster vs. 100 Spark servers); the harness is built to
//! reproduce the *shapes*: which strategy wins, how throughput moves with
//! batch size, and how latency scales with workers.

use hotdog::ivm::Strategy;
use hotdog::prelude::*;
use std::time::Instant;

/// How many stream tuples the local experiments process by default.  Can be
/// overridden with the `HOTDOG_TUPLES` environment variable.
pub fn default_local_tuples() -> usize {
    std::env::var("HOTDOG_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000)
}

/// Default stream size for the distributed experiments
/// (`HOTDOG_DIST_TUPLES`).
pub fn default_dist_tuples() -> usize {
    std::env::var("HOTDOG_DIST_TUPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000)
}

/// Generate the stream matching a catalog query's workload family.
pub fn stream_for(q: &CatalogQuery, tuples: usize, seed: u64) -> UpdateStream {
    match q.workload {
        hotdog::workload::Workload::TpcH => generate_tpch(seed, tuples),
        hotdog::workload::Workload::TpcDs => generate_tpcds(seed, tuples),
    }
}

/// Result of one local maintenance run.
#[derive(Clone, Debug)]
pub struct LocalRun {
    pub query: String,
    pub strategy: Strategy,
    pub mode: &'static str,
    pub batch_size: usize,
    pub tuples: usize,
    pub elapsed_secs: f64,
    pub throughput: f64,
    pub result_size: usize,
    pub instructions: u64,
    pub probes: u64,
}

/// Run one query over a stream with the given strategy/mode/batch size and
/// measure wall-clock throughput plus engine counters.
pub fn run_local(
    q: &CatalogQuery,
    stream: &UpdateStream,
    strategy: Strategy,
    mode: ExecMode,
    batch_size: usize,
) -> LocalRun {
    let plan = compile(q.id, &q.expr, strategy);
    let mut engine = LocalEngine::new(plan, mode);
    let start = Instant::now();
    for batch in stream.batches(batch_size) {
        for (rel, delta) in batch {
            engine.apply_batch(rel, &delta);
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    LocalRun {
        query: q.id.to_string(),
        strategy,
        mode: mode.label(),
        batch_size,
        tuples: stream.len(),
        elapsed_secs: elapsed,
        throughput: stream.len() as f64 / elapsed,
        result_size: engine.query_result().len(),
        instructions: engine.totals.eval.instructions(),
        probes: engine.database().counters().probes(),
    }
}

/// Throughput of specialized single-tuple processing, used as the
/// normalization baseline of Figures 7 and 12.
pub fn single_tuple_baseline(q: &CatalogQuery, stream: &UpdateStream) -> LocalRun {
    run_local(q, stream, Strategy::RecursiveIvm, ExecMode::SingleTuple, 1)
}

/// Which execution backend a distributed experiment runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Single-threaded simulator with the modelled cost model (the default).
    Simulated,
    /// `hotdog-runtime` thread-per-worker backend; latencies are measured
    /// wall-clock.
    Threaded,
}

impl Backend {
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Simulated => "modelled",
            Backend::Threaded => "measured",
        }
    }

    /// Parse `--real` from a binary's argument list.
    pub fn from_args() -> Backend {
        if std::env::args().any(|a| a == "--real") {
            Backend::Threaded
        } else {
            Backend::Simulated
        }
    }
}

/// Result of one distributed run.
#[derive(Clone, Debug)]
pub struct DistRun {
    pub query: String,
    pub workers: usize,
    pub batch_tuples: usize,
    pub opt: OptLevel,
    pub backend: Backend,
    pub median_latency_secs: f64,
    pub throughput: f64,
    pub mb_shuffled_per_worker: f64,
    pub jobs: usize,
    pub stages: usize,
}

/// Run a query on the simulated cluster, chunking the stream into batches of
/// `batch_tuples`, and report modelled latency/throughput.
pub fn run_distributed(
    q: &CatalogQuery,
    stream: &UpdateStream,
    workers: usize,
    batch_tuples: usize,
    opt: OptLevel,
) -> DistRun {
    run_distributed_on(q, stream, workers, batch_tuples, opt, Backend::Simulated)
}

/// Run a query on the real thread-per-worker runtime and report measured
/// wall-clock latency/throughput.
pub fn run_distributed_real(
    q: &CatalogQuery,
    stream: &UpdateStream,
    workers: usize,
    batch_tuples: usize,
    opt: OptLevel,
) -> DistRun {
    run_distributed_on(q, stream, workers, batch_tuples, opt, Backend::Threaded)
}

/// Backend-generic distributed experiment driver.
pub fn run_distributed_on(
    q: &CatalogQuery,
    stream: &UpdateStream,
    workers: usize,
    batch_tuples: usize,
    opt: OptLevel,
    backend: Backend,
) -> DistRun {
    let plan = compile_recursive(q.id, &q.expr);
    let spec = PartitioningSpec::heuristic(&plan, &q.partition_keys);
    let dplan = compile_distributed(&plan, &spec, opt);
    let (jobs, stages) = dplan.complexity();
    let totals = match backend {
        Backend::Simulated => {
            let mut cluster = Cluster::new(dplan, ClusterConfig::with_workers(workers));
            for batch in stream.batches(batch_tuples) {
                for (rel, delta) in batch {
                    cluster.apply_batch(rel, &delta);
                }
            }
            cluster.totals.clone()
        }
        Backend::Threaded => {
            let mut cluster = ThreadedCluster::new(dplan, workers);
            for batch in stream.batches(batch_tuples) {
                for (rel, delta) in batch {
                    cluster.apply_batch(rel, &delta);
                }
            }
            cluster.totals.clone()
        }
    };
    DistRun {
        query: q.id.to_string(),
        workers,
        batch_tuples,
        opt,
        backend,
        median_latency_secs: totals.median_latency(),
        throughput: totals.throughput(),
        mb_shuffled_per_worker: totals.bytes_shuffled as f64
            / 1e6
            / workers as f64
            / totals.batches.max(1) as f64,
        jobs,
        stages,
    }
}

/// Print a plain-text table: header row then rows, columns padded.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a float with limited precision for table output.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_run_produces_sane_metrics() {
        let q = query("Q6").unwrap();
        let stream = stream_for(&q, 2_000, 1);
        let run = run_local(
            &q,
            &stream,
            Strategy::RecursiveIvm,
            ExecMode::Batched { preaggregate: true },
            500,
        );
        assert!(run.throughput > 0.0);
        assert!(run.instructions > 0);
        assert_eq!(run.tuples, stream.len());
    }

    #[test]
    fn distributed_run_produces_sane_metrics() {
        let q = query("Q3").unwrap();
        let stream = stream_for(&q, 2_000, 1);
        let run = run_distributed(&q, &stream, 4, 1_000, OptLevel::O3);
        assert!(run.median_latency_secs > 0.0);
        assert!(run.jobs >= 1);
        assert!(run.stages >= 1);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "test",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.4), "123");
    }
}
