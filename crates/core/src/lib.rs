//! # hotdog — Distributed Incremental View Maintenance with Batch Updates
//!
//! Rust reproduction of the SIGMOD 2016 paper *"How to Win a Hot Dog Eating
//! Contest: Distributed Incremental View Maintenance with Batch Updates"*
//! (Nikolic, Dashti, Koch — the DBToaster batched/distributed extension).
//!
//! This facade crate re-exports the full pipeline:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | data model & algebra | [`algebra`] | values, tuples, rings, relations, the AGCA-style [`algebra::Expr`] and a reference evaluator |
//! | storage | [`storage`] | multi-indexed record pools, columnar batches |
//! | maintenance compilers | [`ivm`] | delta rules, domain extraction, recursive / classical / re-evaluation plans |
//! | local runtime | [`exec`] | the trigger interpreter (single-tuple & batched modes) |
//! | distributed compiler & runtime | [`distributed`] | location tags, transformers, block fusion, the simulated cluster |
//! | threaded runtime | [`runtime`] | the transport-generic driver and the thread-per-worker backend (`ThreadedCluster`) |
//! | socket transport | [`net`] | length-prefixed binary codec and the multi-process TCP backend (`TcpCluster`) |
//! | subscriptions | [`serve`] | multi-tenant standing-query hub: shared-plan fan-out, pushed [`serve::ViewDelta`]s, TCP subscribe protocol |
//! | telemetry | [`telemetry`] | dependency-free metrics registry and the bounded flight recorder shared by every backend |
//! | workloads | [`workload`] | TPC-H / TPC-DS style generators, streams and the query catalog |
//!
//! ## Quickstart
//!
//! ```
//! use hotdog::prelude::*;
//!
//! // COUNT(*) per B over R(A,B) ⋈ S(B,C), maintained incrementally.
//! let query = sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"])));
//! let plan = compile("counts", &query, Strategy::RecursiveIvm);
//! let mut engine = LocalEngine::new(plan, ExecMode::Batched { preaggregate: true });
//!
//! let batch = Relation::from_pairs(
//!     Schema::new(["A", "B"]),
//!     vec![(Tuple::from_values([Value::Long(1), Value::Long(10)]), 1.0)],
//! );
//! engine.apply_batch("R", &batch);
//! assert!(engine.query_result().is_empty()); // no S tuples yet
//! ```

#![forbid(unsafe_code)]

pub use hotdog_algebra as algebra;
pub use hotdog_distributed as distributed;
pub use hotdog_exec as exec;
pub use hotdog_ivm as ivm;
pub use hotdog_net as net;
pub use hotdog_runtime as runtime;
pub use hotdog_serve as serve;
pub use hotdog_storage as storage;
pub use hotdog_telemetry as telemetry;
pub use hotdog_workload as workload;

/// Convenience re-exports covering the most common entry points.
pub mod prelude {
    pub use hotdog_algebra::{
        assign_query, assign_val, cmp, cmp_lit, cmp_vars, delta_rel, evaluate, exists, join,
        join_all, neg, rel, sum, sum_total, union, val, val_var, view, CmpOp, Env, Evaluator, Expr,
        MapCatalog, Mult, RelKind, Relation, Schema, Tuple, ValExpr, Value, ViewChecksum,
    };
    pub use hotdog_distributed::{
        compile_distributed, Backend, CaptureBatch, CapturedView, Cluster, ClusterConfig,
        DeltaCapture, DistributedPlan, LocTag, OptLevel, PartitionFn, PartitioningSpec,
        ViewAccumulator, WorkerSnapshot, WorkerState, WorkerStats, WorkerStatsSnapshot,
    };
    pub use hotdog_exec::{
        columnar_enabled, set_columnar, BatchStats, Database, ExecMode, LocalEngine,
    };
    pub use hotdog_ivm::{
        compile, compile_classical, compile_recursive, compile_reevaluation, delta, extract_domain,
        MaintenancePlan, Strategy,
    };
    pub use hotdog_net::{
        FaultKind, FaultPlan, KillSpec, Phase, TcpCluster, TcpConfig, WorkerSpawn,
    };
    pub use hotdog_runtime::{
        AdaptiveConfig, ChannelTransport, CoalesceController, Driver, FaultConfig, PipelineConfig,
        PipelineStats, RecoveryMode, TelemetryTotals, ThreadedCluster, Transport, WorkerDead,
    };
    pub use hotdog_serve::{
        ParamFilter, QueryShape, SubscribeClient, SubscriberView, SubscriptionHub, SubscriptionId,
        ViewDelta,
    };
    pub use hotdog_storage::{ColumnarBatch, RecordPool};
    pub use hotdog_telemetry::{
        chrome_trace_json, critical_path, trace_structure, CriticalPath, FlightRecorder,
        MetricsSnapshot, Registry, SpanContext, SpanRecord, SpanStructure, Telemetry,
    };
    pub use hotdog_workload::{
        all_queries, generate_tpcds, generate_tpch, query, tpcds_queries, tpch_queries,
        CatalogQuery, UpdateStream,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let q = sum_total(join(rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 0)));
        let plan = compile("q", &q, Strategy::RecursiveIvm);
        let mut engine = LocalEngine::new(plan, ExecMode::SingleTuple);
        let batch = Relation::from_pairs(
            Schema::new(["A", "B"]),
            vec![(Tuple::from_values([Value::Long(1), Value::Long(2)]), 1.0)],
        );
        engine.apply_batch("R", &batch);
        assert_eq!(engine.query_result().scalar_value(), 1.0);
    }
}
