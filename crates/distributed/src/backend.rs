//! The execution-backend abstraction.
//!
//! Three backends run compiled [`DistributedPlan`]s over the same
//! [`WorkerState`](crate::worker::WorkerState) machinery: the single-threaded
//! simulated [`Cluster`] (modelled time), the epoch-synchronous
//! thread-per-worker runtime, and the pipelined runtime with delta
//! coalescing (both in `hotdog-runtime`, measured time).  [`Backend`] is the
//! surface they share, so benches and differential tests are written once
//! and run against every backend.
//!
//! The trait is deliberately *streaming-shaped*: [`Backend::apply_batch`]
//! admits one delta batch (a pipelined backend may only enqueue it), and
//! [`Backend::flush`] is the barrier that forces every admitted batch to be
//! fully executed.  Reads ([`Backend::view_contents`],
//! [`Backend::query_result`]) take `&mut self` because a pipelined backend
//! must synchronize to its watermark before exposing view state.

use crate::cluster::{BatchExecution, Cluster, ClusterTotals};
use crate::program::DistributedPlan;
use hotdog_algebra::relation::Relation;
use hotdog_telemetry::{SpanContext, Telemetry};
use std::sync::Arc;

/// Counters of a pipelined ingestion path (admission queue, delta
/// coalescing, adaptive tuning, backpressure).  Defined here — not in the
/// runtime crate — so [`Backend::pipeline_stats`] can expose them
/// backend-generically; synchronous backends report `None`.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Batches admitted via `apply_batch`.
    pub batches_admitted: usize,
    /// Admitted batches that were ring-summed into an already-queued delta
    /// instead of triggering on their own.
    pub batches_coalesced: usize,
    /// Maintenance-program executions actually triggered.
    pub batches_executed: usize,
    /// Admitted-but-unissued batches abandoned by an explicit close/drop
    /// (never executed).
    pub batches_abandoned: usize,
    /// Tuples admitted (pre-coalescing).
    pub tuples_admitted: usize,
    /// Tuples in the executed deltas (post-coalescing; cancellation shrinks
    /// this below `tuples_admitted`).
    pub tuples_executed: usize,
    /// High-water mark of the admission queue depth (batches).
    pub max_queue_depth: usize,
    /// High-water mark of the admission queue footprint (serialized bytes).
    pub max_queue_bytes: usize,
    /// Executions forced by the byte-bounded backpressure
    /// (`admit_bytes`), not by the count capacity.
    pub executions_forced_by_bytes: usize,
    /// Executions forced by the latency target (watermark lag exceeded the
    /// configured staleness bound).
    pub executions_forced_by_latency: usize,
    /// Slowest worker's interpreter work observed across lazy reply drains.
    pub max_worker_instructions: u64,
    /// Total interpreter work reported by workers across all settled block
    /// completions (the lazily collected counts the adaptive controller
    /// folds into its cost signal — see `hotdog_runtime::adaptive`).
    pub worker_instructions: u64,
    /// Gather/repartition fetches issued while distributed-block
    /// completions were still pending: the tagged-reply protocol let the
    /// fetch overlap in-flight worker work instead of draining the window
    /// first (always 0 under the FIFO-compat schedule).
    pub gathers_overlapped: usize,
    /// Multi-statement `ApplyMany` scatter messages shipped to workers.
    pub scatter_messages_sent: usize,
    /// Per-statement scatter messages avoided by batching (sum over
    /// shipped messages of `statements - 1`); 0 when scatter batching is
    /// disabled.
    pub scatter_messages_saved: usize,
    /// Coalescing bound currently in force (the static threshold, or the
    /// adaptive controller's latest choice).
    pub coalesce_bound: usize,
    /// Number of times the adaptive controller re-pointed its search
    /// direction (0 under a static threshold).
    pub bound_reversals: usize,
    /// Number of bound adjustments the adaptive controller made (0 under a
    /// static threshold).
    pub bound_adjustments: usize,
}

/// A distributed execution backend: admits delta batches against one
/// compiled [`DistributedPlan`] and serves consistent view reads.
pub trait Backend {
    /// Short human-readable backend name (for tables and JSON output).
    fn backend_name(&self) -> &'static str;

    /// The compiled distributed plan this backend runs.
    fn plan(&self) -> &DistributedPlan;

    /// Admit one batch of updates to `relation`.  Synchronous backends
    /// execute it to completion and return measured/modelled statistics; a
    /// pipelined backend may coalesce and defer it, returning admission-time
    /// statistics only.
    fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution;

    /// Force every admitted batch to be fully executed (no-op for
    /// synchronous backends).  After `flush`, reads observe the entire
    /// admitted stream.
    fn flush(&mut self) {}

    /// Full contents of a view, merged across all nodes holding a piece.
    /// Pipelined backends synchronize to a consistent batch boundary first.
    fn view_contents(&mut self, name: &str) -> Relation;

    /// Current contents of the top-level query view.
    fn query_result(&mut self) -> Relation {
        let top = self.plan().plan.top_view.clone();
        self.view_contents(&top)
    }

    /// Accumulated execution totals.
    fn totals(&self) -> &ClusterTotals;

    /// Pipelined-ingestion and tuning counters, for backends with an
    /// admission queue (`None` for synchronous backends).  Lets benches and
    /// tests report coalescing/backpressure behaviour without knowing the
    /// concrete backend type.
    fn pipeline_stats(&self) -> Option<PipelineStats> {
        None
    }

    /// This backend's telemetry handle (metrics, flight ring, span
    /// tracer), when it has one.  Layers above the backend — e.g. the
    /// subscription hub's fan-out path — record their metrics and spans
    /// here so a batch's tree stays stitched across layers.
    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        None
    }

    /// Context of the most recently executed batch's root span, the
    /// parent for post-execution stages (subscription fan-out push).
    /// `NONE` for backends without tracing.
    fn trace_scope(&self) -> SpanContext {
        SpanContext::NONE
    }

    /// Stream-apply: admit a pre-batched update stream in order, then flush.
    fn apply_stream<S: AsRef<str>>(&mut self, batches: &[Vec<(S, Relation)>]) {
        for batch in batches {
            for (rel, delta) in batch {
                self.apply_batch(rel.as_ref(), delta);
            }
        }
        self.flush();
    }
}

impl Backend for Cluster {
    fn backend_name(&self) -> &'static str {
        "simulated"
    }

    fn plan(&self) -> &DistributedPlan {
        Cluster::plan(self)
    }

    fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        Cluster::apply_batch(self, relation, batch)
    }

    fn view_contents(&mut self, name: &str) -> Relation {
        Cluster::view_contents(self, name)
    }

    fn totals(&self) -> &ClusterTotals {
        &self.totals
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        Some(Cluster::telemetry(self))
    }

    fn trace_scope(&self) -> SpanContext {
        Cluster::trace_scope(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::partition::PartitioningSpec;
    use crate::program::{compile_distributed, OptLevel};
    use hotdog_algebra::expr::*;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple;
    use hotdog_ivm::compile_recursive;

    fn run_generic<B: Backend>(backend: &mut B) -> Relation {
        let batches: Vec<Vec<(&str, Relation)>> = vec![vec![
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["A", "B"]),
                    (0..10i64).map(|i| (tuple![i, i % 3], 1.0)),
                ),
            ),
            (
                "S",
                Relation::from_pairs(
                    Schema::new(["B", "C"]),
                    (0..6i64).map(|i| (tuple![i % 3, i], 1.0)),
                ),
            ),
        ]];
        backend.apply_stream(&batches);
        backend.query_result()
    }

    #[test]
    fn cluster_implements_backend() {
        let q = sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"])));
        let plan = compile_recursive("Q", &q);
        let spec = PartitioningSpec::heuristic(&plan, &["A"]);
        let dplan = compile_distributed(&plan, &spec, OptLevel::O3);
        let mut cluster = Cluster::new(dplan, ClusterConfig::with_workers(3));
        let result = run_generic(&mut cluster);
        assert!(!result.is_empty());
        assert_eq!(cluster.backend_name(), "simulated");
        assert_eq!(Backend::totals(&cluster).batches, 2);
    }
}
