//! Delta capture: the backend-side hook of the subscription layer.
//!
//! `hotdog-serve` pushes *incremental view updates* to subscribers instead
//! of letting them poll snapshots.  The mechanism is a per-node **capture
//! log**: when capture is enabled for a view, every statement applied to a
//! node's partition of it ([`WorkerState::apply`]) is also recorded as a
//! `(view, op, relation)` entry, in exact application order.  After each
//! committed batch the driver drains the logs (watermark-consistent by
//! command FIFO) and assembles a [`CaptureBatch`] whose per-view parts are
//! ordered exactly like `view_contents` merges node partitions — so a
//! client replaying the log against its own accumulator
//! ([`ViewAccumulator`]) performs the *same float operations in the same
//! order* as the cluster's pools and lands on the bit-identical relation.
//!
//! Recording the statement stream rather than a merged delta is what makes
//! this exact: a pre-merged buffer would re-associate additions (and lose
//! `SetTo` overwrite boundaries), drifting by ulps under exact
//! cancellation.  See [`WorkerState::apply`] for the hook itself.
//!
//! [`WorkerState::apply`]: crate::worker::WorkerState::apply

use crate::cluster::Cluster;
use crate::partition::LocTag;
use hotdog_algebra::relation::Relation;
use hotdog_algebra::schema::Schema;
use hotdog_ivm::StmtOp;

/// One view's captured statement stream for one batch window, split per
/// node part in `view_contents` merge order: `Local` views have a single
/// driver part, `Replicated` views a single part (worker 0's copy — every
/// worker applies the identical stream), distributed views one part per
/// worker in worker order.
#[derive(Clone, Debug, Default)]
pub struct CapturedView {
    pub name: String,
    /// Per-part `(op, relation)` entries in exact application order.
    pub parts: Vec<Vec<(StmtOp, Relation)>>,
}

/// Everything captured between two drains: the statement streams of every
/// captured view, stamped with the watermark (committed batch count) they
/// bring a subscriber up to.
#[derive(Clone, Debug, Default)]
pub struct CaptureBatch {
    /// Batches committed as of this capture cut; deltas never precede their
    /// batch's watermark commit.
    pub watermark: u64,
    /// When set, the capture continuity was broken (a fault-recovery cycle
    /// replayed the stream) and each part carries exactly one `SetTo` entry
    /// holding the part's full snapshot: subscribers reset rather than
    /// accumulate, which is how recovery avoids both gaps and duplicates.
    pub resync: bool,
    pub views: Vec<CapturedView>,
}

/// A backend that can capture per-batch view deltas for push-based
/// subscriptions.  Implemented by all three backends (simulated cluster,
/// threaded driver, TCP driver) over the shared [`WorkerState`] log.
///
/// [`WorkerState`]: crate::worker::WorkerState
pub trait DeltaCapture {
    /// Enable capture for `views` (replacing any previous capture set and
    /// discarding its pending log) on every node.  An empty slice disables
    /// capture.
    fn enable_capture(&mut self, views: &[String]);

    /// Synchronize to a committed batch boundary, then drain every node's
    /// capture log into one watermark-stamped batch.
    fn take_captured(&mut self) -> CaptureBatch;
}

/// Client-side reconstruction of one captured view: one accumulator
/// relation per node part, replayed from the captured statement stream.
/// Merging the parts in order ([`ViewAccumulator::contents`]) reproduces
/// `view_contents`' float-association tree exactly.
#[derive(Clone, Debug)]
pub struct ViewAccumulator {
    schema: Schema,
    parts: Vec<Relation>,
}

impl ViewAccumulator {
    pub fn new(schema: Schema) -> Self {
        ViewAccumulator {
            schema,
            parts: Vec::new(),
        }
    }

    /// Replay one captured window of this view.  With `resync` the parts
    /// are reset first (the entries then rebuild them from snapshots).
    pub fn apply(&mut self, view: &CapturedView, resync: bool) {
        if resync {
            self.parts.clear();
        }
        if self.parts.len() < view.parts.len() {
            self.parts
                .resize_with(view.parts.len(), || Relation::new(self.schema.clone()));
        }
        for (part, ops) in self.parts.iter_mut().zip(&view.parts) {
            for (op, rel) in ops {
                match op {
                    StmtOp::AddTo => part.merge(rel),
                    StmtOp::SetTo => *part = rel.clone(),
                }
            }
        }
    }

    /// The per-node part accumulators, in node order (what a mid-stream
    /// subscriber's initial snapshot is cut from).
    pub fn parts(&self) -> &[Relation] {
        &self.parts
    }

    /// The reconstructed view: parts merged in node order, exactly as
    /// `view_contents` merges partitions.
    pub fn contents(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for part in &self.parts {
            out.merge(part);
        }
        out
    }
}

/// Group one node's drained log by view name, in application order.
fn split_log(
    log: Vec<(String, StmtOp, Relation)>,
    views: &[String],
) -> Vec<Vec<(StmtOp, Relation)>> {
    let mut per_view: Vec<Vec<(StmtOp, Relation)>> = views.iter().map(|_| Vec::new()).collect();
    for (name, op, rel) in log {
        if let Some(i) = views.iter().position(|v| *v == name) {
            per_view[i].push((op, rel));
        }
    }
    per_view
}

/// Assemble per-node drained logs into [`CapturedView`]s, routing parts by
/// each view's location tag.  `worker_logs` must be in worker order; every
/// backend funnels through this so part order cannot diverge.
pub fn assemble_views(
    views: &[String],
    locate: impl Fn(&str) -> LocTag,
    driver_log: Vec<(String, StmtOp, Relation)>,
    worker_logs: Vec<Vec<(String, StmtOp, Relation)>>,
) -> Vec<CapturedView> {
    let mut driver_split = split_log(driver_log, views);
    let mut worker_splits: Vec<_> = worker_logs
        .into_iter()
        .map(|log| split_log(log, views))
        .collect();
    views
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let parts = match locate(name) {
                LocTag::Local => vec![std::mem::take(&mut driver_split[i])],
                LocTag::Replicated => vec![worker_splits
                    .first_mut()
                    .map(|w| std::mem::take(&mut w[i]))
                    .unwrap_or_default()],
                _ => worker_splits
                    .iter_mut()
                    .map(|w| std::mem::take(&mut w[i]))
                    .collect(),
            };
            CapturedView {
                name: name.clone(),
                parts,
            }
        })
        .collect()
}

impl DeltaCapture for Cluster {
    fn enable_capture(&mut self, views: &[String]) {
        self.capture_views = views.to_vec();
        self.driver.set_capture(views.iter().cloned());
        for w in &mut self.workers {
            w.set_capture(views.iter().cloned());
        }
    }

    fn take_captured(&mut self) -> CaptureBatch {
        let views = self.capture_views.clone();
        let driver_log = self.driver.take_captured();
        let worker_logs: Vec<_> = self.workers.iter_mut().map(|w| w.take_captured()).collect();
        let assembled = assemble_views(
            &views,
            |name| self.dplan.location(name),
            driver_log,
            worker_logs,
        );
        CaptureBatch {
            watermark: self.totals.batches as u64,
            resync: false,
            views: assembled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use crate::partition::PartitioningSpec;
    use crate::program::{compile_distributed, OptLevel};
    use hotdog_algebra::expr::*;
    use hotdog_algebra::tuple;
    use hotdog_ivm::compile_recursive;

    fn make_cluster(workers: usize) -> Cluster {
        let q = sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"])));
        let plan = compile_recursive("Q", &q);
        let spec = PartitioningSpec::heuristic(&plan, &["A"]);
        let dplan = compile_distributed(&plan, &spec, OptLevel::O3);
        Cluster::new(dplan, ClusterConfig::with_workers(workers))
    }

    fn batches() -> Vec<Vec<(&'static str, Relation)>> {
        vec![
            vec![
                (
                    "R",
                    Relation::from_pairs(
                        Schema::new(["A", "B"]),
                        (0..12i64).map(|i| (tuple![i, i % 4], 1.0)),
                    ),
                ),
                (
                    "S",
                    Relation::from_pairs(
                        Schema::new(["B", "C"]),
                        (0..8i64).map(|i| (tuple![i % 4, i], 1.0)),
                    ),
                ),
            ],
            vec![(
                "R",
                Relation::from_pairs(
                    Schema::new(["A", "B"]),
                    vec![(tuple![1, 1], -1.0), (tuple![50, 2], 1.0)],
                ),
            )],
        ]
    }

    #[test]
    fn accumulated_captures_reconstruct_view_contents_bit_for_bit() {
        let mut cluster = make_cluster(3);
        let top = cluster.plan().plan.top_view.clone();
        let schema = cluster.plan().schema_of(&top).unwrap_or_default();
        cluster.enable_capture(std::slice::from_ref(&top));
        let mut acc = ViewAccumulator::new(schema);
        for batch in batches() {
            for (rel, delta) in &batch {
                cluster.apply_batch(rel, delta);
            }
            let captured = cluster.take_captured();
            assert_eq!(captured.views.len(), 1);
            acc.apply(&captured.views[0], captured.resync);
        }
        let expected = cluster.view_contents(&top);
        assert_eq!(
            acc.contents().checksum(),
            expected.checksum(),
            "replayed capture log must be bit-identical to view_contents"
        );
    }

    #[test]
    fn capture_disabled_logs_nothing() {
        let mut cluster = make_cluster(2);
        for batch in batches() {
            for (rel, delta) in &batch {
                cluster.apply_batch(rel, delta);
            }
        }
        let captured = cluster.take_captured();
        assert!(captured.views.is_empty());
        assert_eq!(captured.watermark, 3);
    }
}
