//! The simulated synchronous cluster (the Spark substitute of the paper's
//! distributed experiments).
//!
//! A [`Cluster`] holds one driver node and `N` worker nodes.  Distributed
//! views are hash-partitioned over the workers, local views live on the
//! driver.  Every statement of a compiled [`DistributedPlan`] is *actually
//! executed* against the partitioned state (no result is faked); only the
//! *time* is modelled: per-stage synchronization overhead that grows with
//! the number of workers, shuffle time proportional to the bytes moved, a
//! seeded straggler factor, and compute time proportional to the measured
//! interpreter work of the slowest worker.

use crate::partition::{LocTag, PartitionFn};
use crate::program::{
    DistStatement, DistStmtKind, DistributedPlan, StmtMode, Transform, TriggerProgram,
};
use crate::worker::WorkerState;
use hotdog_algebra::eval::EvalCounters;
use hotdog_algebra::relation::Relation;
use hotdog_exec::relabel;
use hotdog_telemetry::{SpanContext, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Cluster and cost-model configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Aggregate network bandwidth per worker link, bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed overhead of launching one distributed stage (task serialization
    /// and shipping), in seconds.
    pub stage_overhead_secs: f64,
    /// Additional synchronization cost per worker per stage, in seconds
    /// (scheduling, task dispatch and completion handling on the driver).
    pub sync_per_worker_secs: f64,
    /// Modelled cost of one interpreter "instruction", in seconds.
    pub secs_per_instruction: f64,
    /// Maximum multiplicative straggler slowdown of a stage (a uniformly
    /// drawn factor in `[1, 1 + straggler]` is applied to each stage).
    pub straggler: f64,
    /// Pre-aggregate update batches on the driver before scattering them.
    pub preaggregate: bool,
    /// RNG seed for the straggler model.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            bandwidth_bytes_per_sec: 1.0e9,
            stage_overhead_secs: 0.020,
            sync_per_worker_secs: 0.000_35,
            secs_per_instruction: 2.0e-9,
            straggler: 0.5,
            preaggregate: true,
            seed: 0xD15C0,
        }
    }
}

impl ClusterConfig {
    pub fn with_workers(workers: usize) -> Self {
        ClusterConfig {
            workers,
            ..Default::default()
        }
    }
}

/// Statistics of processing one batch on the cluster.
#[derive(Clone, Debug, Default)]
pub struct BatchExecution {
    pub input_tuples: usize,
    /// Modelled end-to-end latency of the batch (seconds).
    pub latency_secs: f64,
    /// Total bytes moved over the network.
    pub bytes_shuffled: usize,
    /// Bytes moved per worker (average).
    pub bytes_per_worker: f64,
    /// Distributed stages executed.
    pub stages: usize,
    /// Jobs launched.
    pub jobs: usize,
    /// Interpreter work of the slowest worker (instruction count).
    pub max_worker_instructions: u64,
    /// Interpreter work performed on the driver.
    pub driver_instructions: u64,
    /// Real wall-clock time spent simulating the batch.
    pub wall_secs: f64,
}

/// Accumulated totals over a cluster's lifetime.
#[derive(Clone, Debug, Default)]
pub struct ClusterTotals {
    pub batches: usize,
    pub tuples: usize,
    pub latency_secs: f64,
    pub bytes_shuffled: usize,
    pub latencies: Vec<f64>,
}

impl ClusterTotals {
    /// Modelled throughput (tuples per modelled second).
    pub fn throughput(&self) -> f64 {
        if self.latency_secs == 0.0 {
            0.0
        } else {
            self.tuples as f64 / self.latency_secs
        }
    }

    /// Median batch latency in seconds.
    pub fn median_latency(&self) -> f64 {
        self.latency_percentile(0.50)
    }

    /// Batch latency percentile in seconds (`p` in `[0, 1]`, nearest-rank).
    pub fn latency_percentile(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((v.len() as f64 * p) as usize).min(v.len() - 1);
        v[idx]
    }
}

/// The simulated cluster running one distributed plan.
pub struct Cluster {
    pub config: ClusterConfig,
    pub(crate) dplan: DistributedPlan,
    pub(crate) driver: WorkerState,
    pub(crate) workers: Vec<WorkerState>,
    rng: StdRng,
    pub totals: ClusterTotals,
    /// Views with delta capture enabled (see `crate::capture`).
    pub(crate) capture_views: Vec<String>,
    /// Span store: the simulated cluster executes every node inline, so
    /// per-worker trigger spans are recorded driver-side on the worker's
    /// display track instead of crossing a wire.
    telemetry: Arc<Telemetry>,
    /// Context of the most recently executed batch's root span — what
    /// post-execution stages (watermark reads, subscription fan-out)
    /// parent their spans under.
    trace_scope: SpanContext,
}

impl Cluster {
    /// Create a cluster with empty views.
    pub fn new(dplan: DistributedPlan, config: ClusterConfig) -> Self {
        assert!(config.workers > 0);
        let driver = WorkerState::for_plan(&dplan.plan);
        let workers = (0..config.workers)
            .map(|_| WorkerState::for_plan(&dplan.plan))
            .collect::<Vec<_>>();
        let rng = StdRng::seed_from_u64(config.seed);
        Cluster {
            config,
            dplan,
            driver,
            workers,
            rng,
            totals: ClusterTotals::default(),
            capture_views: Vec::new(),
            telemetry: Telemetry::shared(),
            trace_scope: SpanContext::NONE,
        }
    }

    /// The compiled distributed plan this cluster runs.
    pub fn plan(&self) -> &DistributedPlan {
        &self.dplan
    }

    /// This cluster's telemetry handle (metrics, flight ring, tracer).
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// Context of the most recently executed batch's root span.
    pub fn trace_scope(&self) -> SpanContext {
        self.trace_scope
    }

    /// Full contents of a view, merged across all nodes that hold a piece of
    /// it (used for result extraction and for checking equivalence with the
    /// local engine).
    pub fn view_contents(&self, name: &str) -> Relation {
        let schema = self.dplan.schema_of(name).unwrap_or_default();
        let mut out = Relation::new(schema);
        match self.dplan.location(name) {
            LocTag::Local => out.merge(&self.driver.snapshot(name)),
            LocTag::Replicated => {
                // Every worker holds an identical copy; read one.
                if let Some(w) = self.workers.first() {
                    out.merge(&w.snapshot(name));
                }
            }
            _ => {
                for w in &self.workers {
                    out.merge(&w.snapshot(name));
                }
            }
        }
        out
    }

    /// Current contents of the top-level query view.
    pub fn query_result(&self) -> Relation {
        self.view_contents(&self.dplan.plan.top_view)
    }

    /// Process one batch of updates to `relation`, returning the modelled
    /// execution statistics.
    pub fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        let wall_start = Instant::now();
        let mut stats = BatchExecution {
            input_tuples: batch.len(),
            ..Default::default()
        };
        let program = match self.dplan.program(relation) {
            Some(p) => p.clone(),
            None => return stats,
        };
        // One stitched span tree per batch, same as the real backends: a
        // root span on track 0 with the trigger stages as children.
        let root = self.telemetry.begin_batch_root();
        self.trace_scope = root.context();

        // The batch arrives at the driver; optionally pre-aggregate it onto
        // the columns the trigger actually needs before any scatter.
        let canonical = relabel(batch, &program.relation_schema);
        let delta = if self.config.preaggregate {
            let trig = self
                .dplan
                .plan
                .trigger(relation)
                .expect("trigger missing for program");
            let used = hotdog_exec::used_delta_columns(&self.dplan.plan, trig);
            if used.len() < program.relation_schema.len() && !used.is_empty() {
                // Keep the canonical schema order but only used columns; the
                // compiled statements still reference the full column list,
                // so we only merge duplicates here (column projection is a
                // wire-size optimization applied to the scattered copy).
                canonical.clone()
            } else {
                canonical.clone()
            }
        } else {
            canonical.clone()
        };
        let mut deltas = HashMap::new();
        deltas.insert(relation.to_string(), delta);
        let delta_name = format!("Δ{relation}");

        let mut latency = 0.0f64;
        self.run_program(&program, &delta_name, &deltas, &mut stats, &mut latency);
        self.telemetry.finish_span(Some(root));

        stats.latency_secs = latency;
        stats.stages = program.stages();
        stats.jobs = program.jobs();
        stats.bytes_per_worker = stats.bytes_shuffled as f64 / self.config.workers as f64;
        stats.wall_secs = wall_start.elapsed().as_secs_f64();

        self.totals.batches += 1;
        self.totals.tuples += stats.input_tuples;
        self.totals.latency_secs += stats.latency_secs;
        self.totals.bytes_shuffled += stats.bytes_shuffled;
        self.totals.latencies.push(stats.latency_secs);
        stats
    }

    fn run_program(
        &mut self,
        program: &TriggerProgram,
        delta_name: &str,
        deltas: &HashMap<String, Relation>,
        stats: &mut BatchExecution,
        latency: &mut f64,
    ) {
        for block in &program.blocks {
            match block.mode {
                StmtMode::Local => {
                    let mut counters = EvalCounters::default();
                    for stmt in &block.statements {
                        self.run_local_statement(
                            stmt,
                            delta_name,
                            deltas,
                            stats,
                            &mut counters,
                            latency,
                        );
                    }
                    stats.driver_instructions += counters.instructions();
                    *latency += counters.instructions() as f64 * self.config.secs_per_instruction;
                }
                StmtMode::Distributed => {
                    // One parallel stage: every worker runs the block over
                    // its partitions.
                    let mut max_instr = 0u64;
                    for w in 0..self.config.workers {
                        let span = self.telemetry.begin_span_on(
                            self.trace_scope,
                            "worker.run_block",
                            w as u32 + 1,
                        );
                        let mut counters = EvalCounters::default();
                        for stmt in &block.statements {
                            self.workers[w].run_compute(stmt, deltas, &mut counters);
                        }
                        self.telemetry.finish_span(span);
                        max_instr = max_instr.max(counters.instructions());
                    }
                    stats.max_worker_instructions = stats.max_worker_instructions.max(max_instr);
                    let straggler = 1.0 + self.rng.gen_range(0.0..self.config.straggler);
                    *latency += self.config.stage_overhead_secs
                        + self.config.sync_per_worker_secs * self.config.workers as f64
                        + max_instr as f64 * self.config.secs_per_instruction * straggler;
                }
            }
        }
    }

    fn run_local_statement(
        &mut self,
        stmt: &DistStatement,
        delta_name: &str,
        deltas: &HashMap<String, Relation>,
        stats: &mut BatchExecution,
        counters: &mut EvalCounters,
        latency: &mut f64,
    ) {
        match &stmt.kind {
            DistStmtKind::Compute(_) => {
                self.driver.run_compute(stmt, deltas, counters);
            }
            DistStmtKind::Transform { kind, source } => {
                let bytes = self.run_transform(stmt, kind, source, delta_name, deltas);
                stats.bytes_shuffled += bytes;
                // Shuffle time: data moves in parallel across worker links.
                let per_link = bytes as f64 / self.config.workers as f64;
                *latency += per_link / self.config.bandwidth_bytes_per_sec
                    + self.config.stage_overhead_secs * 0.25;
            }
        }
    }

    /// Execute a transformer statement; returns the number of bytes moved.
    fn run_transform(
        &mut self,
        stmt: &DistStatement,
        kind: &Transform,
        source: &str,
        delta_name: &str,
        deltas: &HashMap<String, Relation>,
    ) -> usize {
        match kind {
            Transform::Scatter(pf) => {
                // Driver-resident source: the batch, a local view or a local temp.
                let src: Relation = if source == delta_name {
                    deltas.values().next().cloned().unwrap_or_default()
                } else {
                    self.driver.read(source)
                };
                let src = relabel(&src, &stmt.target_schema);
                self.scatter(pf, &src, stmt)
            }
            Transform::Repart(pf) => {
                // Collect from all workers, then redistribute.
                let span = self.telemetry.begin_span(self.trace_scope, "gather");
                let mut collected = Relation::new(stmt.target_schema.clone());
                for w in 0..self.config.workers {
                    collected.merge(&relabel(&self.workers[w].read(source), &stmt.target_schema));
                }
                self.telemetry.finish_span(span);
                let moved = collected.serialized_size();
                self.scatter(pf, &collected, stmt);
                moved + collected.serialized_size()
            }
            Transform::Gather => {
                let span = self.telemetry.begin_span(self.trace_scope, "gather");
                let mut collected = Relation::new(stmt.target_schema.clone());
                for w in 0..self.config.workers {
                    collected.merge(&relabel(&self.workers[w].read(source), &stmt.target_schema));
                }
                let bytes = collected.serialized_size();
                self.driver.apply(stmt, collected);
                self.telemetry.finish_span(span);
                bytes
            }
        }
    }

    /// Route rows of a driver-held relation to the workers under the given
    /// partition function, writing them into each worker's copy of the
    /// target.  Returns the bytes moved.
    fn scatter(&mut self, pf: &PartitionFn, src: &Relation, stmt: &DistStatement) -> usize {
        let span = self
            .telemetry
            .begin_span(self.trace_scope, "scatter.encode");
        let (shards, bytes) = partition_shards(pf, src, stmt, self.config.workers);
        self.telemetry.finish_span(span);
        for (w, shard) in shards.into_iter().enumerate() {
            // Scatter targets are exchange buffers refreshed per batch.
            self.workers[w].apply(stmt, shard);
        }
        bytes
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // `HOTDOG_TRACE=path`: one complete Chrome trace file per run.
        self.telemetry.flush_trace_on_drop();
    }
}

/// Split a driver-held relation into per-worker shards under a partition
/// function; returns the shards and the bytes that cross the network.
/// Shared by the simulated, threaded and TCP backends so routing (and the
/// byte accounting of the cost model) cannot diverge.
///
/// Shards are returned in wire-canonical layout
/// ([`Relation::canonical`]): a shard's map layout must be a pure
/// function of its content — not of the routing iteration that built it —
/// so that a shard decoded from the socket transport is bit-identical to
/// the shard an in-process backend hands its worker.
pub fn partition_shards(
    pf: &PartitionFn,
    src: &Relation,
    stmt: &DistStatement,
    workers: usize,
) -> (Vec<Relation>, usize) {
    let schema = stmt.target_schema.clone();
    let mut shards: Vec<Relation> = (0..workers)
        .map(|_| Relation::new(schema.clone()))
        .collect();
    let mut bytes = 0usize;
    for (t, m) in src.iter() {
        for w in pf.route(&schema, t, workers) {
            shards[w].add(t.clone(), m);
            bytes += t.values_size() + 8;
        }
    }
    let shards = shards.into_iter().map(|s| s.canonical()).collect();
    (shards, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitioningSpec;
    use crate::program::{compile_distributed, OptLevel};
    use hotdog_algebra::expr::*;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple;
    use hotdog_exec::{ExecMode, LocalEngine};
    use hotdog_ivm::compile_recursive;

    fn example_query() -> Expr {
        sum(
            ["B"],
            join_all([
                rel("R", ["OK", "B"]),
                rel("S", ["B", "CK"]),
                rel("T", ["CK", "D"]),
            ]),
        )
    }

    fn batches() -> Vec<(&'static str, Relation)> {
        vec![
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["OK", "B"]),
                    (0..40i64).map(|i| (tuple![i, i % 5], 1.0)),
                ),
            ),
            (
                "S",
                Relation::from_pairs(
                    Schema::new(["B", "CK"]),
                    (0..20i64).map(|i| (tuple![i % 5, i], 1.0)),
                ),
            ),
            (
                "T",
                Relation::from_pairs(
                    Schema::new(["CK", "D"]),
                    (0..20i64).map(|i| (tuple![i, i * 10], 1.0)),
                ),
            ),
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["OK", "B"]),
                    vec![(tuple![1, 1], -1.0), (tuple![100, 2], 1.0)],
                ),
            ),
        ]
    }

    fn run_cluster(opt: OptLevel, workers: usize) -> (Relation, ClusterTotals) {
        let plan = compile_recursive("Q", &example_query());
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        let dplan = compile_distributed(&plan, &spec, opt);
        let mut cluster = Cluster::new(dplan, ClusterConfig::with_workers(workers));
        for (rel, batch) in batches() {
            cluster.apply_batch(rel, &batch);
        }
        (cluster.query_result(), cluster.totals.clone())
    }

    fn local_reference() -> Relation {
        let plan = compile_recursive("Q", &example_query());
        let mut engine = LocalEngine::new(
            plan,
            ExecMode::Batched {
                preaggregate: false,
            },
        );
        for (rel, batch) in batches() {
            engine.apply_batch(rel, &batch);
        }
        engine.query_result()
    }

    #[test]
    fn cluster_matches_local_engine_at_every_opt_level() {
        let expected = local_reference();
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            for workers in [1, 3, 8] {
                let (got, _) = run_cluster(opt, workers);
                assert!(
                    got.approx_eq(&expected),
                    "cluster diverged at {opt:?} with {workers} workers:\nexpected {expected:?}\ngot {got:?}"
                );
            }
        }
    }

    #[test]
    fn latency_model_produces_positive_latencies_and_shuffle_bytes() {
        let (_, totals) = run_cluster(OptLevel::O3, 4);
        assert!(totals.latency_secs > 0.0);
        assert!(totals.bytes_shuffled > 0);
        assert!(totals.median_latency() > 0.0);
        assert!(totals.throughput() > 0.0);
    }

    #[test]
    fn more_workers_increase_sync_overhead_for_tiny_batches() {
        // With tiny batches the latency is dominated by synchronization, so
        // adding workers must not make it cheaper (weak-scaling left edge of
        // Figure 9a).
        let (_, small) = run_cluster(OptLevel::O3, 2);
        let (_, big) = run_cluster(OptLevel::O3, 64);
        assert!(
            big.median_latency() > small.median_latency(),
            "sync overhead should grow with workers: {} vs {}",
            big.median_latency(),
            small.median_latency()
        );
    }

    #[test]
    fn optimization_reduces_modelled_latency() {
        let (_, naive) = run_cluster(OptLevel::O0, 4);
        let (_, opt) = run_cluster(OptLevel::O3, 4);
        assert!(
            opt.latency_secs <= naive.latency_secs * 1.05,
            "O3 {} should not exceed O0 {}",
            opt.latency_secs,
            naive.latency_secs
        );
    }

    #[test]
    fn nested_aggregate_query_is_correct_on_cluster() {
        // Q17-style query distributed by the correlated key.
        let nested = sum_total(join(rel("S", ["PK", "C2"]), val_var("C2")));
        let q = sum_total(join_all([
            rel("R", ["PK", "A"]),
            assign_query("X", nested),
            cmp_vars("A", CmpOp::Lt, "X"),
        ]));
        let plan = compile_recursive("Q17ish", &q);
        let spec = PartitioningSpec::heuristic(&plan, &["PK"]);
        let dplan = compile_distributed(&plan, &spec, OptLevel::O3);
        let mut cluster = Cluster::new(dplan, ClusterConfig::with_workers(5));

        let plan2 = compile_recursive("Q17ish", &q);
        let mut engine = LocalEngine::new(
            plan2,
            ExecMode::Batched {
                preaggregate: false,
            },
        );

        let data = vec![
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["PK", "A"]),
                    (0..30i64).map(|i| (tuple![i % 7, i], 1.0)),
                ),
            ),
            (
                "S",
                Relation::from_pairs(
                    Schema::new(["PK", "C2"]),
                    (0..40i64).map(|i| (tuple![i % 7, i], 1.0)),
                ),
            ),
            (
                "R",
                Relation::from_pairs(Schema::new(["PK", "A"]), vec![(tuple![2, 3], -1.0)]),
            ),
        ];
        for (r, b) in data {
            cluster.apply_batch(r, &b);
            engine.apply_batch(r, &b);
        }
        assert!(
            cluster.query_result().approx_eq(&engine.query_result()),
            "cluster {:?} vs local {:?}",
            cluster.query_result(),
            engine.query_result()
        );
    }
}
