//! # hotdog-distributed
//!
//! Distributed incremental view maintenance (Section 4 of the paper):
//!
//! * [`partition`] — location tags (`Local`, `Dist(P)`, `Random`,
//!   `Replicated`), partitioning functions and the per-view partitioning
//!   specification (including the paper's key-based heuristic);
//! * [`program`] — the compiler that turns a local maintenance plan into a
//!   distributed program: location annotation, transformer insertion
//!   (`Scatter`/`Repart`/`Gather`), intra-statement optimization, CSE/DCE
//!   and the block-fusion algorithm, staged behind [`program::OptLevel`]
//!   (O0–O3, matching Figure 13);
//! * [`cluster`] — the simulated synchronous driver/worker cluster that
//!   executes the distributed programs over real partitioned state and
//!   models latency (per-stage synchronization, shuffle bandwidth,
//!   stragglers).

#![forbid(unsafe_code)]

pub mod cluster;
pub mod partition;
pub mod program;

pub use cluster::{BatchExecution, Cluster, ClusterConfig, ClusterTotals};
pub use partition::{LocTag, PartitionFn, PartitioningSpec};
pub use program::{
    compile_distributed, Block, DistStatement, DistStmtKind, DistributedPlan, OptLevel,
    StmtMode, Transform, TriggerProgram,
};
