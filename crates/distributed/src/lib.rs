//! # hotdog-distributed
//!
//! Distributed incremental view maintenance (Section 4 of the paper):
//!
//! * [`partition`] — location tags (`Local`, `Dist(P)`, `Random`,
//!   `Replicated`), partitioning functions and the per-view partitioning
//!   specification (including the paper's key-based heuristic);
//! * [`program`] — the compiler that turns a local maintenance plan into a
//!   distributed program: location annotation, transformer insertion
//!   (`Scatter`/`Repart`/`Gather`), intra-statement optimization, CSE/DCE
//!   and the block-fusion algorithm, staged behind [`program::OptLevel`]
//!   (O0–O3, matching Figure 13);
//! * [`protocol`] — the driver↔worker message set (FIFO commands,
//!   id-tagged replies) and the per-node request interpreter shared by the
//!   thread-channel transport (`hotdog-runtime`) and the TCP transport
//!   (`hotdog-net`);
//! * [`worker`] — backend-agnostic per-node state ([`worker::WorkerState`]):
//!   one node's view partitions, exchange buffers and the statement
//!   execution/application rules shared by every execution backend;
//! * [`cluster`] — the simulated synchronous driver/worker cluster that
//!   executes the distributed programs over real partitioned state and
//!   models latency (per-stage synchronization, shuffle bandwidth,
//!   stragglers).  The real thread-per-worker backend lives in the
//!   `hotdog-runtime` crate and runs the same programs over the same
//!   [`worker::WorkerState`] machinery;
//! * [`backend`] — the [`Backend`] trait shared by every execution backend
//!   (simulated, synchronous-threaded, pipelined), so benches and
//!   differential tests are written once.

#![forbid(unsafe_code)]

pub mod backend;
pub mod capture;
pub mod cluster;
pub mod partition;
pub mod program;
pub mod protocol;
pub mod worker;

pub use backend::{Backend, PipelineStats};
pub use capture::{assemble_views, CaptureBatch, CapturedView, DeltaCapture, ViewAccumulator};
pub use cluster::{partition_shards, BatchExecution, Cluster, ClusterConfig, ClusterTotals};
pub use partition::{LocTag, PartitionFn, PartitioningSpec};
pub use program::{
    compile_distributed, Block, DistStatement, DistStmtKind, DistributedPlan, OptLevel, StmtMode,
    Transform, TriggerProgram,
};
pub use protocol::{handle_request, WorkerReply, WorkerRequest};
pub use worker::{
    NodeCatalog, Temps, WorkerSnapshot, WorkerState, WorkerStats, WorkerStatsSnapshot,
};
