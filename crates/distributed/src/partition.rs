//! Location tags and partitioning information (Section 4.2).
//!
//! Every materialized view is either *local* (stored on the driver),
//! *distributed* (hash-partitioned over the workers by a set of key
//! columns), or *randomly distributed* (spread over the workers with no
//! known key — the tag produced by partial aggregation).  Update batches
//! (delta relations) enter the system at the driver and are therefore
//! local until explicitly scattered.

use hotdog_algebra::schema::Schema;
use hotdog_algebra::tuple::Tuple;
use hotdog_ivm::MaintenancePlan;
use std::collections::HashMap;
use std::fmt;

/// A partitioning function: hash of the named key columns modulo the number
/// of workers, or replication to every worker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PartitionFn {
    /// Hash-partition by the values of these columns (resolved by name
    /// against the relation's schema).
    ByColumns(Vec<String>),
    /// Replicate to all workers (used to broadcast small pre-aggregated
    /// deltas that must join with differently-partitioned state).
    Replicate,
}

impl PartitionFn {
    pub fn by(cols: impl IntoIterator<Item = impl Into<String>>) -> Self {
        PartitionFn::ByColumns(cols.into_iter().map(Into::into).collect())
    }

    /// Worker(s) that should receive a tuple under this partitioning.
    pub fn route(&self, schema: &Schema, tuple: &Tuple, workers: usize) -> Vec<usize> {
        match self {
            PartitionFn::Replicate => (0..workers).collect(),
            PartitionFn::ByColumns(cols) => {
                let mut h: i64 = 1469598103934665603u64 as i64;
                for c in cols {
                    let v = schema
                        .position(c)
                        .map(|i| tuple.get(i).as_i64())
                        .unwrap_or(0);
                    h ^= v;
                    h = h.wrapping_mul(1099511628211);
                }
                vec![(h.unsigned_abs() as usize) % workers]
            }
        }
    }

    pub fn columns(&self) -> &[String] {
        match self {
            PartitionFn::ByColumns(c) => c,
            PartitionFn::Replicate => &[],
        }
    }
}

impl fmt::Display for PartitionFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionFn::ByColumns(c) => write!(f, "[{}]", c.join(", ")),
            PartitionFn::Replicate => write!(f, "[*]"),
        }
    }
}

/// Location tag of a relation or (sub)expression result.
#[derive(Clone, PartialEq, Debug)]
pub enum LocTag {
    /// Stored/evaluated on the driver.
    Local,
    /// Partitioned over the workers by the given function.
    Dist(PartitionFn),
    /// Spread over the workers with no exploitable partitioning key.
    Random,
    /// Fully replicated on every worker (broadcast state).
    Replicated,
}

impl LocTag {
    pub fn is_distributed(&self) -> bool {
        !matches!(self, LocTag::Local)
    }
}

impl fmt::Display for LocTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocTag::Local => write!(f, "Local"),
            LocTag::Dist(p) => write!(f, "Dist{p}"),
            LocTag::Random => write!(f, "Random"),
            LocTag::Replicated => write!(f, "Replicated"),
        }
    }
}

/// The partitioning specification of a maintenance plan: a location tag per
/// materialized view.
#[derive(Clone, Debug, Default)]
pub struct PartitioningSpec {
    tags: HashMap<String, LocTag>,
}

impl PartitioningSpec {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, view: impl Into<String>, tag: LocTag) {
        self.tags.insert(view.into(), tag);
    }

    /// Tag of a view (defaults to `Local` for unknown names, which is the
    /// right behaviour for the driver-resident delta buffers).
    pub fn tag(&self, view: &str) -> LocTag {
        self.tags.get(view).cloned().unwrap_or(LocTag::Local)
    }

    pub fn views(&self) -> impl Iterator<Item = (&String, &LocTag)> {
        self.tags.iter()
    }

    /// The paper's partitioning heuristic (Section 6.2): partition each
    /// materialized view on the highest-cardinality base-table key column
    /// appearing in its schema; views without any such key (typically small
    /// top-level aggregates) stay on the driver.
    ///
    /// `ranked_keys` lists candidate key columns in decreasing cardinality
    /// order, using the variable names of the query (e.g. `["OK", "CK"]`).
    pub fn heuristic(plan: &MaintenancePlan, ranked_keys: &[&str]) -> Self {
        let mut spec = PartitioningSpec::new();
        for v in &plan.views {
            let chosen = ranked_keys.iter().find(|k| v.schema.contains(k));
            match chosen {
                Some(k) => spec.set(&v.name, LocTag::Dist(PartitionFn::by([*k]))),
                None => spec.set(&v.name, LocTag::Local),
            }
        }
        spec
    }

    /// Number of distributed views in the spec.
    pub fn distributed_count(&self) -> usize {
        self.tags.values().filter(|t| t.is_distributed()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;
    use hotdog_algebra::tuple;
    use hotdog_ivm::compile_recursive;

    #[test]
    fn route_is_deterministic_and_in_range() {
        let schema = Schema::new(["a", "b"]);
        let p = PartitionFn::by(["b"]);
        for i in 0..50i64 {
            let t = tuple![i, i % 7];
            let w = p.route(&schema, &t, 10);
            assert_eq!(w, p.route(&schema, &t, 10));
            assert_eq!(w.len(), 1);
            assert!(w[0] < 10);
        }
        // Same key column value -> same worker.
        assert_eq!(
            p.route(&schema, &tuple![1, 3], 10),
            p.route(&schema, &tuple![2, 3], 10)
        );
    }

    #[test]
    fn replicate_routes_to_all_workers() {
        let schema = Schema::new(["a"]);
        assert_eq!(
            PartitionFn::Replicate.route(&schema, &tuple![1], 4),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn heuristic_partitions_views_with_keys_and_keeps_aggregates_local() {
        let q = sum(
            ["B"],
            join_all([
                rel("R", ["OK", "B"]),
                rel("S", ["B", "C"]),
                rel("T", ["C", "D"]),
            ]),
        );
        let plan = compile_recursive("Q", &q);
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "C"]);
        // The top view Q(B) has no key column -> local.
        assert_eq!(spec.tag("Q"), LocTag::Local);
        // At least one auxiliary view contains OK or C and is distributed.
        assert!(spec.distributed_count() >= 1);
        // Unknown names default to local.
        assert_eq!(spec.tag("NOPE"), LocTag::Local);
    }

    #[test]
    fn partitions_spread_keys_across_workers() {
        let schema = Schema::new(["k"]);
        let p = PartitionFn::by(["k"]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200i64 {
            seen.insert(p.route(&schema, &tuple![i], 8)[0]);
        }
        assert!(seen.len() >= 6, "keys badly skewed: {seen:?}");
    }
}
