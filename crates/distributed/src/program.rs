//! Compilation of local maintenance programs into distributed programs
//! (Section 4): location annotation, insertion of location transformers
//! (`Scatter`, `Repart`, `Gather`), intra-statement optimization (choosing
//! the execution partitioning that minimizes communication rounds),
//! single-transformer form, CSE/DCE of transformer statements, and the
//! block fusion algorithm of Appendix C.3.

use crate::partition::{LocTag, PartitionFn, PartitioningSpec};
use hotdog_algebra::expr::{Expr, RelKind, RelRef};
use hotdog_algebra::schema::Schema;
use hotdog_ivm::{MaintenancePlan, StmtOp};
use std::collections::HashMap;
use std::fmt;

/// Optimization levels of the distributed compiler, matching the staged
/// evaluation of Figure 13.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum OptLevel {
    /// Naive well-formed program: no simplifications, one block per
    /// statement, no sharing of transformer outputs.
    O0,
    /// + transformer simplification rules (choose the execution partitioning
    ///   that avoids redundant Repart/Gather rounds).
    O1,
    /// + block fusion (merge commuting statements into compound blocks).
    O2,
    /// + common subexpression and dead code elimination across transformer
    ///   statements.
    O3,
}

impl OptLevel {
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::O0 => "O0 (naive)",
            OptLevel::O1 => "O1 (+simplifications)",
            OptLevel::O2 => "O2 (+block fusion)",
            OptLevel::O3 => "O3 (+CSE/DCE)",
        }
    }
}

/// Where a statement executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StmtMode {
    /// On the driver.
    Local,
    /// On every worker, over its partitions.
    Distributed,
}

/// A network transformer (the only mechanism for moving data).
#[derive(Clone, PartialEq, Debug)]
pub enum Transform {
    /// Partition driver-resident data over the workers.
    Scatter(PartitionFn),
    /// Re-partition worker-resident data.
    Repart(PartitionFn),
    /// Collect worker-resident data at the driver.
    Gather,
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::Scatter(p) => write!(f, "SCATTER<{p}>"),
            Transform::Repart(p) => write!(f, "REPARTITION<{p}>"),
            Transform::Gather => write!(f, "GATHER"),
        }
    }
}

/// The body of a distributed statement.
#[derive(Clone, Debug)]
pub enum DistStmtKind {
    /// Evaluate an algebra expression (locally or on every worker).
    Compute(Expr),
    /// Move the named relation across the network.
    Transform { kind: Transform, source: String },
}

/// One statement of a distributed maintenance program.
#[derive(Clone, Debug)]
pub struct DistStatement {
    pub target: String,
    pub target_schema: Schema,
    pub op: StmtOp,
    pub kind: DistStmtKind,
    pub mode: StmtMode,
}

impl DistStatement {
    /// Relation names this statement reads.
    pub fn reads(&self) -> Vec<String> {
        match &self.kind {
            DistStmtKind::Compute(e) => e.relations().into_iter().map(|r| r.name).collect(),
            DistStmtKind::Transform { source, .. } => vec![source.clone()],
        }
    }

    /// Whether this statement is a location transformer.
    pub fn is_transformer(&self) -> bool {
        matches!(self.kind, DistStmtKind::Transform { .. })
    }
}

impl fmt::Display for DistStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = match self.mode {
            StmtMode::Local => "LOCAL",
            StmtMode::Distributed => "DISTRIBUTED",
        };
        let op = match self.op {
            StmtOp::AddTo => "+=",
            StmtOp::SetTo => ":=",
        };
        match &self.kind {
            DistStmtKind::Compute(e) => write!(f, "{mode} {} {op} {e}", self.target),
            DistStmtKind::Transform { kind, source } => {
                write!(f, "{mode} {} {op} {kind}{{ {source} }}", self.target)
            }
        }
    }
}

/// A block of statements with a common execution mode (the unit the driver
/// ships to the workers — one Spark stage per distributed block).
#[derive(Clone, Debug)]
pub struct Block {
    pub mode: StmtMode,
    pub statements: Vec<DistStatement>,
}

/// The distributed program of one trigger.
#[derive(Clone, Debug)]
pub struct TriggerProgram {
    pub relation: String,
    pub relation_schema: Schema,
    /// Fused statement blocks, in execution order.
    pub blocks: Vec<Block>,
}

impl TriggerProgram {
    pub fn statements(&self) -> impl Iterator<Item = &DistStatement> {
        self.blocks.iter().flat_map(|b| b.statements.iter())
    }

    /// Number of stages needed to process one batch: every distributed block
    /// is one parallel stage, and every worker-side shuffle (`Repart`) or
    /// collection (`Gather`) ends a stage as well — transformers are the
    /// pipeline breakers of Section 4.3.2.
    pub fn stages(&self) -> usize {
        let dist_blocks = self
            .blocks
            .iter()
            .filter(|b| b.mode == StmtMode::Distributed)
            .count();
        let shuffles = self
            .statements()
            .filter(|s| {
                matches!(
                    &s.kind,
                    DistStmtKind::Transform {
                        kind: Transform::Repart(_),
                        ..
                    } | DistStmtKind::Transform {
                        kind: Transform::Gather,
                        ..
                    }
                )
            })
            .count();
        dist_blocks + shuffles
    }

    /// Number of jobs = number of local→distributed transitions (the driver
    /// launches one job per maximal run of distributed work).
    pub fn jobs(&self) -> usize {
        let mut jobs = 0;
        let mut prev_local = true;
        for b in &self.blocks {
            match b.mode {
                StmtMode::Distributed => {
                    if prev_local {
                        jobs += 1;
                    }
                    prev_local = false;
                }
                StmtMode::Local => prev_local = true,
            }
        }
        jobs.max(1)
    }

    pub fn pretty(&self) -> String {
        let mut out = format!(
            "-- ON UPDATE {} ({} blocks)\n",
            self.relation,
            self.blocks.len()
        );
        for (i, b) in self.blocks.iter().enumerate() {
            out.push_str(&format!(
                "block {} [{}]\n",
                i,
                if b.mode == StmtMode::Local {
                    "local"
                } else {
                    "distributed"
                }
            ));
            for s in &b.statements {
                out.push_str(&format!("  {s}\n"));
            }
        }
        out
    }
}

/// A fully compiled distributed plan: the local plan, the partitioning
/// specification, the per-trigger programs, and the schemas/locations of the
/// temporary exchange views the programs introduce.
#[derive(Clone, Debug)]
pub struct DistributedPlan {
    pub plan: MaintenancePlan,
    pub spec: PartitioningSpec,
    pub opt: OptLevel,
    pub programs: Vec<TriggerProgram>,
    /// Temporary views created by the compiler: name -> (schema, location).
    pub temps: HashMap<String, (Schema, LocTag)>,
}

impl DistributedPlan {
    pub fn program(&self, relation: &str) -> Option<&TriggerProgram> {
        self.programs.iter().find(|p| p.relation == relation)
    }

    /// Location of any view or temp.
    pub fn location(&self, name: &str) -> LocTag {
        if let Some((_, tag)) = self.temps.get(name) {
            tag.clone()
        } else {
            self.spec.tag(name)
        }
    }

    /// Schema of any view or temp.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        if let Some((s, _)) = self.temps.get(name) {
            Some(s.clone())
        } else {
            self.plan.view(name).map(|v| v.schema.clone())
        }
    }

    /// Total jobs and stages needed to process one batch touching every
    /// relation once (the per-query complexity of Table 3).
    pub fn complexity(&self) -> (usize, usize) {
        let jobs = self.programs.iter().map(|p| p.jobs()).max().unwrap_or(0);
        let stages = self.programs.iter().map(|p| p.stages()).max().unwrap_or(0);
        (jobs, stages)
    }

    pub fn pretty(&self) -> String {
        let mut out = format!(
            "-- distributed plan `{}` [{}], {} programs\n",
            self.plan.query_name,
            self.opt.label(),
            self.programs.len()
        );
        for p in &self.programs {
            out.push_str(&p.pretty());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct Lowering<'a> {
    plan: &'a MaintenancePlan,
    spec: &'a PartitioningSpec,
    opt: OptLevel,
    temps: HashMap<String, (Schema, LocTag)>,
    temp_counter: usize,
}

/// Compile a local maintenance plan into a distributed program for the given
/// partitioning specification and optimization level.
pub fn compile_distributed(
    plan: &MaintenancePlan,
    spec: &PartitioningSpec,
    opt: OptLevel,
) -> DistributedPlan {
    let mut lowering = Lowering {
        plan,
        spec,
        opt,
        temps: HashMap::new(),
        temp_counter: 0,
    };
    let mut programs = Vec::new();
    for trigger in &plan.triggers {
        programs.push(lowering.lower_trigger(trigger));
    }
    DistributedPlan {
        plan: plan.clone(),
        spec: spec.clone(),
        opt,
        programs,
        temps: lowering.temps,
    }
}

impl Lowering<'_> {
    fn fresh_temp(&mut self, prefix: &str, schema: Schema, tag: LocTag) -> String {
        self.temp_counter += 1;
        let name = format!("{prefix}_{}", self.temp_counter);
        self.temps.insert(name.clone(), (schema, tag));
        name
    }

    fn lower_trigger(&mut self, trigger: &hotdog_ivm::Trigger) -> TriggerProgram {
        let mut statements: Vec<DistStatement> = Vec::new();
        // Cache of scatter/broadcast/repart temps created for this trigger
        // (used for CSE at O3; at lower levels every use gets its own copy).
        let mut scatter_cache: HashMap<String, String> = HashMap::new();

        for stmt in &trigger.statements {
            self.lower_statement(trigger, stmt, &mut statements, &mut scatter_cache);
        }

        if self.opt >= OptLevel::O3 {
            dead_code_elimination(&mut statements, self.plan);
        }

        // Promote every statement into its own block, then fuse.
        let mut blocks: Vec<Block> = statements
            .into_iter()
            .map(|s| Block {
                mode: s.mode,
                statements: vec![s],
            })
            .collect();
        if self.opt >= OptLevel::O2 {
            blocks = fuse_blocks(blocks);
        }
        TriggerProgram {
            relation: trigger.relation.clone(),
            relation_schema: trigger.relation_schema.clone(),
            blocks,
        }
    }

    /// Lower one maintenance statement into local/distributed statements and
    /// the transformer statements they need.
    fn lower_statement(
        &mut self,
        trigger: &hotdog_ivm::Trigger,
        stmt: &hotdog_ivm::Statement,
        out: &mut Vec<DistStatement>,
        scatter_cache: &mut HashMap<String, String>,
    ) {
        let target_tag = self.spec.tag(&stmt.target);
        let view_refs: Vec<RelRef> = stmt
            .expr
            .relations()
            .into_iter()
            .filter(|r| r.kind == RelKind::View)
            .collect();
        let uses_delta = stmt.expr.has_delta_relations();
        let dist_refs: Vec<(&RelRef, Vec<String>)> = view_refs
            .iter()
            .filter_map(|r| match self.spec.tag(&r.name) {
                LocTag::Dist(p) => Some((r, p.columns().to_vec())),
                _ => None,
            })
            .collect();

        // Purely local statement: local target, no distributed inputs and no
        // batch involvement.  Statements that consume the update batch are
        // always distributed — in the paper's setting the batch partitions
        // live on the workers, so even single-aggregate queries like Q6 run
        // one parallel stage of partial aggregation followed by a gather.
        if !target_tag.is_distributed() && dist_refs.is_empty() && !uses_delta {
            out.push(DistStatement {
                target: stmt.target.clone(),
                target_schema: stmt.target_schema.clone(),
                op: stmt.op,
                kind: DistStmtKind::Compute(stmt.expr.clone()),
                mode: StmtMode::Local,
            });
            return;
        }

        // Choose the execution partitioning.  The intra-statement
        // optimization (O1+) prefers the *target's* partitioning whenever
        // some input can be brought to it directly, avoiding a second
        // communication round on the result (Example 4.1); the naive O0
        // program always executes on the first input's partitioning and
        // re-partitions the result.
        let target_cols: Option<Vec<String>> = match &target_tag {
            LocTag::Dist(p) => Some(p.columns().to_vec()),
            _ => None,
        };
        // A partitioning key is usable if some distributed input already has
        // it, or the batch can be scattered by it.
        let delta_schema = &trigger.relation_schema;
        let key_usable = |cols: &Vec<String>| {
            dist_refs.iter().any(|(_, c)| c == cols)
                || (uses_delta && cols.iter().all(|c| delta_schema.contains(c)))
        };
        let exec_key: Vec<String> = if self.opt >= OptLevel::O1 {
            match &target_cols {
                Some(tc) if key_usable(tc) => tc.clone(),
                _ => dist_refs
                    .first()
                    .map(|(_, c)| c.clone())
                    .or_else(|| target_cols.clone())
                    .unwrap_or_default(),
            }
        } else {
            dist_refs
                .first()
                .map(|(_, c)| c.clone())
                .or_else(|| target_cols.clone())
                .unwrap_or_default()
        };

        // Prepare the inputs: re-partition or broadcast views that are not
        // aligned with the execution key, broadcast local views, scatter the
        // batch.
        let mut expr = stmt.expr.clone();
        let mut any_partitioned_input = false;
        for r in &view_refs {
            match self.spec.tag(&r.name) {
                LocTag::Dist(p) => {
                    if p.columns() == exec_key.as_slice() {
                        any_partitioned_input = true;
                        continue;
                    }
                    // Re-partition (or replicate when the key is not part of
                    // the view's schema).
                    let schema = self
                        .plan
                        .view(&r.name)
                        .map(|v| v.schema.clone())
                        .unwrap_or_default();
                    let pf = if exec_key.iter().all(|c| schema.contains(c)) && !exec_key.is_empty()
                    {
                        any_partitioned_input = true;
                        PartitionFn::by(exec_key.clone())
                    } else {
                        PartitionFn::Replicate
                    };
                    let cache_key = format!("repart:{}:{pf}", r.name);
                    let temp = if self.opt >= OptLevel::O3 {
                        scatter_cache.get(&cache_key).cloned()
                    } else {
                        None
                    };
                    let temp = match temp {
                        Some(t) => t,
                        None => {
                            let tag = match &pf {
                                PartitionFn::Replicate => LocTag::Replicated,
                                _ => LocTag::Dist(pf.clone()),
                            };
                            let t = self.fresh_temp("repartition", schema.clone(), tag);
                            out.push(DistStatement {
                                target: t.clone(),
                                target_schema: schema,
                                op: StmtOp::SetTo,
                                kind: DistStmtKind::Transform {
                                    kind: Transform::Repart(pf),
                                    source: r.name.clone(),
                                },
                                mode: StmtMode::Local,
                            });
                            scatter_cache.insert(cache_key, t.clone());
                            t
                        }
                    };
                    expr = rename_view(&expr, &r.name, &temp);
                }
                LocTag::Local => {
                    // Broadcast a driver-resident view so workers can read it.
                    let schema = self
                        .plan
                        .view(&r.name)
                        .map(|v| v.schema.clone())
                        .unwrap_or_default();
                    let cache_key = format!("bcast:{}", r.name);
                    let temp = if self.opt >= OptLevel::O3 {
                        scatter_cache.get(&cache_key).cloned()
                    } else {
                        None
                    };
                    let temp = match temp {
                        Some(t) => t,
                        None => {
                            let t =
                                self.fresh_temp("broadcast", schema.clone(), LocTag::Replicated);
                            out.push(DistStatement {
                                target: t.clone(),
                                target_schema: schema,
                                op: StmtOp::SetTo,
                                kind: DistStmtKind::Transform {
                                    kind: Transform::Scatter(PartitionFn::Replicate),
                                    source: r.name.clone(),
                                },
                                mode: StmtMode::Local,
                            });
                            scatter_cache.insert(cache_key, t.clone());
                            t
                        }
                    };
                    expr = rename_view(&expr, &r.name, &temp);
                }
                _ => {}
            }
        }

        // Scatter the update batch to the workers.
        if uses_delta {
            let pf = if !exec_key.is_empty() && exec_key.iter().all(|c| delta_schema.contains(c)) {
                any_partitioned_input = true;
                PartitionFn::by(exec_key.clone())
            } else if exec_key.is_empty() {
                // No anchoring key: spread the batch (pseudo-)randomly so
                // every worker aggregates a disjoint fraction of it.
                any_partitioned_input = true;
                PartitionFn::by(delta_schema.columns().to_vec())
            } else {
                PartitionFn::Replicate
            };
            let cache_key = format!("scatter:Δ{}:{pf}", trigger.relation);
            let temp = if self.opt >= OptLevel::O3 {
                scatter_cache.get(&cache_key).cloned()
            } else {
                None
            };
            let temp = match temp {
                Some(t) => t,
                None => {
                    let tag = match &pf {
                        PartitionFn::Replicate => LocTag::Replicated,
                        _ => LocTag::Dist(pf.clone()),
                    };
                    let t = self.fresh_temp("scatter", delta_schema.clone(), tag);
                    out.push(DistStatement {
                        target: t.clone(),
                        target_schema: delta_schema.clone(),
                        op: StmtOp::SetTo,
                        kind: DistStmtKind::Transform {
                            kind: Transform::Scatter(pf),
                            source: format!("Δ{}", trigger.relation),
                        },
                        mode: StmtMode::Local,
                    });
                    scatter_cache.insert(cache_key, t.clone());
                    t
                }
            };
            expr = delta_to_view(&expr, &trigger.relation, &temp);
        }

        if !any_partitioned_input {
            // Degenerate case: nothing anchors the computation to a
            // partitioning — run on the driver and push the result out.
            let result_temp =
                self.fresh_temp("local_result", stmt.target_schema.clone(), LocTag::Local);
            out.push(DistStatement {
                target: result_temp.clone(),
                target_schema: stmt.target_schema.clone(),
                op: StmtOp::SetTo,
                kind: DistStmtKind::Compute(stmt.expr.clone()),
                mode: StmtMode::Local,
            });
            let pf = match &target_tag {
                LocTag::Dist(p) => p.clone(),
                _ => PartitionFn::Replicate,
            };
            out.push(DistStatement {
                target: stmt.target.clone(),
                target_schema: stmt.target_schema.clone(),
                op: stmt.op,
                kind: DistStmtKind::Transform {
                    kind: Transform::Scatter(pf),
                    source: result_temp,
                },
                mode: StmtMode::Local,
            });
            return;
        }

        // Decide how the per-worker result reaches the target view.
        let aligned_with_target = match &target_tag {
            LocTag::Dist(p) => p.columns() == exec_key.as_slice(),
            _ => false,
        };
        let simplification_on = self.opt >= OptLevel::O1;
        if aligned_with_target && simplification_on {
            // Workers merge straight into their partition of the target.
            out.push(DistStatement {
                target: stmt.target.clone(),
                target_schema: stmt.target_schema.clone(),
                op: stmt.op,
                kind: DistStmtKind::Compute(expr),
                mode: StmtMode::Distributed,
            });
        } else {
            // Compute a distributed partial result, then move it to the
            // target's location (Gather for local targets, Repart for
            // differently-partitioned ones).
            let result_temp =
                self.fresh_temp("partial", stmt.target_schema.clone(), LocTag::Random);
            out.push(DistStatement {
                target: result_temp.clone(),
                target_schema: stmt.target_schema.clone(),
                op: StmtOp::SetTo,
                kind: DistStmtKind::Compute(expr),
                mode: StmtMode::Distributed,
            });
            let kind = match &target_tag {
                LocTag::Dist(p) => Transform::Repart(p.clone()),
                _ => Transform::Gather,
            };
            out.push(DistStatement {
                target: stmt.target.clone(),
                target_schema: stmt.target_schema.clone(),
                op: stmt.op,
                kind: DistStmtKind::Transform {
                    kind,
                    source: result_temp,
                },
                mode: StmtMode::Local,
            });
        }
    }
}

/// Replace every view reference named `from` with a reference to `to`
/// (same columns).
fn rename_view(expr: &Expr, from: &str, to: &str) -> Expr {
    match expr {
        Expr::Rel(r) if r.kind == RelKind::View && r.name == from => Expr::Rel(RelRef {
            name: to.to_string(),
            kind: RelKind::View,
            cols: r.cols.clone(),
        }),
        other => other.map_children(&mut |c| rename_view(c, from, to)),
    }
}

/// Replace every delta reference to `relation` with a view reference to the
/// scattered batch `temp`.
fn delta_to_view(expr: &Expr, relation: &str, temp: &str) -> Expr {
    match expr {
        Expr::Rel(r) if r.kind == RelKind::Delta && r.name == relation => Expr::Rel(RelRef {
            name: temp.to_string(),
            kind: RelKind::View,
            cols: r.cols.clone(),
        }),
        other => other.map_children(&mut |c| delta_to_view(c, relation, temp)),
    }
}

/// Drop transformer statements whose output temp is never read (dead code
/// elimination over exchange buffers).
fn dead_code_elimination(statements: &mut Vec<DistStatement>, plan: &MaintenancePlan) {
    let real_views: Vec<&str> = plan.views.iter().map(|v| v.name.as_str()).collect();
    loop {
        let mut read: Vec<String> = Vec::new();
        for s in statements.iter() {
            read.extend(s.reads());
        }
        let before = statements.len();
        statements.retain(|s| real_views.contains(&s.target.as_str()) || read.contains(&s.target));
        if statements.len() == before {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Block fusion (Appendix C.3)
// ---------------------------------------------------------------------------

/// Whether two statements commute: neither reads the other's target.
fn stmts_commute(a: &DistStatement, b: &DistStatement) -> bool {
    !b.reads().contains(&a.target) && !a.reads().contains(&b.target) && a.target != b.target
}

fn blocks_commute(a: &Block, b: &Block) -> bool {
    a.statements
        .iter()
        .all(|x| b.statements.iter().all(|y| stmts_commute(x, y)))
}

/// Merge the head block with every later block of the same mode that
/// commutes with all blocks in between (the `mergeIntoHead` step).
fn merge_into_head(head: Block, tail: Vec<Block>) -> (Block, Vec<Block>) {
    let mut head = head;
    let mut rest: Vec<Block> = Vec::new();
    for b in tail {
        if head.mode == b.mode && rest.iter().all(|r| blocks_commute(r, &b)) {
            head.statements.extend(b.statements);
        } else {
            rest.push(b);
        }
    }
    (head, rest)
}

/// The recursive block fusion algorithm: repeatedly merge the first block
/// with every compatible later block, then recurse on the remainder.
pub fn fuse_blocks(blocks: Vec<Block>) -> Vec<Block> {
    let mut input = blocks;
    let mut out = Vec::new();
    loop {
        if input.is_empty() {
            return out;
        }
        let head = input.remove(0);
        let before = head.statements.len();
        let (merged, rest) = merge_into_head(head, input);
        if merged.statements.len() == before {
            out.push(merged);
            input = rest;
        } else {
            // Try to grow the head further (the `merge(hd2::tl2)` branch).
            input = std::iter::once(merged).chain(rest).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;
    use hotdog_ivm::compile_recursive;

    fn example_plan() -> MaintenancePlan {
        compile_recursive(
            "Q",
            &sum(
                ["B"],
                join_all([
                    rel("R", ["OK", "B"]),
                    rel("S", ["B", "CK"]),
                    rel("T", ["CK", "D"]),
                ]),
            ),
        )
    }

    fn spec_for(plan: &MaintenancePlan) -> PartitioningSpec {
        PartitioningSpec::heuristic(plan, &["OK", "CK"])
    }

    #[test]
    fn compile_produces_one_program_per_trigger() {
        let plan = example_plan();
        let spec = spec_for(&plan);
        let dp = compile_distributed(&plan, &spec, OptLevel::O3);
        assert_eq!(dp.programs.len(), plan.triggers.len());
        for p in &dp.programs {
            assert!(!p.blocks.is_empty());
        }
    }

    #[test]
    fn optimization_reduces_statement_and_block_count() {
        let plan = example_plan();
        let spec = spec_for(&plan);
        let naive = compile_distributed(&plan, &spec, OptLevel::O0);
        let opt = compile_distributed(&plan, &spec, OptLevel::O3);
        let count = |dp: &DistributedPlan| {
            dp.programs
                .iter()
                .map(|p| p.statements().count())
                .sum::<usize>()
        };
        let blocks =
            |dp: &DistributedPlan| dp.programs.iter().map(|p| p.blocks.len()).sum::<usize>();
        assert!(
            count(&opt) <= count(&naive),
            "O3 {} vs O0 {}",
            count(&opt),
            count(&naive)
        );
        assert!(
            blocks(&opt) < blocks(&naive),
            "O3 {} vs O0 {}",
            blocks(&opt),
            blocks(&naive)
        );
    }

    #[test]
    fn block_fusion_merges_commuting_blocks() {
        let plan = example_plan();
        let spec = spec_for(&plan);
        let unfused = compile_distributed(&plan, &spec, OptLevel::O1);
        let fused = compile_distributed(&plan, &spec, OptLevel::O2);
        for (a, b) in unfused.programs.iter().zip(fused.programs.iter()) {
            assert!(b.blocks.len() <= a.blocks.len());
        }
    }

    #[test]
    fn batch_consuming_statements_are_distributed_even_for_local_views() {
        // Single-relation scalar aggregate with every view local (the Q6
        // shape): the batch is scattered, each worker computes a partial
        // aggregate of its fraction, and a gather merges them at the driver.
        let plan = compile_recursive(
            "Q",
            &sum_total(join(rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 3))),
        );
        let mut spec = PartitioningSpec::new();
        spec.set("Q", LocTag::Local);
        let dp = compile_distributed(&plan, &spec, OptLevel::O3);
        let program = dp.program("R").unwrap();
        // one parallel stage of partial aggregation + one gather stage
        assert_eq!(program.stages(), 2, "{}", program.pretty());
        assert!(program.statements().any(|s| matches!(
            &s.kind,
            DistStmtKind::Transform {
                kind: Transform::Scatter(_),
                ..
            }
        )));
        assert!(program.statements().any(|s| matches!(
            &s.kind,
            DistStmtKind::Transform {
                kind: Transform::Gather,
                ..
            }
        )));
    }

    #[test]
    fn distributed_statements_only_reference_worker_resident_relations() {
        let plan = example_plan();
        let spec = spec_for(&plan);
        let dp = compile_distributed(&plan, &spec, OptLevel::O3);
        for p in &dp.programs {
            for s in p.statements() {
                if s.mode == StmtMode::Distributed {
                    if let DistStmtKind::Compute(e) = &s.kind {
                        for r in e.relations() {
                            let tag = dp.location(&r.name);
                            assert!(
                                tag.is_distributed(),
                                "distributed statement reads driver-resident {} in\n{}",
                                r.name,
                                p.pretty()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn jobs_and_stages_are_positive_and_bounded() {
        let plan = example_plan();
        let spec = spec_for(&plan);
        let dp = compile_distributed(&plan, &spec, OptLevel::O3);
        let (jobs, stages) = dp.complexity();
        assert!((1..=5).contains(&jobs), "jobs {jobs}");
        assert!((1..=10).contains(&stages), "stages {stages}");
    }

    #[test]
    fn fuse_blocks_respects_data_dependencies() {
        // b1 writes X, b2 (different mode) separates, b3 reads X: b3 must
        // not be merged before b2 past... construct directly.
        let s = |target: &str, reads: &str, mode: StmtMode| DistStatement {
            target: target.into(),
            target_schema: Schema::new(["a"]),
            op: StmtOp::AddTo,
            kind: DistStmtKind::Compute(view(reads, ["a"])),
            mode,
        };
        let blocks = vec![
            Block {
                mode: StmtMode::Local,
                statements: vec![s("X", "A", StmtMode::Local)],
            },
            Block {
                mode: StmtMode::Distributed,
                statements: vec![s("Y", "X", StmtMode::Distributed)],
            },
            Block {
                mode: StmtMode::Local,
                statements: vec![s("Z", "Y", StmtMode::Local)],
            },
        ];
        let fused = fuse_blocks(blocks);
        // Z reads Y which is produced by the distributed block, so the two
        // local blocks must not be merged across it.
        assert_eq!(fused.len(), 3);
    }

    #[test]
    fn fuse_blocks_merges_independent_same_mode_blocks() {
        let s = |target: &str, reads: &str| DistStatement {
            target: target.into(),
            target_schema: Schema::new(["a"]),
            op: StmtOp::AddTo,
            kind: DistStmtKind::Compute(view(reads, ["a"])),
            mode: StmtMode::Local,
        };
        let blocks = vec![
            Block {
                mode: StmtMode::Local,
                statements: vec![s("X", "A")],
            },
            Block {
                mode: StmtMode::Local,
                statements: vec![s("Y", "B")],
            },
            Block {
                mode: StmtMode::Local,
                statements: vec![s("Z", "C")],
            },
        ];
        assert_eq!(fuse_blocks(blocks).len(), 1);
    }
}
