//! The driver↔worker message set shared by every real execution backend.
//!
//! The thread-per-worker runtime (`hotdog-runtime`) and the multi-process
//! TCP runtime (`hotdog-net`) speak the same protocol: FIFO command
//! channels carrying [`WorkerRequest`]s, answered by id-tagged
//! [`WorkerReply`]s.  Defining the messages here — next to
//! [`WorkerState`], which executes them — keeps the two transports
//! semantically identical by construction: both run
//! [`handle_request`] over the same per-node state machine, and only the
//! byte-level encoding (an in-process `mpsc` move vs. the `hotdog-net`
//! length-prefixed codec) differs.
//!
//! Two-layer contract of the **tagged-reply protocol**:
//!
//! * **Command order is per-channel FIFO** — an `ApplyMany` enqueued before
//!   a `RunBlock` is guaranteed to be installed before the block executes,
//!   and a `Fetch` enqueued after a `RunBlock` observes the block's writes.
//!   This is what keeps worker *state evolution* identical to the
//!   synchronous schedule.
//! * **Reply accounting is by request id, never by position** — every
//!   command that produces a reply carries an `id` the worker echoes back,
//!   and the driver matches replies against its completion ledger.  The
//!   driver never has to drain replies it is not interested in yet, so a
//!   gather of batch *k* waits only for its own ids while block
//!   completions of the in-flight window settle whenever they arrive.

use crate::program::DistStatement;
use crate::worker::{WorkerSnapshot, WorkerState, WorkerStatsSnapshot};
use hotdog_algebra::eval::EvalCounters;
use hotdog_algebra::relation::Relation;
use hotdog_ivm::StmtOp;
use hotdog_telemetry::trace::{SpanContext, SpanRecord};
use std::collections::HashMap;
use std::sync::Arc;

/// Commands the driver sends to a worker (thread or process).
///
/// The batch-path commands (`RunBlock`/`ApplyMany`/`Fetch`) carry a
/// wire-propagated [`SpanContext`] — `(trace_id, parent_span)` of the
/// batch they belong to — under which the worker opens its own spans.
/// The finished [`SpanRecord`]s ship back piggybacked on the next tagged
/// `Stats` reply, so one batch yields one stitched span tree whether the
/// transport is an in-process channel or TCP.
pub enum WorkerRequest {
    /// Execute one distributed block over this worker's shard and report
    /// the interpreter work performed.
    RunBlock {
        id: u64,
        ctx: SpanContext,
        statements: Arc<Vec<DistStatement>>,
        deltas: Arc<HashMap<String, Relation>>,
    },
    /// Install a batch of scattered shards into their statements' targets,
    /// in statement order.  One `ApplyMany` per worker per batch replaces
    /// the per-statement `Apply` messages of the positional protocol
    /// (produces no reply; a `Barrier` or any later tagged reply proves
    /// delivery via command FIFO).
    ApplyMany {
        /// Ids are uniform across the protocol; only replies are matched
        /// against the ledger, so this one is never awaited.
        id: u64,
        ctx: SpanContext,
        applies: Vec<(Arc<DistStatement>, Relation)>,
    },
    /// Send back an exchange buffer (or this worker's view partition).
    Fetch {
        id: u64,
        ctx: SpanContext,
        name: String,
    },
    /// Send back this worker's partition of a materialized view.
    Snapshot { id: u64, view: String },
    /// Acknowledge that everything enqueued so far has been processed
    /// (drains trailing `ApplyMany`s so measured batch latency includes
    /// them).
    Barrier { id: u64 },
    /// Report this node's cumulative work counters and view-partition
    /// cardinalities (the telemetry gather; command FIFO means the
    /// snapshot reflects every previously enqueued command).
    Stats { id: u64 },
    /// Liveness probe: answered immediately with a `Pong` echoing the id.
    /// Heartbeats are a *transport* concern — the TCP transport injects
    /// Pings below the driver's accounting chokepoint and consumes the
    /// Pongs itself — but the message rides the shared protocol so every
    /// backend's worker loop answers it identically.
    Ping { id: u64 },
    /// Checkpoint epoch: canonicalize this node's state (the epoch barrier
    /// that makes restored and surviving nodes bit-identical) and reply
    /// with a `Checkpoint` carrying the node's [`WorkerSnapshot`].  With
    /// `ship: false` (the driver re-scatters from its own canonical views
    /// on recovery) the reply's snapshot carries only the work counters,
    /// not the relations.
    Checkpoint { id: u64, ship: bool },
    /// Reset this node to a previously checkpointed state (or to empty,
    /// for a respawned worker with no checkpoint yet); answered with an
    /// `Ack`.  Command FIFO means every stale in-flight command lands
    /// before the `Restore`, and its effects are wiped by it.
    Restore {
        id: u64,
        snapshot: Box<WorkerSnapshot>,
    },
    /// Enable statement capture for the named views on this node (replacing
    /// any previous capture set and discarding its log); answered with an
    /// `Ack`.  An empty list disables capture.  The subscription layer's
    /// delta-capture switch (see [`WorkerState::set_capture`]).
    SetCapture { id: u64, views: Vec<String> },
    /// Drain this node's capture log; answered with a `Captured` carrying
    /// the `(view, op, relation)` entries in exact application order.
    /// Command FIFO means the log covers every previously enqueued
    /// `RunBlock`/`ApplyMany`, which is what makes a post-commit drain
    /// watermark-consistent.
    TakeCaptured { id: u64 },
    /// Exit the worker loop.
    Shutdown,
}

/// Worker responses, each echoing the request id it answers
/// (`RunBlock` → `Ran`, `Fetch`/`Snapshot` → `Rel`, `Barrier` → `Ack`,
/// `Stats` → `Stats`).
pub enum WorkerReply {
    Ran {
        id: u64,
        instructions: u64,
    },
    Rel {
        id: u64,
        rel: Relation,
    },
    Ack {
        id: u64,
    },
    Stats {
        id: u64,
        snapshot: WorkerStatsSnapshot,
        /// This node's finished spans since the previous `Stats` round,
        /// drained for the driver to stitch into its trace trees.  Rides
        /// *next to* the snapshot, not inside it: the snapshot is part of
        /// the deterministic `TelemetryTotals` equality the oracle
        /// compares, while span durations are wall-clock by definition.
        spans: Vec<SpanRecord>,
    },
    Pong {
        id: u64,
    },
    Checkpoint {
        id: u64,
        snapshot: Box<WorkerSnapshot>,
    },
    Captured {
        id: u64,
        ops: Vec<(String, StmtOp, Relation)>,
    },
}

/// Execute one request against a worker's state — the single statement
/// interpreter every transport's event loop delegates to, so the thread
/// and TCP workers cannot diverge in semantics.
///
/// Returns the reply to send back, or `None` for fire-and-forget commands
/// (`ApplyMany`).  [`WorkerRequest::Shutdown`] is a transport-level
/// concern (the event loop must stop reading); callers match it before
/// delegating here, and passing it anyway is a no-op returning `None`.
pub fn handle_request(state: &mut WorkerState, request: WorkerRequest) -> Option<WorkerReply> {
    match request {
        WorkerRequest::RunBlock {
            id,
            ctx,
            statements,
            deltas,
        } => {
            let span = state.tracer.begin(ctx, "worker.run_block");
            state.stats.blocks_run += 1;
            let mut counters = EvalCounters::default();
            for stmt in statements.iter() {
                state.run_compute(stmt, &deltas, &mut counters);
            }
            state.tracer.finish(span);
            Some(WorkerReply::Ran {
                id,
                instructions: counters.instructions(),
            })
        }
        WorkerRequest::ApplyMany { ctx, applies, .. } => {
            let span = state.tracer.begin(ctx, "worker.apply");
            state.apply_all(applies);
            state.tracer.finish(span);
            None
        }
        WorkerRequest::Fetch { id, ctx, name } => {
            let span = state.tracer.begin(ctx, "worker.fetch");
            let rel = state.read(&name);
            state.tracer.finish(span);
            Some(WorkerReply::Rel { id, rel })
        }
        WorkerRequest::Snapshot { id, view } => Some(WorkerReply::Rel {
            id,
            rel: state.snapshot(&view),
        }),
        WorkerRequest::Barrier { id } => Some(WorkerReply::Ack { id }),
        WorkerRequest::Stats { id } => Some(WorkerReply::Stats {
            id,
            snapshot: state.stats_snapshot(),
            spans: state.tracer.take(),
        }),
        WorkerRequest::Ping { id } => Some(WorkerReply::Pong { id }),
        WorkerRequest::Checkpoint { id, ship } => {
            state.canonicalize();
            let snapshot = if ship {
                state.snapshot_state()
            } else {
                WorkerSnapshot {
                    stats: state.stats,
                    ..WorkerSnapshot::default()
                }
            };
            Some(WorkerReply::Checkpoint {
                id,
                snapshot: Box::new(snapshot),
            })
        }
        WorkerRequest::Restore { id, snapshot } => {
            state.restore_state(&snapshot);
            Some(WorkerReply::Ack { id })
        }
        WorkerRequest::SetCapture { id, views } => {
            state.set_capture(views);
            Some(WorkerReply::Ack { id })
        }
        WorkerRequest::TakeCaptured { id } => Some(WorkerReply::Captured {
            id,
            ops: state.take_captured(),
        }),
        WorkerRequest::Shutdown => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{DistStmtKind, StmtMode};
    use hotdog_algebra::expr::view;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple;
    use hotdog_ivm::{compile_recursive, StmtOp};

    fn state() -> WorkerState {
        let plan = compile_recursive(
            "Q",
            &hotdog_algebra::expr::sum(
                ["B"],
                hotdog_algebra::expr::join(
                    hotdog_algebra::expr::rel("R", ["A", "B"]),
                    hotdog_algebra::expr::rel("S", ["B", "C"]),
                ),
            ),
        );
        WorkerState::for_plan(&plan)
    }

    #[test]
    fn replies_echo_request_ids() {
        let mut st = state();
        match handle_request(
            &mut st,
            WorkerRequest::Snapshot {
                id: 42,
                view: "Q".into(),
            },
        ) {
            Some(WorkerReply::Rel { id, .. }) => assert_eq!(id, 42),
            _ => panic!("snapshot must answer with Rel"),
        }
        match handle_request(&mut st, WorkerRequest::Barrier { id: 7 }) {
            Some(WorkerReply::Ack { id }) => assert_eq!(id, 7),
            _ => panic!("barrier must answer with Ack"),
        }
    }

    #[test]
    fn apply_many_is_fire_and_forget_and_applies_in_order() {
        let mut st = state();
        let stmt = |op: StmtOp| {
            Arc::new(DistStatement {
                target: "buf".into(),
                target_schema: Schema::new(["B"]),
                op,
                kind: DistStmtKind::Compute(view("Q", ["B"])),
                mode: StmtMode::Local,
            })
        };
        let a = Relation::from_pairs(Schema::new(["B"]), vec![(tuple![1], 1.0)]);
        let b = Relation::from_pairs(Schema::new(["B"]), vec![(tuple![2], 5.0)]);
        let reply = handle_request(
            &mut st,
            WorkerRequest::ApplyMany {
                id: 1,
                ctx: SpanContext::NONE,
                applies: vec![(stmt(StmtOp::AddTo), a), (stmt(StmtOp::SetTo), b.clone())],
            },
        );
        assert!(reply.is_none());
        // The later SetTo overwrote the earlier AddTo, as statement order
        // demands.
        assert!(st.temps["buf"].approx_eq(&b));
    }
}
