//! Backend-agnostic per-node state and statement execution.
//!
//! Both execution backends — the single-threaded simulated [`Cluster`]
//! (`cluster` module) and the real thread-per-worker runtime
//! (`hotdog-runtime`) — run the same compiled [`DistributedPlan`]s over the
//! same node-local machinery: a [`Database`] holding this node's partition
//! of every materialized view, plus transient exchange buffers (`temps`)
//! refreshed by the location transformers.  [`WorkerState`] bundles the two
//! with the statement-application rules so the backends cannot diverge in
//! semantics, only in scheduling and in how time is accounted.
//!
//! [`Cluster`]: crate::cluster::Cluster
//! [`DistributedPlan`]: crate::program::DistributedPlan

use crate::program::{DistStatement, DistStmtKind};
use hotdog_algebra::eval::{Catalog, EvalCounters, Evaluator};
use hotdog_algebra::expr::RelKind;
use hotdog_algebra::relation::Relation;
use hotdog_algebra::ring::Mult;
use hotdog_algebra::tuple::Tuple;
use hotdog_algebra::value::Value;
use hotdog_exec::Database;
use hotdog_ivm::{MaintenancePlan, StmtOp};
use hotdog_telemetry::trace::WorkerTracer;
use std::collections::{HashMap, HashSet};

/// One node's transient exchange buffers (scattered batches, repartitioned
/// views, partial results), keyed by temp name.
pub type Temps = HashMap<String, Relation>;

/// Cumulative per-node work counters, maintained inline by [`WorkerState`]
/// as it executes statements.  Every field is a deterministic function of
/// the command sequence the node processed — no wall-clock, no transport —
/// so the same admission stream must produce identical counters on the
/// threaded and TCP backends (the telemetry differential oracle asserts
/// exactly that, via the `Stats` protocol message).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Distributed blocks executed (triggers fired on this node).
    pub blocks_run: u64,
    /// `Compute` statements interpreted.
    pub statements: u64,
    /// Weighted interpreter work (see `EvalCounters::instructions`).
    pub instructions: u64,
    /// Scattered shards installed via `ApplyMany`.
    pub applies: u64,
    /// Tuples across those installed shards.
    pub tuples_applied: u64,
}

/// One node's [`WorkerStats`] plus the cardinality of each of its view
/// partitions, as shipped back in a `Stats` protocol reply.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStatsSnapshot {
    /// The cumulative work counters.
    pub stats: WorkerStats,
    /// `(view name, tuple count)` of this node's partition of every
    /// persistent view, sorted by name.
    pub cardinalities: Vec<(String, u64)>,
}

/// A full serializable image of one node's state: every view partition and
/// exchange buffer in **canonical** (sorted-content) form, plus the work
/// counters — the payload of the fault-tolerance `Checkpoint`/`Restore`
/// protocol round.
///
/// Both vectors are sorted by name so the encoded bytes are a pure function
/// of the state, and every relation is [`Relation::canonical`] so a node
/// rebuilt from a snapshot lands in exactly the layout the checkpoint
/// epoch's canonicalization barrier left the original node in (see
/// [`WorkerState::canonicalize`]).
#[derive(Clone, Debug, Default)]
pub struct WorkerSnapshot {
    /// `(view name, canonical partition contents)`, sorted by name.
    pub views: Vec<(String, Relation)>,
    /// `(temp name, canonical buffer contents)`, sorted by name.
    pub temps: Vec<(String, Relation)>,
    /// The node's cumulative work counters at the checkpoint cut.
    pub stats: WorkerStats,
}

/// The state of one node (driver or worker): its partition of the
/// materialized views and its exchange buffers.
#[derive(Debug)]
pub struct WorkerState {
    /// This node's partition of every materialized view.
    pub db: Database,
    /// Exchange buffers, refreshed per batch by transformer statements.
    pub temps: Temps,
    /// Cumulative work counters (see [`WorkerStats`]).
    pub stats: WorkerStats,
    /// Names of the plan's real (persistent) views; everything else written
    /// by a statement is an exchange buffer.
    views: HashSet<String>,
    /// Views whose applied statements should be recorded for subscription
    /// fan-out (empty = capture disabled, the default).
    capture: HashSet<String>,
    /// Application-order log of `(view, op, result)` for captured views.
    /// Recording the *statement stream* rather than a merged buffer is what
    /// keeps client-side reconstruction bit-for-bit: a client replaying the
    /// log performs the same per-key float additions in the same order the
    /// node's pool did, so exact cancellations and `SetTo` overwrites land
    /// identically (a pre-merged delta would re-associate the additions).
    captured: Vec<(String, StmtOp, Relation)>,
    /// This node's span buffer: spans opened under wire-propagated trace
    /// contexts, drained by the `Stats` protocol round.  Set the display
    /// track via [`WorkerState::set_trace_track`] (worker `w` → `w + 1`).
    pub tracer: WorkerTracer,
}

impl WorkerState {
    /// Create empty node state for a maintenance plan.
    pub fn for_plan(plan: &MaintenancePlan) -> Self {
        WorkerState {
            db: Database::for_plan(plan),
            temps: Temps::new(),
            stats: WorkerStats::default(),
            views: plan.views.iter().map(|v| v.name.clone()).collect(),
            capture: HashSet::new(),
            captured: Vec::new(),
            tracer: WorkerTracer::default(),
        }
    }

    /// Set this node's span display track (worker `w` uses `w + 1`; track
    /// 0 is the driver's).  Span ids are namespaced by the track, so this
    /// must be set before the node opens its first span.
    pub fn set_trace_track(&mut self, track: u32) {
        self.tracer.set_track(track);
    }

    /// Enable statement capture for `views` (replacing any previous capture
    /// set) and discard whatever the old set had logged.  The handler of a
    /// `SetCapture` protocol request; an empty list disables capture.
    pub fn set_capture(&mut self, views: impl IntoIterator<Item = String>) {
        self.capture = views.into_iter().collect();
        self.captured.clear();
    }

    /// Drain this node's capture log (the handler of a `TakeCaptured`
    /// protocol request).  Entries are in exact application order.
    pub fn take_captured(&mut self) -> Vec<(String, StmtOp, Relation)> {
        std::mem::take(&mut self.captured)
    }

    /// Freeze this node's counters and view-partition cardinalities (the
    /// payload of a `Stats` protocol reply).
    pub fn stats_snapshot(&self) -> WorkerStatsSnapshot {
        let mut cardinalities: Vec<(String, u64)> = self
            .views
            .iter()
            .map(|v| (v.clone(), self.db.snapshot(v).len() as u64))
            .collect();
        cardinalities.sort();
        WorkerStatsSnapshot {
            stats: self.stats,
            cardinalities,
        }
    }

    /// Rebuild this node's state in canonical layout — the **epoch
    /// barrier** of the fault-tolerant runtime.  Every view pool is rebuilt
    /// from scratch in sorted-content order and every exchange buffer is
    /// replaced by its canonical twin, making all subsequent scan-order-
    /// dependent float arithmetic a pure function of *contents* rather than
    /// of the node's insertion history.  A node restored from a
    /// [`WorkerSnapshot`] taken at this cut is bit-identical to a node that
    /// canonicalized and kept running — which is what lets the recovery
    /// oracle assert exact equality instead of epsilon closeness.
    pub fn canonicalize(&mut self) {
        self.db.canonicalize();
        for rel in self.temps.values_mut() {
            *rel = rel.canonical();
        }
    }

    /// Freeze this node's full state as a canonical [`WorkerSnapshot`]
    /// (the payload of a `Checkpoint` protocol reply).
    pub fn snapshot_state(&self) -> WorkerSnapshot {
        let mut views: Vec<(String, Relation)> = self
            .views
            .iter()
            .map(|v| (v.clone(), self.db.snapshot(v).canonical()))
            .collect();
        views.sort_by(|a, b| a.0.cmp(&b.0));
        let mut temps: Vec<(String, Relation)> = self
            .temps
            .iter()
            .map(|(k, r)| (k.clone(), r.canonical()))
            .collect();
        temps.sort_by(|a, b| a.0.cmp(&b.0));
        WorkerSnapshot {
            views,
            temps,
            stats: self.stats,
        }
    }

    /// Reset this node to the state captured in `snapshot` (the handler of
    /// a `Restore` protocol request).  Views absent from the snapshot are
    /// emptied; every pool is rebuilt from scratch in canonical order, so
    /// the restored node's layout is bit-identical to the snapshotted
    /// node's post-[`canonicalize`](WorkerState::canonicalize) layout.
    pub fn restore_state(&mut self, snapshot: &WorkerSnapshot) {
        let names: Vec<String> = self.views.iter().cloned().collect();
        for v in names {
            match snapshot.views.iter().find(|(n, _)| *n == v) {
                Some((_, rel)) => self.db.rebuild(&v, &rel.canonical()),
                None => {
                    let schema = self.db.schema(&v).cloned().unwrap_or_default();
                    self.db.rebuild(&v, &Relation::new(schema));
                }
            }
        }
        self.temps = snapshot
            .temps
            .iter()
            .map(|(k, r)| (k.clone(), r.canonical()))
            .collect();
        self.stats = snapshot.stats;
        // A restored node's views no longer correspond to what the capture
        // log recorded; subscribers resynchronize from a snapshot instead.
        self.captured.clear();
        // Same for buffered spans: the batches that produced them are being
        // replayed and will open fresh spans (the id counter is *not*
        // reset, so replayed spans never collide with pre-fault ids).
        self.tracer.clear_buffer();
    }

    /// Execute one `Compute` statement against this node's state and apply
    /// the result; transformer statements are scheduling constructs handled
    /// by the backend driver, not per-node work.  Evaluator operation counts
    /// are accumulated into `counters`.
    pub fn run_compute(
        &mut self,
        stmt: &DistStatement,
        deltas: &HashMap<String, Relation>,
        counters: &mut EvalCounters,
    ) {
        if let DistStmtKind::Compute(expr) = &stmt.kind {
            let result = {
                let cat = NodeCatalog {
                    db: &self.db,
                    temps: &self.temps,
                    deltas,
                };
                // Columnar fast path first (bit-identical results and
                // counters); row interpreter for unsupported shapes.
                let mut ev_counters = EvalCounters::default();
                let r = match hotdog_exec::eval_vectorized(expr, &cat, &mut ev_counters) {
                    Some(r) => r,
                    None => {
                        let mut ev = Evaluator::new(&cat);
                        let r = ev.eval(expr);
                        ev_counters = ev.counters;
                        r
                    }
                };
                self.stats.statements += 1;
                self.stats.instructions += ev_counters.instructions();
                counters.add(&ev_counters);
                r
            };
            self.apply(stmt, result);
        }
    }

    /// Apply a computed or received relation to a statement's target:
    /// persistent views live in the database, everything else is an
    /// exchange buffer.
    pub fn apply(&mut self, stmt: &DistStatement, result: Relation) {
        if self.views.contains(&stmt.target) {
            if self.capture.contains(&stmt.target) {
                self.captured
                    .push((stmt.target.clone(), stmt.op, result.clone()));
            }
            match stmt.op {
                StmtOp::AddTo => self.db.merge(&stmt.target, &result),
                StmtOp::SetTo => self.db.replace(&stmt.target, &result),
            }
        } else {
            let entry = self
                .temps
                .entry(stmt.target.clone())
                .or_insert_with(|| Relation::new(stmt.target_schema.clone()));
            match stmt.op {
                StmtOp::AddTo => entry.merge(&result),
                StmtOp::SetTo => *entry = result,
            }
        }
    }

    /// Apply a batch of received shards in statement order — the worker
    /// side of a multi-statement `ApplyMany` scatter message.  Statement
    /// order must be preserved: a later `SetTo` may overwrite an earlier
    /// `AddTo` to the same exchange buffer, exactly as the per-statement
    /// message sequence would have.
    pub fn apply_all(
        &mut self,
        applies: impl IntoIterator<Item = (std::sync::Arc<DistStatement>, Relation)>,
    ) {
        for (stmt, shard) in applies {
            self.stats.applies += 1;
            self.stats.tuples_applied += shard.len() as u64;
            self.apply(&stmt, shard);
        }
    }

    /// Read a named relation for a transformer: an exchange buffer if one
    /// exists, otherwise this node's partition of the view.
    pub fn read(&self, name: &str) -> Relation {
        if let Some(r) = self.temps.get(name) {
            r.clone()
        } else {
            self.db.snapshot(name)
        }
    }

    /// Snapshot this node's partition of a view.
    pub fn snapshot(&self, view: &str) -> Relation {
        self.db.snapshot(view)
    }
}

/// Catalog adapter resolving `Delta` references against the in-flight batch,
/// temps against the node's exchange buffers, and everything else against
/// the node's view partitions.
pub struct NodeCatalog<'a> {
    pub db: &'a Database,
    pub temps: &'a Temps,
    pub deltas: &'a HashMap<String, Relation>,
}

impl Catalog for NodeCatalog<'_> {
    fn scan(&self, name: &str, kind: RelKind, f: &mut dyn FnMut(&Tuple, Mult)) {
        match kind {
            RelKind::Delta => {
                if let Some(rel) = self.deltas.get(name) {
                    for (t, m) in rel.iter() {
                        f(t, m);
                    }
                }
            }
            _ => {
                if let Some(rel) = self.temps.get(name) {
                    for (t, m) in rel.iter() {
                        f(t, m);
                    }
                } else if let Some(pool) = self.db.pool(name) {
                    pool.foreach(f);
                }
            }
        }
    }

    fn lookup(&self, name: &str, kind: RelKind, key: &Tuple) -> Mult {
        match kind {
            RelKind::Delta => self.deltas.get(name).map(|r| r.get(key)).unwrap_or(0.0),
            _ => {
                if let Some(rel) = self.temps.get(name) {
                    rel.get(key)
                } else {
                    self.db.pool(name).map(|p| p.get(key)).unwrap_or(0.0)
                }
            }
        }
    }

    fn slice(
        &self,
        name: &str,
        kind: RelKind,
        positions: &[usize],
        key_vals: &[Value],
        f: &mut dyn FnMut(&Tuple, Mult),
    ) {
        match kind {
            RelKind::Delta => {
                if let Some(rel) = self.deltas.get(name) {
                    for (t, m) in rel.iter() {
                        if positions.iter().zip(key_vals).all(|(&p, v)| t.get(p) == v) {
                            f(t, m);
                        }
                    }
                }
            }
            _ => {
                if let Some(rel) = self.temps.get(name) {
                    for (t, m) in rel.iter() {
                        if positions.iter().zip(key_vals).all(|(&p, v)| t.get(p) == v) {
                            f(t, m);
                        }
                    }
                } else if let Some(pool) = self.db.pool(name) {
                    pool.slice(positions, key_vals, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::StmtMode;
    use hotdog_algebra::expr::*;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple;
    use hotdog_ivm::compile_recursive;

    fn plan() -> MaintenancePlan {
        compile_recursive(
            "Q",
            &sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"]))),
        )
    }

    #[test]
    fn apply_routes_views_to_db_and_temps_to_buffers() {
        let plan = plan();
        let mut node = WorkerState::for_plan(&plan);
        let rel = Relation::from_pairs(Schema::new(["B"]), vec![(tuple![1], 2.0)]);
        let view_stmt = DistStatement {
            target: "Q".into(),
            target_schema: Schema::new(["B"]),
            op: StmtOp::AddTo,
            kind: DistStmtKind::Compute(view("Q", ["B"])),
            mode: StmtMode::Local,
        };
        node.apply(&view_stmt, rel.clone());
        assert!(node.snapshot("Q").approx_eq(&rel));
        assert!(node.temps.is_empty());

        let temp_stmt = DistStatement {
            target: "scatter_1".into(),
            ..view_stmt
        };
        node.apply(&temp_stmt, rel.clone());
        assert!(node.temps["scatter_1"].approx_eq(&rel));
        // SetTo replaces the buffer wholesale.
        let temp_set = DistStatement {
            op: StmtOp::SetTo,
            target: "scatter_1".into(),
            target_schema: Schema::new(["B"]),
            kind: DistStmtKind::Compute(view("Q", ["B"])),
            mode: StmtMode::Local,
        };
        let other = Relation::from_pairs(Schema::new(["B"]), vec![(tuple![9], 1.0)]);
        node.apply(&temp_set, other.clone());
        assert!(node.temps["scatter_1"].approx_eq(&other));
    }

    #[test]
    fn read_prefers_exchange_buffers_over_view_partitions() {
        let plan = plan();
        let mut node = WorkerState::for_plan(&plan);
        let in_db = Relation::from_pairs(Schema::new(["B"]), vec![(tuple![1], 1.0)]);
        node.db.merge("Q", &in_db);
        assert!(node.read("Q").approx_eq(&in_db));
        let buffered = Relation::from_pairs(Schema::new(["B"]), vec![(tuple![2], 5.0)]);
        node.temps.insert("Q".into(), buffered.clone());
        assert!(node.read("Q").approx_eq(&buffered));
    }

    #[test]
    fn run_compute_evaluates_against_node_state() {
        let plan = plan();
        let mut node = WorkerState::for_plan(&plan);
        node.db.merge(
            "Q",
            &Relation::from_pairs(Schema::new(["B"]), vec![(tuple![3], 4.0)]),
        );
        let stmt = DistStatement {
            target: "copy_1".into(),
            target_schema: Schema::new(["B"]),
            op: StmtOp::SetTo,
            kind: DistStmtKind::Compute(view("Q", ["B"])),
            mode: StmtMode::Local,
        };
        let mut counters = EvalCounters::default();
        node.run_compute(&stmt, &HashMap::new(), &mut counters);
        assert!(node.temps["copy_1"].approx_eq(&node.snapshot("Q")));
        assert!(counters.instructions() > 0);
    }
}
