//! The view database: one record pool per materialized view, with the
//! secondary indexes chosen by the plan's access-pattern analysis, plus the
//! [`Catalog`] implementation that lets the algebra evaluator run trigger
//! statements directly against the pools and the current update batch.

use hotdog_algebra::eval::Catalog;
use hotdog_algebra::expr::RelKind;
use hotdog_algebra::relation::Relation;
use hotdog_algebra::ring::Mult;
use hotdog_algebra::schema::Schema;
use hotdog_algebra::tuple::Tuple;
use hotdog_algebra::value::Value;
use hotdog_ivm::MaintenancePlan;
use hotdog_storage::{PoolCounters, RecordPool};
use std::collections::HashMap;

/// Storage for all materialized views of one maintenance plan.
#[derive(Clone, Debug, Default)]
pub struct Database {
    pools: HashMap<String, RecordPool>,
    schemas: HashMap<String, Schema>,
}

impl Database {
    /// Create the pools (and their secondary indexes) required by a plan.
    pub fn for_plan(plan: &MaintenancePlan) -> Self {
        let mut db = Database::default();
        for v in &plan.views {
            db.pools
                .insert(v.name.clone(), RecordPool::new(v.schema.len()));
            db.schemas.insert(v.name.clone(), v.schema.clone());
        }
        for spec in plan.index_requirements() {
            if let Some(pool) = db.pools.get_mut(&spec.view) {
                pool.add_secondary_index(spec.positions.clone());
            }
        }
        db
    }

    /// Access a view's pool.
    pub fn pool(&self, view: &str) -> Option<&RecordPool> {
        self.pools.get(view)
    }

    /// Mutable access to a view's pool.
    pub fn pool_mut(&mut self, view: &str) -> Option<&mut RecordPool> {
        self.pools.get_mut(view)
    }

    /// Schema of a view.
    pub fn schema(&self, view: &str) -> Option<&Schema> {
        self.schemas.get(view)
    }

    /// Names of all views.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.pools.keys().map(|s| s.as_str())
    }

    /// Snapshot a view's contents as a [`Relation`].
    pub fn snapshot(&self, view: &str) -> Relation {
        let schema = self.schemas.get(view).cloned().unwrap_or_default();
        let mut rel = Relation::new(schema);
        if let Some(pool) = self.pools.get(view) {
            pool.foreach(&mut |t, m| rel.add(t.clone(), m));
        }
        rel
    }

    /// Replace a view's contents wholesale (the `:=` statement operation and
    /// the shuffle path of the distributed runtime).
    pub fn replace(&mut self, view: &str, contents: &Relation) {
        if let Some(pool) = self.pools.get_mut(view) {
            pool.clear();
            for (t, m) in contents.iter() {
                pool.update(t.clone(), m);
            }
        }
    }

    /// Rebuild a view's pool **from scratch** with the given contents: a
    /// fresh slab (no free-list history, no inherited capacity) populated in
    /// `contents`' iteration order, with the same secondary indexes.
    ///
    /// This is the restore/canonicalization primitive of the fault-tolerant
    /// runtime.  [`Database::replace`] deliberately recycles the existing
    /// slab (its `clear` refills the free list, so re-inserts fill slots
    /// top-down), which makes the resulting slot order — and therefore scan
    /// order, and therefore float accumulation in later batches — a function
    /// of the pool's entire history.  `rebuild` makes it a pure function of
    /// `contents`: feeding it the same canonical relation always produces
    /// bit-identical scan order, no matter what the pool held before.
    pub fn rebuild(&mut self, view: &str, contents: &Relation) {
        if let Some(pool) = self.pools.get_mut(view) {
            let mut fresh =
                RecordPool::with_secondary_indexes(pool.arity(), &pool.secondary_index_specs());
            for (t, m) in contents.iter() {
                fresh.update(t.clone(), m);
            }
            *pool = fresh;
        }
    }

    /// Rebuild every pool in canonical (sorted-content) layout: the
    /// epoch barrier of the fault-tolerant runtime.  After `canonicalize`,
    /// each pool's slot order is a pure function of its *contents*, so a
    /// node restored from a canonical snapshot and a node that simply kept
    /// running agree bit-for-bit on all subsequent scan-order-dependent
    /// float arithmetic.
    pub fn canonicalize(&mut self) {
        let views: Vec<String> = self.pools.keys().cloned().collect();
        for v in views {
            let canon = self.snapshot(&v).canonical();
            self.rebuild(&v, &canon);
        }
    }

    /// Merge a relation into a view (`+=`).
    pub fn merge(&mut self, view: &str, contents: &Relation) {
        if let Some(pool) = self.pools.get_mut(view) {
            for (t, m) in contents.iter() {
                pool.update(t.clone(), m);
            }
        }
    }

    /// Total live records across all views.
    pub fn total_records(&self) -> usize {
        self.pools.values().map(RecordPool::len).sum()
    }

    /// Approximate total payload bytes across all views.
    pub fn total_bytes(&self) -> usize {
        self.pools.values().map(RecordPool::payload_bytes).sum()
    }

    /// Aggregate storage-operation counters across all pools.
    pub fn counters(&self) -> PoolCounters {
        let mut c = PoolCounters::default();
        for p in self.pools.values() {
            c.add(&p.counters());
        }
        c
    }

    /// Reset per-pool counters.
    pub fn reset_counters(&self) {
        for p in self.pools.values() {
            p.reset_counters();
        }
    }
}

/// Catalog adapter: resolves `View` references against the database pools
/// and `Delta` references against the current batch.
pub struct ExecCatalog<'a> {
    pub db: &'a Database,
    pub deltas: &'a HashMap<String, Relation>,
}

impl Catalog for ExecCatalog<'_> {
    fn scan(&self, name: &str, kind: RelKind, f: &mut dyn FnMut(&Tuple, Mult)) {
        match kind {
            RelKind::Delta => {
                if let Some(rel) = self.deltas.get(name) {
                    for (t, m) in rel.iter() {
                        f(t, m);
                    }
                }
            }
            _ => {
                if let Some(pool) = self.db.pool(name) {
                    pool.foreach(f);
                }
            }
        }
    }

    fn lookup(&self, name: &str, kind: RelKind, key: &Tuple) -> Mult {
        match kind {
            RelKind::Delta => self.deltas.get(name).map(|r| r.get(key)).unwrap_or(0.0),
            _ => self.db.pool(name).map(|p| p.get(key)).unwrap_or(0.0),
        }
    }

    fn slice(
        &self,
        name: &str,
        kind: RelKind,
        positions: &[usize],
        key_vals: &[Value],
        f: &mut dyn FnMut(&Tuple, Mult),
    ) {
        match kind {
            RelKind::Delta => {
                if let Some(rel) = self.deltas.get(name) {
                    for (t, m) in rel.iter() {
                        if positions.iter().zip(key_vals).all(|(&p, v)| t.get(p) == v) {
                            f(t, m);
                        }
                    }
                }
            }
            _ => {
                if let Some(pool) = self.db.pool(name) {
                    pool.slice(positions, key_vals, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;
    use hotdog_algebra::tuple;
    use hotdog_ivm::compile_recursive;

    fn sample_plan() -> MaintenancePlan {
        compile_recursive(
            "Q",
            &sum(
                ["B"],
                join_all([
                    rel("R", ["A", "B"]),
                    rel("S", ["B", "C"]),
                    rel("T", ["C", "D"]),
                ]),
            ),
        )
    }

    #[test]
    fn database_creates_pool_per_view() {
        let plan = sample_plan();
        let db = Database::for_plan(&plan);
        assert_eq!(db.view_names().count(), plan.views.len());
        assert!(db.pool("Q").is_some());
    }

    #[test]
    fn database_creates_required_secondary_indexes() {
        let plan = sample_plan();
        let db = Database::for_plan(&plan);
        for spec in plan.index_requirements() {
            assert!(
                db.pool(&spec.view)
                    .unwrap()
                    .has_secondary_index(&spec.positions),
                "missing index {:?} on {}",
                spec.positions,
                spec.view
            );
        }
    }

    #[test]
    fn snapshot_merge_replace_round_trip() {
        let plan = sample_plan();
        let mut db = Database::for_plan(&plan);
        let rel =
            Relation::from_pairs(Schema::new(["B"]), vec![(tuple![1], 2.0), (tuple![2], 3.0)]);
        db.merge("Q", &rel);
        assert!(db.snapshot("Q").approx_eq(&rel));
        let rel2 = Relation::from_pairs(Schema::new(["B"]), vec![(tuple![9], 1.0)]);
        db.replace("Q", &rel2);
        assert!(db.snapshot("Q").approx_eq(&rel2));
        assert_eq!(db.total_records(), 1);
    }

    #[test]
    fn exec_catalog_routes_delta_and_view_kinds() {
        let plan = sample_plan();
        let mut db = Database::for_plan(&plan);
        db.merge(
            "Q",
            &Relation::from_pairs(Schema::new(["B"]), vec![(tuple![5], 7.0)]),
        );
        let mut deltas = HashMap::new();
        deltas.insert(
            "R".to_string(),
            Relation::from_pairs(Schema::new(["A", "B"]), vec![(tuple![1, 5], 1.0)]),
        );
        let cat = ExecCatalog {
            db: &db,
            deltas: &deltas,
        };
        assert_eq!(cat.lookup("Q", RelKind::View, &tuple![5]), 7.0);
        assert_eq!(cat.lookup("R", RelKind::Delta, &tuple![1, 5]), 1.0);
        let mut n = 0;
        cat.scan("R", RelKind::Delta, &mut |_, _| n += 1);
        assert_eq!(n, 1);
    }
}
