//! The local execution engine: runs compiled maintenance triggers against
//! the view database, in single-tuple or batched mode (Section 3.3), with
//! optional batch pre-aggregation, and meters the work performed.

use crate::database::{Database, ExecCatalog};
use hotdog_algebra::eval::{EvalCounters, Evaluator};
use hotdog_algebra::expr::{Expr, RelKind, RelRef};
use hotdog_algebra::relation::Relation;
use hotdog_algebra::schema::Schema;
use hotdog_ivm::{MaintenancePlan, StmtOp};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How update batches are processed (the trade-off studied in Section 3.3
/// and Figure 7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Re-invoke the trigger once per input tuple (specialized single-tuple
    /// processing — no batch materialization, no extra loops).
    SingleTuple,
    /// Process the whole batch in one trigger invocation.
    Batched {
        /// Pre-aggregate the batch onto the columns the trigger actually
        /// uses before running the maintenance statements.
        preaggregate: bool,
    },
}

impl ExecMode {
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::SingleTuple => "single-tuple",
            ExecMode::Batched { preaggregate: true } => "batched+preagg",
            ExecMode::Batched {
                preaggregate: false,
            } => "batched",
        }
    }
}

/// Per-batch execution statistics.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Tuples in the incoming batch.
    pub input_tuples: usize,
    /// Tuples actually fed to the trigger (after pre-aggregation).
    pub processed_tuples: usize,
    /// Maintenance statements executed.
    pub statements_executed: usize,
    /// Evaluator operation counters for this batch.
    pub eval: EvalCounters,
    /// Wall-clock time spent in trigger execution.
    pub elapsed: Duration,
}

/// Accumulated totals over the lifetime of an engine.
#[derive(Clone, Debug, Default)]
pub struct EngineTotals {
    pub batches: usize,
    pub tuples: usize,
    pub statements: usize,
    pub eval: EvalCounters,
    pub elapsed: Duration,
}

impl EngineTotals {
    fn absorb(&mut self, s: &BatchStats) {
        self.batches += 1;
        self.tuples += s.input_tuples;
        self.statements += s.statements_executed;
        self.eval.add(&s.eval);
        self.elapsed += s.elapsed;
    }

    /// Throughput in tuples per second over the accumulated execution time.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.tuples as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// A statement prepared for execution (possibly rewritten for batch
/// pre-aggregation).
#[derive(Clone, Debug)]
struct ExecStatement {
    target: String,
    op: StmtOp,
    expr: Expr,
}

#[derive(Clone, Debug)]
struct ExecTrigger {
    relation_schema: Schema,
    /// Columns of the batch the trigger actually needs (pre-aggregation
    /// projects onto these).
    used_delta_columns: Schema,
    statements: Vec<ExecStatement>,
}

/// The local view-maintenance engine for one compiled plan.
pub struct LocalEngine {
    plan: MaintenancePlan,
    mode: ExecMode,
    db: Database,
    triggers: HashMap<String, ExecTrigger>,
    /// Accumulated execution totals.
    pub totals: EngineTotals,
}

impl LocalEngine {
    /// Build an engine (empty views) for a plan and execution mode.
    pub fn new(plan: MaintenancePlan, mode: ExecMode) -> Self {
        let db = Database::for_plan(&plan);
        let preagg = matches!(mode, ExecMode::Batched { preaggregate: true });
        let triggers = plan
            .triggers
            .iter()
            .map(|t| {
                let used = used_delta_columns(&plan, t);
                let statements = t
                    .statements
                    .iter()
                    .map(|s| ExecStatement {
                        target: s.target.clone(),
                        op: s.op,
                        expr: if preagg {
                            rewrite_delta_refs(&s.expr, &t.relation_schema, &used)
                        } else {
                            s.expr.clone()
                        },
                    })
                    .collect();
                (
                    t.relation.clone(),
                    ExecTrigger {
                        relation_schema: t.relation_schema.clone(),
                        used_delta_columns: used,
                        statements,
                    },
                )
            })
            .collect();
        LocalEngine {
            plan,
            mode,
            db,
            triggers,
            totals: EngineTotals::default(),
        }
    }

    /// The compiled plan this engine executes.
    pub fn plan(&self) -> &MaintenancePlan {
        &self.plan
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Read access to the underlying view database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Current contents of the top-level query view.
    pub fn query_result(&self) -> Relation {
        self.db.snapshot(&self.plan.top_view)
    }

    /// Current contents of any materialized view.
    pub fn view_contents(&self, view: &str) -> Relation {
        self.db.snapshot(view)
    }

    /// Apply one batch of updates to a base relation and return statistics.
    ///
    /// The batch is a generalized multiset relation: positive multiplicities
    /// are insertions, negative ones deletions.
    pub fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchStats {
        let start = Instant::now();
        let mut stats = BatchStats {
            input_tuples: batch.len(),
            ..Default::default()
        };
        let trigger = match self.triggers.get(relation) {
            Some(t) => t.clone(),
            None => return stats, // relation not referenced by this query
        };
        // Batches produced by the stream generators carry the table's
        // canonical column names; the compiled trigger uses the query's
        // variable names.  Relabel positionally so that name-based
        // operations (pre-aggregation, partitioning) work uniformly.
        let batch = relabel(batch, &trigger.relation_schema);
        let batch = &batch;
        match self.mode {
            ExecMode::SingleTuple => {
                for (t, m) in batch.iter() {
                    let single =
                        Relation::from_pairs(trigger.relation_schema.clone(), [(t.clone(), m)]);
                    self.run_trigger(relation, &trigger, &single, &mut stats);
                    stats.processed_tuples += 1;
                }
            }
            ExecMode::Batched { preaggregate } => {
                let delta = if preaggregate {
                    batch.project_sum(&trigger.used_delta_columns)
                } else {
                    batch.clone()
                };
                stats.processed_tuples = delta.len();
                self.run_trigger(relation, &trigger, &delta, &mut stats);
            }
        }
        stats.elapsed = start.elapsed();
        self.totals.absorb(&stats);
        stats
    }

    fn run_trigger(
        &mut self,
        relation: &str,
        trigger: &ExecTrigger,
        delta: &Relation,
        stats: &mut BatchStats,
    ) {
        let mut deltas = HashMap::new();
        deltas.insert(relation.to_string(), delta.clone());
        for stmt in &trigger.statements {
            let result = {
                let catalog = ExecCatalog {
                    db: &self.db,
                    deltas: &deltas,
                };
                // Columnar fast path first; row interpreter for shapes the
                // vectorizer bails on.  Both produce bit-identical results
                // and counters.
                let mut counters = EvalCounters::default();
                let r =
                    match crate::vectorized::eval_vectorized(&stmt.expr, &catalog, &mut counters) {
                        Some(r) => r,
                        None => {
                            let mut ev = Evaluator::new(&catalog);
                            let r = ev.eval(&stmt.expr);
                            counters = ev.counters;
                            r
                        }
                    };
                stats.eval.add(&counters);
                r
            };
            match stmt.op {
                StmtOp::AddTo => self.db.merge(&stmt.target, &result),
                StmtOp::SetTo => self.db.replace(&stmt.target, &result),
            }
            stats.statements_executed += 1;
        }
    }
}

/// Re-key a relation under a different (same-arity) schema, keeping tuples
/// positionally.  The result is always in wire-canonical layout
/// ([`Relation::canonical`]): relabelling marks the exchange boundaries of
/// the distributed backends, where layouts must be a pure function of
/// content so the socket transport can reproduce them from a byte stream.
pub fn relabel(rel: &Relation, schema: &Schema) -> Relation {
    assert_eq!(
        rel.schema().len(),
        schema.len(),
        "relabel arity mismatch: {:?} vs {:?}",
        rel.schema(),
        schema
    );
    // Always rebuild in wire-canonical (sorted) order — even when the
    // schema already matches.  Relabelled relations feed the exchange
    // paths of every execution backend (trigger deltas, scatter sources,
    // gathered partials), and the canonical layout is what makes a
    // relation decoded from the socket transport bit-identical — in
    // iteration order, hence in every downstream float accumulation — to
    // its in-process counterpart (see [`Relation::canonical`]).
    Relation::from_pairs(schema.clone(), rel.sorted())
}

/// Columns of the update batch that the trigger's statements actually use
/// (anywhere outside the delta references themselves, or as join keys
/// between multiple relational references).  Batch pre-aggregation projects
/// the batch onto these columns; the distributed runtime uses the same
/// analysis to shrink scattered batches.
pub fn used_delta_columns(plan: &MaintenancePlan, trigger: &hotdog_ivm::Trigger) -> Schema {
    let mut used = Schema::empty();
    let mut rel_col_counts: HashMap<String, usize> = HashMap::new();
    for stmt in &trigger.statements {
        used = used.union(&stmt.target_schema);
        stmt.expr.visit(&mut |e| match e {
            Expr::Rel(r) => {
                for c in &r.cols {
                    *rel_col_counts.entry(c.clone()).or_insert(0) += 1;
                }
                if r.kind != RelKind::Delta {
                    for c in &r.cols {
                        used.push(c.clone());
                    }
                }
            }
            Expr::Val(v) => used = used.union(&v.variables()),
            Expr::Cmp { lhs, rhs, .. } => {
                used = used.union(&lhs.variables());
                used = used.union(&rhs.variables());
            }
            Expr::AssignVal { value, .. } => used = used.union(&value.variables()),
            Expr::Sum { group_by, .. } => used = used.union(group_by),
            _ => {}
        });
    }
    let _ = plan;
    // Columns shared between several relational references are join keys and
    // must be retained even if they only occur in delta references.
    for (c, n) in rel_col_counts {
        if n >= 2 {
            used.push(c);
        }
    }
    let mut out = Schema::empty();
    for c in trigger.relation_schema.iter() {
        if used.contains(c) {
            out.push(c.to_string());
        }
    }
    out
}

/// Rewrite delta references so they range over the pre-aggregated batch
/// (whose schema keeps only `used` columns of the canonical batch schema).
fn rewrite_delta_refs(expr: &Expr, canonical: &Schema, used: &Schema) -> Expr {
    match expr {
        Expr::Rel(r) if r.kind == RelKind::Delta => {
            let cols = r
                .cols
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    canonical
                        .columns()
                        .get(*i)
                        .map(|c| used.contains(c))
                        .unwrap_or(true)
                })
                .map(|(_, c)| c.clone())
                .collect();
            Expr::Rel(RelRef {
                name: r.name.clone(),
                kind: RelKind::Delta,
                cols,
            })
        }
        other => other.map_children(&mut |c| rewrite_delta_refs(c, canonical, used)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::eval::{evaluate, MapCatalog};
    use hotdog_algebra::expr::*;
    use hotdog_algebra::tuple;
    use hotdog_ivm::{compile, Strategy};

    /// Example 2.1 query.
    fn three_way_join() -> Expr {
        sum(
            ["B"],
            join_all([
                rel("R", ["A", "B"]),
                rel("S", ["B", "C"]),
                rel("T", ["C", "D"]),
            ]),
        )
    }

    /// Correlated nested aggregate (Q17-like shape).
    fn nested_query() -> Expr {
        let nested = sum_total(join(rel("S", ["B", "C2"]), val_var("C2")));
        sum_total(join_all([
            rel("R", ["A", "B"]),
            assign_query("X", nested),
            cmp_vars("A", CmpOp::Lt, "X"),
        ]))
    }

    /// Distinct projection with predicate (Example 3.2).
    fn distinct_query() -> Expr {
        exists(sum(
            ["A"],
            join(rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 3)),
        ))
    }

    fn batches() -> Vec<(&'static str, Relation)> {
        vec![
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["A", "B"]),
                    vec![
                        (tuple![1, 10], 1.0),
                        (tuple![2, 20], 1.0),
                        (tuple![7, 10], 1.0),
                    ],
                ),
            ),
            (
                "S",
                Relation::from_pairs(
                    Schema::new(["B", "C"]),
                    vec![(tuple![10, 100], 1.0), (tuple![20, 200], 1.0)],
                ),
            ),
            (
                "T",
                Relation::from_pairs(
                    Schema::new(["C", "D"]),
                    vec![(tuple![100, 5], 1.0), (tuple![200, 6], 2.0)],
                ),
            ),
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["A", "B"]),
                    vec![(tuple![3, 20], 1.0), (tuple![1, 10], -1.0)],
                ),
            ),
            (
                "S",
                Relation::from_pairs(
                    Schema::new(["B", "C"]),
                    vec![(tuple![10, 101], 1.0), (tuple![20, 200], -1.0)],
                ),
            ),
        ]
    }

    /// Reference result: evaluate the query from scratch over the
    /// accumulated base relations.
    fn reference_result(query: &Expr, applied: &[(&str, Relation)]) -> Relation {
        let mut acc: HashMap<String, Relation> = HashMap::new();
        for (r, b) in applied {
            acc.entry(r.to_string())
                .and_modify(|cur| cur.merge(b))
                .or_insert_with(|| b.clone());
        }
        let mut cat = MapCatalog::new();
        for (name, rel) in acc {
            cat.insert(name, RelKind::Base, rel);
        }
        // Relations never touched stay absent (= empty), which matches the
        // streaming setting.
        evaluate(query, &cat)
    }

    fn check_engine(query: Expr, strategy: Strategy, mode: ExecMode) {
        let plan = compile("Q", &query, strategy);
        let mut engine = LocalEngine::new(plan, mode);
        let mut applied: Vec<(&str, Relation)> = Vec::new();
        for (rel, batch) in batches() {
            engine.apply_batch(rel, &batch);
            applied.push((rel, batch));
            let expected = reference_result(&query, &applied);
            let got = engine.query_result();
            assert!(
                got.approx_eq(&expected),
                "strategy {strategy:?} mode {mode:?} diverged after {} batches\nexpected {expected:?}\ngot {got:?}\nplan:\n{}",
                applied.len(),
                engine.plan().pretty()
            );
        }
        assert!(engine.totals.batches > 0);
        assert!(engine.totals.tuples > 0);
    }

    #[test]
    fn recursive_batched_matches_reference_three_way_join() {
        check_engine(
            three_way_join(),
            Strategy::RecursiveIvm,
            ExecMode::Batched {
                preaggregate: false,
            },
        );
    }

    #[test]
    fn recursive_batched_preagg_matches_reference_three_way_join() {
        check_engine(
            three_way_join(),
            Strategy::RecursiveIvm,
            ExecMode::Batched { preaggregate: true },
        );
    }

    #[test]
    fn recursive_single_tuple_matches_reference_three_way_join() {
        check_engine(
            three_way_join(),
            Strategy::RecursiveIvm,
            ExecMode::SingleTuple,
        );
    }

    #[test]
    fn classical_ivm_matches_reference_three_way_join() {
        check_engine(
            three_way_join(),
            Strategy::ClassicalIvm,
            ExecMode::Batched {
                preaggregate: false,
            },
        );
    }

    #[test]
    fn reevaluation_matches_reference_three_way_join() {
        check_engine(
            three_way_join(),
            Strategy::Reevaluation,
            ExecMode::Batched {
                preaggregate: false,
            },
        );
    }

    #[test]
    fn recursive_batched_matches_reference_nested_query() {
        check_engine(
            nested_query(),
            Strategy::RecursiveIvm,
            ExecMode::Batched {
                preaggregate: false,
            },
        );
    }

    #[test]
    fn recursive_single_tuple_matches_reference_nested_query() {
        check_engine(
            nested_query(),
            Strategy::RecursiveIvm,
            ExecMode::SingleTuple,
        );
    }

    #[test]
    fn classical_ivm_matches_reference_nested_query() {
        check_engine(
            nested_query(),
            Strategy::ClassicalIvm,
            ExecMode::Batched {
                preaggregate: false,
            },
        );
    }

    #[test]
    fn recursive_batched_matches_reference_distinct_query() {
        check_engine(
            distinct_query(),
            Strategy::RecursiveIvm,
            ExecMode::Batched {
                preaggregate: false,
            },
        );
    }

    #[test]
    fn recursive_preagg_matches_reference_distinct_query() {
        check_engine(
            distinct_query(),
            Strategy::RecursiveIvm,
            ExecMode::Batched { preaggregate: true },
        );
    }

    #[test]
    fn preaggregation_reduces_processed_tuples() {
        // Query that only uses column B of R: pre-aggregation collapses the
        // batch onto distinct B values.
        let q = sum(["B"], rel("R", ["A", "B"]));
        let plan = compile("Q", &q, Strategy::RecursiveIvm);
        let mut engine = LocalEngine::new(plan, ExecMode::Batched { preaggregate: true });
        let batch = Relation::from_pairs(
            Schema::new(["A", "B"]),
            (0..100i64).map(|i| (tuple![i, i % 4], 1.0)),
        );
        let stats = engine.apply_batch("R", &batch);
        assert_eq!(stats.input_tuples, 100);
        assert_eq!(stats.processed_tuples, 4);
        assert_eq!(engine.query_result().get(&tuple![0]), 25.0);
    }

    #[test]
    fn unknown_relation_batches_are_ignored() {
        let plan = compile("Q", &three_way_join(), Strategy::RecursiveIvm);
        let mut engine = LocalEngine::new(plan, ExecMode::SingleTuple);
        let stats = engine.apply_batch(
            "UNRELATED",
            &Relation::from_pairs(Schema::new(["X"]), vec![(tuple![1], 1.0)]),
        );
        assert_eq!(stats.statements_executed, 0);
        assert!(engine.query_result().is_empty());
    }

    #[test]
    fn counters_accumulate_across_batches() {
        let plan = compile("Q", &three_way_join(), Strategy::RecursiveIvm);
        let mut engine = LocalEngine::new(
            plan,
            ExecMode::Batched {
                preaggregate: false,
            },
        );
        for (rel, batch) in batches() {
            engine.apply_batch(rel, &batch);
        }
        assert_eq!(engine.totals.batches, 5);
        assert!(engine.totals.eval.instructions() > 0);
        assert!(engine.totals.throughput() > 0.0);
        assert!(engine.database().counters().probes() > 0);
    }
}
