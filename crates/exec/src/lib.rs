//! # hotdog-exec
//!
//! The local execution engine for compiled view-maintenance plans:
//!
//! * [`database::Database`] — one multi-indexed record pool per materialized
//!   view, with automatic secondary-index creation driven by the plan's
//!   access-pattern analysis;
//! * [`engine::LocalEngine`] — the trigger interpreter, supporting
//!   single-tuple and batched execution (with optional batch
//!   pre-aggregation) and metering evaluator/storage operation counts;
//! * [`vectorized`] — the columnar fast path: trigger statements compiled
//!   to slot-addressed [`vectorized::VectorPlan`]s executed one operator per
//!   batch over column slices, bit-identical to the reference interpreter
//!   (toggle with `HOTDOG_COLUMNAR`).
//!
//! Both the local engine and the distributed `WorkerState` funnel every
//! trigger statement through [`vectorized::eval_vectorized`] first and fall
//! back to the row-at-a-time [`Evaluator`](hotdog_algebra::eval::Evaluator)
//! for shapes the vectorizer does not cover, so the two interpreters can
//! never diverge observably.

#![forbid(unsafe_code)]

pub mod database;
pub mod engine;
pub mod vectorized;

pub use database::{Database, ExecCatalog};
pub use engine::{relabel, used_delta_columns, BatchStats, EngineTotals, ExecMode, LocalEngine};
pub use vectorized::{columnar_enabled, eval_vectorized, set_columnar, VectorPlan};
