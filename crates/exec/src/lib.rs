//! # hotdog-exec
//!
//! The local execution engine for compiled view-maintenance plans:
//!
//! * [`database::Database`] — one multi-indexed record pool per materialized
//!   view, with automatic secondary-index creation driven by the plan's
//!   access-pattern analysis;
//! * [`engine::LocalEngine`] — the trigger interpreter, supporting
//!   single-tuple and batched execution (with optional batch
//!   pre-aggregation) and metering evaluator/storage operation counts.

#![forbid(unsafe_code)]

pub mod database;
pub mod engine;

pub use database::{Database, ExecCatalog};
pub use engine::{relabel, used_delta_columns, BatchStats, EngineTotals, ExecMode, LocalEngine};
