//! Vectorized (columnar) trigger interpretation.
//!
//! The reference [`Evaluator`](hotdog_algebra::eval::Evaluator) walks a
//! trigger statement once **per tuple**: every join level re-materializes a
//! `Vec<(String, Value)>` binding frame, every variable reference is a
//! linear reverse scan with string compares, and every projection resolves
//! column names again.  For batched IVM (the paper's Section 3.3 / 5.2.2
//! regime) that per-tuple interpretive overhead dominates the actual storage
//! work.
//!
//! This module compiles the statement shape the recursive IVM compiler
//! actually emits — an optional `Sum`/`Exists` head over a **left-deep join
//! chain** whose leftmost term is a full relation scan — into a
//! [`VectorPlan`]: variable names are resolved to column *slots* once, and
//! execution proceeds one operator at a time over whole column slices
//! ([`ColumnarBatch`]-style `Vec<Value>` columns), using the kernels of
//! `hotdog_storage::columnar` (`compact_column` for filters,
//! `gather_column` for probe fan-out).  Hash-join probes still go through
//! the [`Catalog`] — i.e. through the `hotdog-storage` record pool and its
//! secondary hash indexes, which *are* the join's build side.
//!
//! # Bit-for-bit parity
//!
//! The vectorized path is held to the reference interpreter **exactly**, not
//! approximately: same emission order, same floating-point operation order,
//! same [`EvalCounters`] — so the three-backend differential oracle and the
//! deterministic telemetry contract hold whether the knob is on or off.
//! Concretely:
//!
//! * rows flow in scan order, probes fan out depth-first exactly like the
//!   tuple-at-a-time nested-loop order;
//! * multiplicities accumulate in chain order (`(m1 * m2) * m3 …`), and
//!   `Sum` groups are accumulated in emission order into a hash map, then
//!   epsilon-filtered and sorted — byte-identical to
//!   `Evaluator::aggregate`/`emit_groups`;
//! * every counter increment of the reference path (`scans`, `lookups`,
//!   `slices`, `tuples_visited`, `emissions`) is reproduced at the same
//!   logical point.
//!
//! Statements outside the supported shape (unions, nested aggregates,
//! `AssignQuery`, correlated subqueries, repeated unbound columns in one
//! relation reference) fall back to the reference interpreter — [`compile`]
//! simply returns `None`.
//!
//! # The knob
//!
//! `HOTDOG_COLUMNAR=0` (or `row`/`off`/`false`) disables the fast path
//! process-wide; anything else — including unset — enables it.  Benchmarks
//! and the differential tests flip it at runtime via [`set_columnar`].
//!
//! # Example
//!
//! Both interpreters produce the same relation for a supported shape —
//! here a grouped count over a join, evaluated against a hand-built
//! catalog:
//!
//! ```
//! use hotdog_algebra::eval::{EvalCounters, Evaluator};
//! use hotdog_algebra::expr::{join, rel, sum, RelKind};
//! use hotdog_algebra::{MapCatalog, Relation, Schema, Tuple, Value};
//! use hotdog_exec::vectorized::eval_vectorized;
//!
//! let mut catalog = MapCatalog::new();
//! let mut r = Relation::new(Schema::new(["A", "B"]));
//! r.add(Tuple(vec![Value::Long(1), Value::Long(10)]), 1.0);
//! r.add(Tuple(vec![Value::Long(2), Value::Long(10)]), 1.0);
//! let mut s = Relation::new(Schema::new(["B", "C"]));
//! s.add(Tuple(vec![Value::Long(10), Value::Long(7)]), 1.0);
//! catalog.insert("R", RelKind::Base, r);
//! catalog.insert("S", RelKind::Base, s);
//!
//! let q = sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"])));
//! let mut counters = EvalCounters::default();
//! let fast = eval_vectorized(&q, &catalog, &mut counters).expect("supported shape");
//!
//! let mut reference = Evaluator::new(&catalog);
//! let slow = reference.eval(&q);
//! assert_eq!(fast.checksum(), slow.checksum()); // bit-identical
//! assert_eq!(counters, reference.counters); // same work accounting
//! ```
//!
//! [`ColumnarBatch`]: hotdog_storage::columnar::ColumnarBatch

use hotdog_algebra::eval::{Catalog, EvalCounters};
use hotdog_algebra::expr::{CmpOp, Expr, RelKind, ValExpr};
use hotdog_algebra::relation::Relation;
use hotdog_algebra::ring::{Mult, MULT_EPSILON};
use hotdog_algebra::schema::Schema;
use hotdog_algebra::tuple::Tuple;
use hotdog_algebra::value::Value;
use hotdog_storage::columnar::{compact_column, compact_mults, gather_column};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// The knob
// ---------------------------------------------------------------------------

/// 0 = not yet resolved, 1 = row interpreter, 2 = columnar fast path.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Whether the vectorized fast path is enabled (default: yes; disable with
/// `HOTDOG_COLUMNAR=0`).  The environment is consulted once; later flips go
/// through [`set_columnar`].
pub fn columnar_enabled() -> bool {
    match MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = match std::env::var("HOTDOG_COLUMNAR") {
                Ok(v) => !matches!(v.as_str(), "0" | "off" | "row" | "false"),
                Err(_) => true,
            };
            MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Override the `HOTDOG_COLUMNAR` knob process-wide (benchmarks and the
/// columnar-vs-row differential arm use this to compare both interpreters in
/// one process).  Both interpreters produce bit-identical results, so
/// flipping mid-run changes performance, never semantics.
pub fn set_columnar(enabled: bool) {
    MODE.store(if enabled { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Compiled form
// ---------------------------------------------------------------------------

/// A [`ValExpr`] with variable names resolved to frame slots.
enum ValProg {
    Slot(usize),
    Lit(Value),
    Add(Box<ValProg>, Box<ValProg>),
    Sub(Box<ValProg>, Box<ValProg>),
    Mul(Box<ValProg>, Box<ValProg>),
    Div(Box<ValProg>, Box<ValProg>),
}

impl ValProg {
    /// Resolve every variable to a slot; `None` if any is unbound at this
    /// point in the chain (the reference path would panic — bail to it so
    /// behavior, including the panic message, is unchanged).
    fn compile(v: &ValExpr, slots: &HashMap<String, usize>) -> Option<ValProg> {
        Some(match v {
            ValExpr::Var(name) => ValProg::Slot(*slots.get(name)?),
            ValExpr::Lit(v) => ValProg::Lit(v.clone()),
            ValExpr::Add(a, b) => ValProg::Add(
                Box::new(Self::compile(a, slots)?),
                Box::new(Self::compile(b, slots)?),
            ),
            ValExpr::Sub(a, b) => ValProg::Sub(
                Box::new(Self::compile(a, slots)?),
                Box::new(Self::compile(b, slots)?),
            ),
            ValExpr::Mul(a, b) => ValProg::Mul(
                Box::new(Self::compile(a, slots)?),
                Box::new(Self::compile(b, slots)?),
            ),
            ValExpr::Div(a, b) => ValProg::Div(
                Box::new(Self::compile(a, slots)?),
                Box::new(Self::compile(b, slots)?),
            ),
        })
    }

    /// Evaluate for row `i` — the same operation tree, in the same order,
    /// as `ValExpr::eval`, with slot loads instead of string lookups.
    fn eval(&self, cols: &[Vec<Value>], i: usize) -> Value {
        match self {
            ValProg::Slot(s) => cols[*s][i].clone(),
            ValProg::Lit(v) => v.clone(),
            ValProg::Add(a, b) => {
                Value::Double(a.eval(cols, i).as_f64() + b.eval(cols, i).as_f64())
            }
            ValProg::Sub(a, b) => {
                Value::Double(a.eval(cols, i).as_f64() - b.eval(cols, i).as_f64())
            }
            ValProg::Mul(a, b) => {
                Value::Double(a.eval(cols, i).as_f64() * b.eval(cols, i).as_f64())
            }
            ValProg::Div(a, b) => {
                let d = b.eval(cols, i).as_f64();
                Value::Double(if d == 0.0 {
                    0.0
                } else {
                    a.eval(cols, i).as_f64() / d
                })
            }
        }
    }
}

/// One vectorized operator of the join chain, applied to the whole frame at
/// once (one dispatch per operator per batch).
enum Step {
    /// `Cmp` term: evaluate the predicate over the frame into a keep-mask,
    /// compact every live column through it.  `emissions += kept`.
    Filter {
        op: CmpOp,
        lhs: ValProg,
        rhs: ValProg,
    },
    /// `Const` term: scale every multiplicity.  `emissions += rows`.
    ConstWeight(f64),
    /// `Val` term: per-row value becomes a multiplicity factor.
    /// `emissions += rows`.
    ValWeight(ValProg),
    /// `AssignVal` binding a fresh variable: compute a new column.
    Assign { slot: usize, value: ValProg },
    /// `AssignVal` over an already-bound variable: equality filter.
    AssignCheck { slot: usize, value: ValProg },
    /// Relation term with every column bound: per-row point lookup through
    /// the catalog (the record pool's primary index).
    Lookup {
        name: String,
        kind: RelKind,
        key_slots: Vec<usize>,
    },
    /// Relation term with some (or no) columns bound: per-row slice through
    /// the catalog (the record pool's secondary hash index — the hash join's
    /// build side) fanning out into fresh columns; previously bound columns
    /// are gathered through the fan-out index.
    Probe {
        name: String,
        kind: RelKind,
        /// `(position in the reference, frame slot)` of bound columns.
        bound: Vec<(usize, usize)>,
        /// `(position in the reference, frame slot)` of newly bound columns.
        unbound: Vec<(usize, usize)>,
    },
}

/// Aggregation head of the statement.
enum AggKind {
    /// Plain chain: project each surviving row onto the output schema.
    None { out_slots: Vec<usize> },
    /// `Sum_[group_by](chain)`.
    Sum { key_slots: Vec<usize> },
    /// `Exists(chain)`: group by the chain's full schema, emit 1.0 each.
    Exists { key_slots: Vec<usize> },
    /// `Exists(Sum_[group_by](chain))`: the inner `Sum` emits sorted groups,
    /// the outer `Exists` re-groups them (a no-op on already-distinct keys)
    /// and emits 1.0 each — but counts both rounds of emissions, exactly
    /// like the nested reference evaluation.
    ExistsSum { key_slots: Vec<usize> },
}

/// A trigger statement compiled for columnar execution: the leftmost full
/// scan, the chain of vectorized operators, and the aggregation head.
pub struct VectorPlan {
    schema: Schema,
    source_name: String,
    source_kind: RelKind,
    /// Frame slot of each source column, in reference order.
    source_slots: Vec<usize>,
    steps: Vec<Step>,
    agg: AggKind,
    n_slots: usize,
}

/// Compile `expr` (a statement right-hand side, evaluated from an empty
/// environment) into a [`VectorPlan`], or `None` when the shape is
/// unsupported and the reference interpreter must run instead.
pub fn compile(expr: &Expr) -> Option<VectorPlan> {
    // Peel the aggregation head.
    let (head, chain): (u8, &Expr) = match expr {
        Expr::Sum { body, .. } => (1, body),
        Expr::Exists(q) => match &**q {
            Expr::Sum { body, .. } => (3, body),
            other => (2, other),
        },
        other => (0, other),
    };

    // Flatten the left spine of the join chain.  Only the *left* spine: a
    // right-nested join multiplies its own subtree first (`m1 * (m2 * m3)`),
    // which a flat chain cannot reproduce bit-for-bit.
    let mut terms: Vec<&Expr> = Vec::new();
    let mut cur = chain;
    loop {
        match cur {
            Expr::Join(l, r) => {
                if matches!(**r, Expr::Join(..)) {
                    return None;
                }
                terms.push(r);
                cur = l;
            }
            leftmost => {
                terms.push(leftmost);
                break;
            }
        }
    }
    terms.reverse();

    // The leftmost term must be a relation reference with all-distinct
    // columns (it runs as one full scan binding every column).
    let mut slots: HashMap<String, usize> = HashMap::new();
    let mut n_slots = 0usize;
    let mut alloc = |name: &str, slots: &mut HashMap<String, usize>| {
        let s = n_slots;
        slots.insert(name.to_string(), s);
        n_slots += 1;
        s
    };
    let (source_name, source_kind, source_slots) = match terms[0] {
        Expr::Rel(r) => {
            let mut ss = Vec::with_capacity(r.cols.len());
            for c in &r.cols {
                if slots.contains_key(c) {
                    return None; // repeated column in the source reference
                }
                ss.push(alloc(c, &mut slots));
            }
            (r.name.clone(), r.kind, ss)
        }
        _ => return None,
    };

    let mut steps = Vec::with_capacity(terms.len() - 1);
    for term in &terms[1..] {
        match term {
            Expr::Cmp { op, lhs, rhs } => steps.push(Step::Filter {
                op: *op,
                lhs: ValProg::compile(lhs, &slots)?,
                rhs: ValProg::compile(rhs, &slots)?,
            }),
            Expr::Const(c) => steps.push(Step::ConstWeight(*c)),
            Expr::Val(v) => steps.push(Step::ValWeight(ValProg::compile(v, &slots)?)),
            Expr::AssignVal { var, value } => {
                let value = ValProg::compile(value, &slots)?;
                match slots.get(var) {
                    Some(&slot) => steps.push(Step::AssignCheck { slot, value }),
                    None => {
                        let slot = alloc(var, &mut slots);
                        steps.push(Step::Assign { slot, value });
                    }
                }
            }
            Expr::Rel(r) => {
                let mut bound: Vec<(usize, usize)> = Vec::new();
                let mut unbound: Vec<(usize, usize)> = Vec::new();
                for (i, c) in r.cols.iter().enumerate() {
                    match slots.get(c) {
                        Some(&slot) => {
                            // A column repeated within this same reference
                            // is bound *during* its own iteration and needs
                            // the reference path's post-emit equality
                            // filter; bail.
                            if unbound.iter().any(|&(_, s)| s == slot) {
                                return None;
                            }
                            bound.push((i, slot));
                        }
                        None => {
                            let slot = alloc(c, &mut slots);
                            unbound.push((i, slot));
                        }
                    }
                }
                if !r.cols.is_empty() && bound.len() == r.cols.len() {
                    steps.push(Step::Lookup {
                        name: r.name.clone(),
                        kind: r.kind,
                        key_slots: bound.into_iter().map(|(_, s)| s).collect(),
                    });
                } else {
                    steps.push(Step::Probe {
                        name: r.name.clone(),
                        kind: r.kind,
                        bound,
                        unbound,
                    });
                }
            }
            _ => return None, // Union / Sum / Exists / AssignQuery inside the chain
        }
    }

    // Resolve the head's key columns (or the output projection) to slots.
    let schema = expr.schema();
    let resolve =
        |s: &Schema| -> Option<Vec<usize>> { s.iter().map(|c| slots.get(c).copied()).collect() };
    let agg = match head {
        0 => AggKind::None {
            out_slots: resolve(&schema)?,
        },
        1 => AggKind::Sum {
            key_slots: resolve(&schema)?,
        },
        2 => AggKind::Exists {
            key_slots: resolve(&chain.schema())?,
        },
        _ => AggKind::ExistsSum {
            key_slots: resolve(&schema)?,
        },
    };

    Some(VectorPlan {
        schema,
        source_name,
        source_kind,
        source_slots,
        steps,
        agg,
        n_slots,
    })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl VectorPlan {
    /// Execute the plan against a catalog, producing the same [`Relation`]
    /// (same contents, same insertion order, bit-identical multiplicities)
    /// and the same counter increments as
    /// `Evaluator::new(catalog).eval(expr)`.
    pub fn execute(&self, catalog: &dyn Catalog, counters: &mut EvalCounters) -> Relation {
        let mut cols: Vec<Vec<Value>> = vec![Vec::new(); self.n_slots];
        let mut mults: Vec<Mult> = Vec::new();
        // Slots bound so far, in binding order — the columns that must be
        // compacted or gathered when the frame's row set changes.
        let mut live: Vec<usize> = Vec::new();

        // Leftmost term: one full scan materializing every column.
        counters.scans += 1;
        {
            let mut visited = 0u64;
            let (slot_refs, rest) = cols.split_at_mut(0);
            let _ = slot_refs;
            let slots = &self.source_slots;
            let mut row = |t: &Tuple, m: Mult| {
                visited += 1;
                for (j, &slot) in slots.iter().enumerate() {
                    rest[slot].push(t.get(j).clone());
                }
                mults.push(m);
            };
            catalog.scan(&self.source_name, self.source_kind, &mut row);
            counters.tuples_visited += visited;
        }
        live.extend(self.source_slots.iter().copied());

        for step in &self.steps {
            let n = mults.len();
            match step {
                Step::Filter { op, lhs, rhs } => {
                    let keep: Vec<bool> = (0..n)
                        .map(|i| op.eval(&lhs.eval(&cols, i), &rhs.eval(&cols, i)))
                        .collect();
                    counters.emissions += keep.iter().filter(|&&k| k).count() as u64;
                    for &slot in &live {
                        cols[slot] = compact_column(&cols[slot], &keep);
                    }
                    mults = compact_mults(&mults, &keep);
                }
                Step::ConstWeight(c) => {
                    counters.emissions += n as u64;
                    for m in &mut mults {
                        *m *= c;
                    }
                }
                Step::ValWeight(prog) => {
                    counters.emissions += n as u64;
                    for (i, m) in mults.iter_mut().enumerate() {
                        *m *= prog.eval(&cols, i).as_f64();
                    }
                }
                Step::Assign { slot, value } => {
                    cols[*slot] = (0..n).map(|i| value.eval(&cols, i)).collect();
                    live.push(*slot);
                }
                Step::AssignCheck { slot, value } => {
                    let keep: Vec<bool> = (0..n)
                        .map(|i| cols[*slot][i] == value.eval(&cols, i))
                        .collect();
                    for &s in &live {
                        cols[s] = compact_column(&cols[s], &keep);
                    }
                    mults = compact_mults(&mults, &keep);
                }
                Step::Lookup {
                    name,
                    kind,
                    key_slots,
                } => {
                    counters.lookups += n as u64;
                    let mut keep = vec![false; n];
                    for i in 0..n {
                        let key = Tuple(key_slots.iter().map(|&s| cols[s][i].clone()).collect());
                        let m = catalog.lookup(name, *kind, &key);
                        if m != 0.0 {
                            counters.tuples_visited += 1;
                            keep[i] = true;
                            mults[i] *= m;
                        }
                    }
                    for &slot in &live {
                        cols[slot] = compact_column(&cols[slot], &keep);
                    }
                    mults = compact_mults(&mults, &keep);
                }
                Step::Probe {
                    name,
                    kind,
                    bound,
                    unbound,
                } => {
                    let positions: Vec<usize> = bound.iter().map(|&(p, _)| p).collect();
                    let mut src_idx: Vec<u32> = Vec::new();
                    let mut new_cols: Vec<Vec<Value>> = vec![Vec::new(); unbound.len()];
                    let mut new_mults: Vec<Mult> = Vec::new();
                    if bound.is_empty() {
                        // Unconstrained mid-chain reference: the reference
                        // path re-scans per driving row; the relation is
                        // immutable within the statement, so materialize the
                        // scan once and replay it — identical emission order
                        // and `tuples_visited`, one real scan.
                        let mut scanned: Option<Vec<(Tuple, Mult)>> = None;
                        for (i, &m_left) in mults.iter().enumerate() {
                            counters.scans += 1;
                            let rows = scanned.get_or_insert_with(|| {
                                let mut rows = Vec::new();
                                catalog.scan(name, *kind, &mut |t, m| {
                                    rows.push((t.clone(), m));
                                });
                                rows
                            });
                            counters.tuples_visited += rows.len() as u64;
                            for (t, m) in rows.iter() {
                                src_idx.push(i as u32);
                                for (j, &(p, _)) in unbound.iter().enumerate() {
                                    new_cols[j].push(t.get(p).clone());
                                }
                                new_mults.push(m_left * m);
                            }
                        }
                    } else {
                        for i in 0..n {
                            counters.slices += 1;
                            let key_vals: Vec<Value> =
                                bound.iter().map(|&(_, s)| cols[s][i].clone()).collect();
                            let mut visited = 0u64;
                            let m_left = mults[i];
                            catalog.slice(name, *kind, &positions, &key_vals, &mut |t, m| {
                                visited += 1;
                                src_idx.push(i as u32);
                                for (j, &(p, _)) in unbound.iter().enumerate() {
                                    new_cols[j].push(t.get(p).clone());
                                }
                                new_mults.push(m_left * m);
                            });
                            counters.tuples_visited += visited;
                        }
                    }
                    for &slot in &live {
                        cols[slot] = gather_column(&cols[slot], &src_idx);
                    }
                    for (j, &(_, slot)) in unbound.iter().enumerate() {
                        cols[slot] = std::mem::take(&mut new_cols[j]);
                        live.push(slot);
                    }
                    mults = new_mults;
                }
            }
        }

        // Aggregation head / final projection.
        let key_of = |key_slots: &[usize], i: usize| -> Tuple {
            Tuple(key_slots.iter().map(|&s| cols[s][i].clone()).collect())
        };
        let mut rel = Relation::new(self.schema.clone());
        match &self.agg {
            AggKind::None { out_slots } => {
                for (i, &m) in mults.iter().enumerate() {
                    rel.add(key_of(out_slots, i), m);
                }
            }
            AggKind::Sum { key_slots }
            | AggKind::Exists { key_slots }
            | AggKind::ExistsSum { key_slots } => {
                let mut groups: HashMap<Tuple, Mult> = HashMap::new();
                for (i, &m) in mults.iter().enumerate() {
                    *groups.entry(key_of(key_slots, i)).or_insert(0.0) += m;
                }
                let mut v: Vec<(Tuple, Mult)> = groups
                    .into_iter()
                    .filter(|(_, m)| m.abs() >= MULT_EPSILON)
                    .collect();
                v.sort_by(|a, b| a.0.cmp(&b.0));
                counters.emissions += v.len() as u64;
                match &self.agg {
                    AggKind::Sum { .. } => {
                        for (k, m) in v {
                            rel.add(k, m);
                        }
                    }
                    AggKind::Exists { .. } => {
                        for (k, _) in v {
                            rel.add(k, 1.0);
                        }
                    }
                    AggKind::ExistsSum { .. } => {
                        // The inner Sum's sorted emissions feed the outer
                        // Exists aggregation; keys are already distinct and
                        // epsilon-clean, so the outer round re-emits each
                        // group — and counts a second round of emissions.
                        counters.emissions += v.len() as u64;
                        for (k, _) in v {
                            rel.add(k, 1.0);
                        }
                    }
                    AggKind::None { .. } => unreachable!(),
                }
            }
        }
        rel
    }
}

/// Knob-gated entry point: compile and execute `expr` on the columnar fast
/// path if enabled and supported, accumulating counter increments into
/// `counters`.  Returns `None` when the caller must run the reference
/// interpreter.
pub fn eval_vectorized(
    expr: &Expr,
    catalog: &dyn Catalog,
    counters: &mut EvalCounters,
) -> Option<Relation> {
    if !columnar_enabled() {
        return None;
    }
    let plan = compile(expr)?;
    Some(plan.execute(catalog, counters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::eval::{Evaluator, MapCatalog};
    use hotdog_algebra::expr::*;
    use hotdog_algebra::tuple;

    fn catalog() -> MapCatalog {
        let mut cat = MapCatalog::new();
        cat.insert(
            "R",
            RelKind::Delta,
            Relation::from_pairs(
                Schema::new(["A", "B"]),
                vec![
                    (tuple![1, 10], 1.0),
                    (tuple![2, 10], -1.0),
                    (tuple![3, 20], 2.5),
                    (tuple![4, 30], 1.0),
                ],
            ),
        );
        cat.insert(
            "S",
            RelKind::Base,
            Relation::from_pairs(
                Schema::new(["B", "C"]),
                vec![
                    (tuple![10, 100], 1.0),
                    (tuple![10, 101], 0.5),
                    (tuple![20, 200], 3.0),
                ],
            ),
        );
        cat.insert(
            "T",
            RelKind::View,
            Relation::from_pairs(Schema::new(["C"]), vec![(tuple![100], 2.0)]),
        );
        cat
    }

    /// Both interpreters must agree on result bytes *and* counters.
    fn check(q: Expr) {
        let cat = catalog();
        let mut ev = Evaluator::new(&cat);
        let want = ev.eval(&q);
        let plan = compile(&q).unwrap_or_else(|| panic!("expected {q:?} to compile"));
        let mut counters = EvalCounters::default();
        let got = plan.execute(&cat, &mut counters);
        assert_eq!(
            want.checksum(),
            got.checksum(),
            "results diverge for {q:?}: want {want:?} got {got:?}"
        );
        assert_eq!(ev.counters, counters, "counters diverge for {q:?}");
        // Insertion order must match too: compare the raw iteration order.
        let a: Vec<_> = want.iter().map(|(t, m)| (t.clone(), m)).collect();
        let b: Vec<_> = got.iter().map(|(t, m)| (t.clone(), m)).collect();
        assert_eq!(a, b, "iteration order diverges for {q:?}");
    }

    #[test]
    fn scan_only() {
        check(delta_rel("R", ["A", "B"]));
    }

    #[test]
    fn sum_over_scan() {
        check(sum(["B"], delta_rel("R", ["A", "B"])));
    }

    #[test]
    fn join_probe_through_slice() {
        check(sum(
            ["C"],
            join(delta_rel("R", ["A", "B"]), rel("S", ["B", "C"])),
        ));
    }

    #[test]
    fn plain_join_emission_order() {
        check(join(delta_rel("R", ["A", "B"]), rel("S", ["B", "C"])));
    }

    #[test]
    fn lookup_when_all_bound() {
        check(sum_total(join_all([
            delta_rel("R", ["A", "B"]),
            rel("S", ["B", "C"]),
            view("T", ["C"]),
        ])));
    }

    #[test]
    fn filters_weights_and_assignments() {
        check(sum_total(join_all([
            delta_rel("R", ["A", "B"]),
            cmp_lit("B", CmpOp::Lt, 25),
            val_var("A"),
            assign_val("K", ValExpr::lit(10)),
            cmp_vars("B", CmpOp::Eq, "K"),
        ])));
    }

    #[test]
    fn exists_head() {
        check(exists(sum(
            ["B"],
            join(delta_rel("R", ["A", "B"]), cmp_lit("A", CmpOp::Gt, 1)),
        )));
    }

    #[test]
    fn cartesian_mid_chain_scan() {
        check(sum_total(join(
            delta_rel("R", ["A", "B"]),
            view("T", ["C"]),
        )));
    }

    #[test]
    fn unsupported_shapes_bail() {
        assert!(compile(&union(rel("R", ["A"]), rel("S", ["A"]))).is_none());
        assert!(compile(&rel("R", ["A", "A"])).is_none());
        assert!(compile(&sum_total(join(
            rel("R", ["A", "B"]),
            assign_query("X", sum_total(rel("S", ["B", "C"])))
        )))
        .is_none());
        // Right-nested join: multiplication associativity differs.
        assert!(compile(&Expr::Join(
            Box::new(rel("R", ["A"])),
            Box::new(join(rel("S", ["A"]), rel("T", ["A"])))
        ))
        .is_none());
    }

    #[test]
    fn negative_and_cancelling_multiplicities() {
        // Deletions (negative mults) flow through weights and groups.
        check(sum(
            ["B"],
            join_all([delta_rel("R", ["A", "B"]), Expr::Const(-1.0)]),
        ));
    }
}
