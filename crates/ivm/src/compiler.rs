//! View-maintenance compilers.
//!
//! Three strategies are provided, matching the systems compared in the
//! paper's evaluation:
//!
//! * [`compile_recursive`] — recursive incremental view maintenance
//!   (Section 2.2): auxiliary views materialize the update-independent parts
//!   of every delta, recursively, until deltas reference no stored relations.
//! * [`compile_classical`] — classical first-order IVM: one delta query per
//!   base relation evaluated against materialized base tables (the
//!   "IVM (PostgreSQL)" baseline of Figure 8 / Table 1).
//! * [`compile_reevaluation`] — re-evaluate the query from materialized base
//!   tables after applying each batch (the "Re-eval" baseline).

use crate::delta::{base_relations, delta};
use crate::plan::{MaintenancePlan, Statement, StmtOp, Strategy, Trigger, ViewDef};
use crate::simplify::{is_zero, join_factors, join_of, simplify};
use hotdog_algebra::expr::{Expr, RelKind, RelRef};
use hotdog_algebra::schema::Schema;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Compile a query with the requested maintenance strategy.
pub fn compile(name: &str, query: &Expr, strategy: Strategy) -> MaintenancePlan {
    match strategy {
        Strategy::Reevaluation => compile_reevaluation(name, query),
        Strategy::ClassicalIvm => compile_classical(name, query),
        Strategy::RecursiveIvm => compile_recursive(name, query),
    }
}

// ---------------------------------------------------------------------------
// Recursive incremental view maintenance
// ---------------------------------------------------------------------------

struct RecursiveCompiler {
    views: Vec<ViewDef>,
    /// canonical definition text -> index into `views`
    canon: HashMap<String, usize>,
    /// (relation, statement, target definition degree, creation index)
    statements: Vec<(String, Statement, usize, usize)>,
    /// canonical schema of each base relation (first-occurrence column names)
    base_schemas: BTreeMap<String, Vec<String>>,
    counter: usize,
}

/// Compile a query into a recursive incremental view maintenance plan.
pub fn compile_recursive(name: &str, query: &Expr) -> MaintenancePlan {
    let mut c = RecursiveCompiler {
        views: Vec::new(),
        canon: HashMap::new(),
        statements: Vec::new(),
        base_schemas: BTreeMap::new(),
        counter: 0,
    };
    for r in query.relations() {
        if r.kind == RelKind::Base {
            c.base_schemas
                .entry(r.name.clone())
                .or_insert(r.cols.clone());
        }
    }

    let top_schema = query.schema();
    c.views.push(ViewDef {
        name: name.to_string(),
        schema: top_schema,
        definition: query.clone(),
        is_top: true,
    });
    c.canon.insert(canonical(query), 0);

    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);
    let mut processed = 0usize;
    while let Some(vi) = queue.pop_front() {
        processed += 1;
        assert!(
            processed < 10_000,
            "recursive compilation did not terminate"
        );
        let vdef = c.views[vi].clone();
        for base in base_relations(&vdef.definition) {
            let d = delta(&vdef.definition, &base.name);
            if is_zero(&d) {
                continue;
            }
            let mut new_views = Vec::new();
            // `needed` = columns the statement must output (the target view's
            // schema); `bound` = columns already bound by the evaluation
            // context (none at statement entry — bindings are produced by the
            // batch and the views as evaluation proceeds left to right).
            let rewritten = c.materialize(&d, &vdef.schema, &Schema::empty(), &mut new_views);
            let expr = simplify(&Expr::Sum {
                group_by: vdef.schema.clone(),
                body: Box::new(rewritten),
            });
            let degree = vdef.definition.degree();
            let idx = c.statements.len();
            c.statements.push((
                base.name.clone(),
                Statement {
                    target: vdef.name.clone(),
                    target_schema: vdef.schema.clone(),
                    op: StmtOp::AddTo,
                    expr,
                },
                degree,
                idx,
            ));
            for nv in new_views {
                queue.push_back(nv);
            }
        }
    }

    build_plan(
        name,
        Strategy::RecursiveIvm,
        c.views,
        c.statements,
        &c.base_schemas,
    )
}

impl RecursiveCompiler {
    /// Replace every update-independent (delta-free) stored subexpression of
    /// `e` with a reference to a materialized auxiliary view, creating the
    /// view definitions on the fly.
    ///
    /// * `needed` — columns the surrounding statement must be able to output
    ///   (the target view schema plus enclosing group-by columns);
    /// * `bound` — columns already bound by the evaluation context *before*
    ///   this subexpression is reached (batch columns of factors to the
    ///   left, etc.); only these may be re-exposed as correlation columns of
    ///   an auxiliary view.
    fn materialize(
        &mut self,
        e: &Expr,
        needed: &Schema,
        bound: &Schema,
        new_views: &mut Vec<usize>,
    ) -> Expr {
        // A whole delta-free, *flat* stored subexpression is materialized
        // directly (this is the path taken by nested-aggregate bodies such
        // as the per-partkey average of TPC-H Q17).  Non-flat expressions
        // (assignments, Exists) are never materialized wholesale because
        // lifting them would lose the variables they bind; we recurse into
        // them instead.
        if !e.has_delta_relations()
            && e.degree() >= 1
            && is_flat_stored(e)
            && !is_bare_view(e)
            && e.input_variables().is_empty()
        {
            return self.intern_group(e, bound, &needed.union(bound), new_views);
        }
        match e {
            Expr::Sum { group_by, body } => {
                let needed2 = needed.union(group_by);
                Expr::Sum {
                    group_by: group_by.clone(),
                    body: Box::new(self.materialize(body, &needed2, bound, new_views)),
                }
            }
            Expr::Union(l, r) => Expr::Union(
                Box::new(self.materialize(l, needed, bound, new_views)),
                Box::new(self.materialize(r, needed, bound, new_views)),
            ),
            Expr::Exists(q) => {
                Expr::Exists(Box::new(self.materialize(q, needed, bound, new_views)))
            }
            Expr::AssignQuery { var, query } => Expr::AssignQuery {
                var: var.clone(),
                query: Box::new(self.materialize(query, needed, bound, new_views)),
            },
            Expr::Join(..) => self.materialize_join(e, needed, bound, new_views),
            other => other.clone(),
        }
    }

    /// Materialize the delta-free factors of a join term, grouped by join
    /// connectivity (disconnected components are stored separately, per the
    /// paper's footnote on disconnected join graphs).
    fn materialize_join(
        &mut self,
        e: &Expr,
        needed: &Schema,
        bound: &Schema,
        new_views: &mut Vec<usize>,
    ) -> Expr {
        let factors = join_factors(e);

        // Classify factors.
        let mut groupable: Vec<Expr> = Vec::new();
        let mut delta_factors: Vec<Expr> = Vec::new();
        let mut assign_factors: Vec<Expr> = Vec::new();
        let mut rest_factors: Vec<Expr> = Vec::new();
        for f in factors {
            let flat = is_flat_stored(&f);
            if !f.has_delta_relations() && f.degree() >= 1 && flat && f.input_variables().is_empty()
            {
                groupable.push(f);
            } else if f.has_delta_relations() {
                delta_factors.push(f);
            } else if matches!(
                f,
                Expr::AssignVal { .. } | Expr::AssignQuery { .. } | Expr::Exists(_)
            ) {
                assign_factors.push(f);
            } else if f.degree() >= 1 {
                // Delta-free but nested (e.g. an uncorrelated stored nested
                // aggregate): recurse so its internals get materialized.
                assign_factors.push(f);
            } else {
                rest_factors.push(f);
            }
        }

        // Columns bound once all delta-dependent factors have been evaluated
        // (they are placed before the materialized views in the rebuilt
        // term, so views and trailing factors can correlate with them).
        let mut bound_after_deltas = bound.clone();
        for f in &delta_factors {
            bound_after_deltas = bound_after_deltas.union(&f.schema());
        }

        // Columns any factor of this term requires from its context (e.g. a
        // trailing comparison on `l_quantity`): materialization *inside* the
        // term — including inside nested union branches — must keep these
        // columns available, so they are added to the `needed` set threaded
        // through every recursive call below.
        let mut term_needed = needed.clone();
        for f in delta_factors
            .iter()
            .chain(assign_factors.iter())
            .chain(rest_factors.iter())
            .chain(groupable.iter())
        {
            term_needed = term_needed.union(&f.input_variables());
        }

        if groupable.is_empty() {
            // Nothing to extract at this level; recurse into the factors
            // that may contain nested stored subexpressions, threading the
            // bound columns accumulated left to right.
            let mut out: Vec<Expr> = Vec::new();
            let mut running_bound = bound.clone();
            for f in delta_factors {
                out.push(self.materialize(&f, &term_needed, &running_bound, new_views));
                running_bound = running_bound.union(&f.schema());
            }
            for f in assign_factors {
                out.push(self.materialize(&f, &term_needed, &running_bound, new_views));
                running_bound = running_bound.union(&f.schema());
            }
            out.extend(rest_factors);
            return join_of(out);
        }

        // Columns referenced by the rest of the statement (join keys with the
        // batch, output columns, variables of trailing predicates).  Inner
        // columns of nested factors are included too: a nested aggregate
        // correlates with the group through shared column names, so those
        // columns must survive in the materialized view's schema.
        let mut used_elsewhere = term_needed.union(&bound_after_deltas);
        for f in assign_factors.iter().chain(rest_factors.iter()) {
            used_elsewhere = used_elsewhere.union(&f.schema());
            used_elsewhere = used_elsewhere.union(&f.input_variables());
            used_elsewhere = used_elsewhere.union(&inner_columns(f));
        }

        // Group the stored factors into join-connected components.
        let components = connected_components(&groupable);
        let mut view_refs = Vec::new();
        for comp in components {
            let group = join_of(comp);
            view_refs.push(self.intern_group(
                &group,
                &bound_after_deltas,
                &used_elsewhere,
                new_views,
            ));
        }

        // Rebuild the term.  Preference order: batch-driven factors first
        // (they drive the iteration), then the materialized views (probed by
        // lookup/slice), then nested factors, then residual predicates — but
        // a factor is only placed once the variables it *requires from the
        // context* are bound by the factors already placed, preserving the
        // left-to-right information flow of the model of computation.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Prio {
            Delta,
            View,
            Nested,
            Rest,
        }
        let mut pending: Vec<(Prio, usize, Expr, bool)> = Vec::new();
        for (i, f) in delta_factors.into_iter().enumerate() {
            pending.push((Prio::Delta, i, f, true));
        }
        for (i, v) in view_refs.into_iter().enumerate() {
            pending.push((Prio::View, i, v, false));
        }
        for (i, f) in assign_factors.into_iter().enumerate() {
            pending.push((Prio::Nested, i, f, true));
        }
        for (i, f) in rest_factors.into_iter().enumerate() {
            pending.push((Prio::Rest, i, f, false));
        }

        let mut out: Vec<Expr> = Vec::new();
        let mut running_bound = bound.clone();
        while !pending.is_empty() {
            // Lowest (priority, original index) among the factors whose
            // context requirements are already satisfied; if none is
            // eligible (should not happen for well-formed queries), fall
            // back to the overall lowest to guarantee progress.
            let eligible = pending
                .iter()
                .enumerate()
                .filter(|(_, (_, _, f, _))| f.input_variables().subset_of(&running_bound))
                .min_by(|(_, a), (_, b)| (&a.0, a.1).cmp(&(&b.0, b.1)))
                .map(|(pos, _)| pos);
            let pos = eligible.unwrap_or_else(|| {
                pending
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| (&a.0, a.1).cmp(&(&b.0, b.1)))
                    .map(|(pos, _)| pos)
                    .unwrap()
            });
            let (_, _, f, recurse) = pending.remove(pos);
            let placed = if recurse {
                self.materialize(&f, &term_needed, &running_bound, new_views)
            } else {
                f
            };
            running_bound = running_bound.union(&placed.schema());
            out.push(placed);
        }
        join_of(out)
    }

    /// Create (or reuse) the auxiliary view materializing `group`, projected
    /// onto the columns the surrounding statement actually needs, and return
    /// the replacing view reference.
    fn intern_group(
        &mut self,
        group: &Expr,
        corr_sources: &Schema,
        used_elsewhere: &Schema,
        new_views: &mut Vec<usize>,
    ) -> Expr {
        let out_schema = group.schema();
        let inner = inner_columns(group);
        let used = corr_sources.union(used_elsewhere);
        // Output columns used downstream plus inner columns correlated with
        // the already-bound context (safe to re-expose: they will be bound
        // at the view's use site, turning the probe into a lookup/slice).
        let mut view_schema = out_schema.intersect(&used);
        view_schema = view_schema.union(&inner.intersect(corr_sources));
        let definition = simplify(&lift(group, &view_schema));
        let key = canonical(&definition);
        let idx = if let Some(&i) = self.canon.get(&key) {
            i
        } else {
            self.counter += 1;
            let name = format!("M{}", self.counter);
            let idx = self.views.len();
            self.views.push(ViewDef {
                name,
                schema: definition.schema(),
                definition: definition.clone(),
                is_top: false,
            });
            self.canon.insert(key, idx);
            new_views.push(idx);
            idx
        };
        let v = &self.views[idx];
        Expr::Rel(RelRef {
            name: v.name.clone(),
            kind: RelKind::View,
            cols: v.schema.columns().to_vec(),
        })
    }
}

/// Whether a factor is a "flat" stored expression that can be grouped and
/// materialized directly: relational terms, joins of them, aggregations of
/// them, possibly mixed with value terms and comparisons — but no nested
/// assignments or existential subqueries.
fn is_flat_stored(e: &Expr) -> bool {
    let mut flat = true;
    e.visit(&mut |n| {
        if matches!(n, Expr::AssignQuery { .. } | Expr::Exists(_)) {
            flat = false;
        }
    });
    flat
}

fn is_bare_view(e: &Expr) -> bool {
    matches!(e, Expr::Rel(r) if r.kind == RelKind::View)
}

/// All column names mentioned anywhere inside an expression (including
/// columns projected away by inner aggregates).
fn inner_columns(e: &Expr) -> Schema {
    let mut s = Schema::empty();
    e.visit(&mut |n| match n {
        Expr::Rel(r) => {
            for c in &r.cols {
                s.push(c.clone());
            }
        }
        Expr::AssignVal { var, .. } | Expr::AssignQuery { var, .. } => s.push(var.clone()),
        _ => {}
    });
    s
}

/// Project/extend an expression so that its output schema becomes exactly
/// `schema` (re-exposing correlated columns that an inner aggregate had
/// projected away).
fn lift(e: &Expr, schema: &Schema) -> Expr {
    if e.schema().same_columns(schema) {
        return e.clone();
    }
    match e {
        Expr::Sum { body, .. } => Expr::Sum {
            group_by: schema.clone(),
            body: body.clone(),
        },
        Expr::Exists(q) => Expr::Exists(Box::new(lift(q, schema))),
        other => Expr::Sum {
            group_by: schema.clone(),
            body: Box::new(other.clone()),
        },
    }
}

/// Group join factors into connected components by shared column names.
fn connected_components(factors: &[Expr]) -> Vec<Vec<Expr>> {
    let n = factors.len();
    let schemas: Vec<Schema> = factors.iter().map(|f| f.schema()).collect();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !schemas[i].intersect(&schemas[j]).is_empty() {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<Expr>> = BTreeMap::new();
    for (i, factor) in factors.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(factor.clone());
    }
    groups.into_values().collect()
}

fn canonical(e: &Expr) -> String {
    e.to_string()
}

// ---------------------------------------------------------------------------
// Classical IVM and re-evaluation baselines
// ---------------------------------------------------------------------------

/// Rewrite every base-relation reference into a view reference with the same
/// name (the baselines materialize base tables under their own names).
fn base_to_view(e: &Expr) -> Expr {
    match e {
        Expr::Rel(r) if r.kind == RelKind::Base => Expr::Rel(RelRef {
            name: r.name.clone(),
            kind: RelKind::View,
            cols: r.cols.clone(),
        }),
        other => other.map_children(&mut |c| base_to_view(c)),
    }
}

fn base_table_views(query: &Expr) -> (Vec<ViewDef>, BTreeMap<String, Vec<String>>) {
    let mut schemas = BTreeMap::new();
    let mut views = Vec::new();
    for r in query.relations() {
        if r.kind == RelKind::Base && !schemas.contains_key(&r.name) {
            schemas.insert(r.name.clone(), r.cols.clone());
            views.push(ViewDef {
                name: r.name.clone(),
                schema: Schema::new(r.cols.iter().cloned()),
                definition: Expr::Rel(r.clone()),
                is_top: false,
            });
        }
    }
    (views, schemas)
}

/// Compile the classical (first-order) incremental maintenance plan.
pub fn compile_classical(name: &str, query: &Expr) -> MaintenancePlan {
    let (base_views, base_schemas) = base_table_views(query);
    let top_schema = query.schema();
    let mut views = vec![ViewDef {
        name: name.to_string(),
        schema: top_schema.clone(),
        definition: query.clone(),
        is_top: true,
    }];
    views.extend(base_views);

    let mut statements = Vec::new();
    for (idx, (rel, cols)) in base_schemas.iter().enumerate() {
        let d = delta(query, rel);
        if !is_zero(&d) {
            statements.push((
                rel.clone(),
                Statement {
                    target: name.to_string(),
                    target_schema: top_schema.clone(),
                    op: StmtOp::AddTo,
                    expr: simplify(&Expr::Sum {
                        group_by: top_schema.clone(),
                        body: Box::new(base_to_view(&d)),
                    }),
                },
                usize::MAX, // top view first
                idx * 2,
            ));
        }
        statements.push((
            rel.clone(),
            Statement {
                target: rel.clone(),
                target_schema: Schema::new(cols.iter().cloned()),
                op: StmtOp::AddTo,
                expr: Expr::Rel(RelRef {
                    name: rel.clone(),
                    kind: RelKind::Delta,
                    cols: cols.clone(),
                }),
            },
            0,
            idx * 2 + 1,
        ));
    }
    build_plan(
        name,
        Strategy::ClassicalIvm,
        views,
        statements,
        &base_schemas,
    )
}

/// Compile the re-evaluation plan (refresh the base tables, then recompute
/// the query from scratch).
pub fn compile_reevaluation(name: &str, query: &Expr) -> MaintenancePlan {
    let (base_views, base_schemas) = base_table_views(query);
    let top_schema = query.schema();
    let mut views = vec![ViewDef {
        name: name.to_string(),
        schema: top_schema.clone(),
        definition: query.clone(),
        is_top: true,
    }];
    views.extend(base_views);

    let mut statements = Vec::new();
    for (idx, (rel, cols)) in base_schemas.iter().enumerate() {
        statements.push((
            rel.clone(),
            Statement {
                target: rel.clone(),
                target_schema: Schema::new(cols.iter().cloned()),
                op: StmtOp::AddTo,
                expr: Expr::Rel(RelRef {
                    name: rel.clone(),
                    kind: RelKind::Delta,
                    cols: cols.clone(),
                }),
            },
            usize::MAX,
            idx * 2,
        ));
        statements.push((
            rel.clone(),
            Statement {
                target: name.to_string(),
                target_schema: top_schema.clone(),
                op: StmtOp::SetTo,
                expr: simplify(&Expr::Sum {
                    group_by: top_schema.clone(),
                    body: Box::new(base_to_view(query)),
                }),
            },
            0,
            idx * 2 + 1,
        ));
    }
    build_plan(
        name,
        Strategy::Reevaluation,
        views,
        statements,
        &base_schemas,
    )
}

// ---------------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------------

fn build_plan(
    name: &str,
    strategy: Strategy,
    views: Vec<ViewDef>,
    statements: Vec<(String, Statement, usize, usize)>,
    base_schemas: &BTreeMap<String, Vec<String>>,
) -> MaintenancePlan {
    let mut triggers: Vec<Trigger> = base_schemas
        .iter()
        .map(|(rel, cols)| Trigger {
            relation: rel.clone(),
            relation_schema: Schema::new(cols.iter().cloned()),
            statements: Vec::new(),
        })
        .collect();
    // Order statements within each trigger by decreasing target complexity
    // (the data-flow dependency order of Section 2.3), breaking ties by
    // creation order.
    let mut sorted = statements;
    sorted.sort_by(|a, b| b.2.cmp(&a.2).then(a.3.cmp(&b.3)));
    for (rel, stmt, _, _) in sorted {
        if let Some(t) = triggers.iter_mut().find(|t| t.relation == rel) {
            t.statements.push(stmt);
        }
    }
    MaintenancePlan {
        query_name: name.to_string(),
        strategy,
        top_view: name.to_string(),
        views,
        triggers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;

    fn example_query() -> Expr {
        // Example 2.1/2.2: Sum_[B](R(A,B) ⋈ S(B,C) ⋈ T(C,D))
        sum(
            ["B"],
            join_all([
                rel("R", ["A", "B"]),
                rel("S", ["B", "C"]),
                rel("T", ["C", "D"]),
            ]),
        )
    }

    #[test]
    fn recursive_plan_matches_example_2_2_structure() {
        let plan = compile_recursive("Q", &example_query());
        // Views: top Q, M_ST(B), M_RS(B,C), M_R(B), M_S(B,C), M_T(C)
        // (names are generated, so check schemas/definitions).
        assert_eq!(plan.top().schema.columns(), ["B"]);
        assert!(plan.views.len() >= 5, "plan: {}", plan.pretty());
        // The R-trigger's first statement maintains the top view using a
        // single auxiliary view over B (the S⋈T pre-join).
        let trig = plan.trigger("R").unwrap();
        assert_eq!(trig.statements[0].target, "Q");
        let first = trig.statements[0].expr.to_string();
        assert!(first.contains("ΔR"), "got {first}");
        assert!(
            !first.contains("S("),
            "S must be materialized away: {first}"
        );
        // All three relations have triggers.
        assert_eq!(plan.triggers.len(), 3);
    }

    #[test]
    fn recursive_plan_statements_reference_only_views_and_deltas() {
        for q in [
            example_query(),
            sum_total(join(rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 3))),
            exists(sum(
                ["A"],
                join(rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 3)),
            )),
        ] {
            let plan = compile_recursive("Q", &q);
            for t in &plan.triggers {
                for s in &t.statements {
                    for r in s.expr.relations() {
                        assert_ne!(
                            r.kind,
                            RelKind::Base,
                            "statement references base relation {} directly:\n{}",
                            r.name,
                            plan.pretty()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn recursive_plan_orders_statements_by_decreasing_complexity() {
        let plan = compile_recursive("Q", &example_query());
        for t in &plan.triggers {
            let degrees: Vec<usize> = t
                .statements
                .iter()
                .map(|s| {
                    plan.view(&s.target)
                        .map(|v| v.definition.degree())
                        .unwrap_or(0)
                })
                .collect();
            let mut sorted = degrees.clone();
            sorted.sort_by(|a, b| b.cmp(a));
            assert_eq!(degrees, sorted, "trigger {} out of order", t.relation);
        }
    }

    #[test]
    fn disconnected_join_components_materialize_separately() {
        // Δ_S of the example has R and T disconnected once S is removed;
        // they must become two separate auxiliary views, not a cross product.
        let plan = compile_recursive("Q", &example_query());
        let trig = plan.trigger("S").unwrap();
        let top_stmt = &trig.statements[0];
        let view_refs: Vec<_> = top_stmt
            .expr
            .relations()
            .into_iter()
            .filter(|r| r.kind == RelKind::View)
            .collect();
        assert_eq!(view_refs.len(), 2, "stmt: {top_stmt}");
        for v in view_refs {
            let def = &plan.view(&v.name).unwrap().definition;
            assert!(
                def.degree() == 1,
                "component view should hold one relation: {def}"
            );
        }
    }

    #[test]
    fn q17_style_nested_aggregate_materializes_per_key_view() {
        // Sum_[](L(pk,qty) ⋈ (X := Sum_[](L2(pk,qty2)⋈[qty2])) ⋈ (qty < X))
        let nested = sum_total(join(rel("LINEITEM", ["pk", "qty2"]), val_var("qty2")));
        let q = sum_total(join_all([
            rel("LINEITEM", ["pk", "qty"]),
            assign_query("X", nested),
            cmp_vars("qty", CmpOp::Lt, "X"),
        ]));
        let plan = compile_recursive("Q17", &q);
        // Some auxiliary view must carry pk (the correlated key), i.e. the
        // per-partkey nested aggregate.
        assert!(
            plan.views
                .iter()
                .any(|v| !v.is_top && v.schema.contains("pk")),
            "plan: {}",
            plan.pretty()
        );
        // And no statement references LINEITEM as a base relation.
        for t in &plan.triggers {
            for s in &t.statements {
                assert!(s.expr.relations().iter().all(|r| r.kind != RelKind::Base));
            }
        }
    }

    #[test]
    fn classical_plan_has_base_table_views_and_two_statements_per_trigger() {
        let plan = compile_classical("Q", &example_query());
        assert_eq!(plan.views.len(), 4); // top + R, S, T
        for t in &plan.triggers {
            assert_eq!(t.statements.len(), 2);
            assert_eq!(t.statements[0].target, "Q");
            assert_eq!(t.statements[1].target, t.relation);
        }
    }

    #[test]
    fn reevaluation_plan_replaces_top_view() {
        let plan = compile_reevaluation("Q", &example_query());
        for t in &plan.triggers {
            assert_eq!(t.statements[0].op, StmtOp::AddTo); // base refresh
            assert_eq!(t.statements[1].op, StmtOp::SetTo); // recompute
            assert_eq!(t.statements[1].target, "Q");
        }
    }

    #[test]
    fn index_requirements_cover_sliced_views() {
        let plan = compile_recursive("Q", &example_query());
        let specs = plan.index_requirements();
        // M_S(B,C) is probed with only B bound in the R-trigger, so at least
        // one partial-key index must be required.
        assert!(
            !specs.is_empty(),
            "expected secondary indexes, plan: {}",
            plan.pretty()
        );
    }

    #[test]
    fn compile_dispatches_on_strategy() {
        let q = example_query();
        assert_eq!(
            compile("Q", &q, Strategy::Reevaluation).strategy,
            Strategy::Reevaluation
        );
        assert_eq!(
            compile("Q", &q, Strategy::ClassicalIvm).strategy,
            Strategy::ClassicalIvm
        );
        assert_eq!(
            compile("Q", &q, Strategy::RecursiveIvm).strategy,
            Strategy::RecursiveIvm
        );
    }

    #[test]
    fn single_relation_query_needs_no_auxiliary_views() {
        let q = sum_total(join(rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 3)));
        let plan = compile_recursive("Q", &q);
        assert_eq!(plan.views.len(), 1, "plan: {}", plan.pretty());
        assert_eq!(plan.triggers.len(), 1);
        assert_eq!(plan.statement_count(), 1);
    }
}
