//! Delta derivation (Section 3.1, "Delta Queries").
//!
//! Given a query expression `Q` and a base relation `R`, [`delta`] constructs
//! the delta query `Δ_R Q` such that `Q(D + ΔD) = Q(D) + Δ_R Q(D, ΔR)` for a
//! batch of updates `ΔR` (insertions and deletions encoded as positive and
//! negative multiplicities).  The rules follow the paper:
//!
//! ```text
//! Δ(R)            = ΔR                      (for the updated relation)
//! Δ(Q1 + Q2)      = ΔQ1 + ΔQ2
//! Δ(Q1 ⋈ Q2)      = ΔQ1⋈Q2 + Q1⋈ΔQ2 + ΔQ1⋈ΔQ2
//! Δ(Sum_A Q)      = Sum_A ΔQ
//! Δ(var := Q)     = Q_dom ⋈ ((var := Q+ΔQ) − (var := Q))   [revised rule]
//! Δ(Exists Q)     = Q_dom ⋈ (Exists(Q+ΔQ) − Exists(Q))
//! Δ(anything else)= 0
//! ```
//!
//! where `Q_dom` is produced by domain extraction (Section 3.2.2) and
//! restricted to the variables visible to the surrounding context, so that
//! the guard acts as a pure filter and never changes multiplicities.

use crate::domain::extract_domain;
use crate::simplify::simplify;
use hotdog_algebra::expr::{Expr, RelKind, RelRef};
use hotdog_algebra::schema::Schema;

/// Derive the delta of `expr` for updates to base relation `relation`.
/// The result is simplified (zero terms pruned).
pub fn delta(expr: &Expr, relation: &str) -> Expr {
    simplify(&delta_bound(expr, relation, &Schema::empty()))
}

/// Delta derivation threading the set of variables bound by the surrounding
/// context (columns of join factors to the left and of the enclosing
/// trigger).  The bound set determines which columns a domain guard may
/// safely restrict.
pub fn delta_bound(expr: &Expr, relation: &str, bound: &Schema) -> Expr {
    match expr {
        Expr::Rel(r) => match r.kind {
            RelKind::Base if r.name == relation => Expr::Rel(RelRef {
                name: r.name.clone(),
                kind: RelKind::Delta,
                cols: r.cols.clone(),
            }),
            _ => Expr::Const(0.0),
        },
        Expr::Union(l, r) => Expr::Union(
            Box::new(delta_bound(l, relation, bound)),
            Box::new(delta_bound(r, relation, bound)),
        ),
        Expr::Join(l, r) => {
            let dl = delta_bound(l, relation, bound);
            let bound_r = bound.union(&l.schema());
            let dr = delta_bound(r, relation, &bound_r);
            // ΔQ1⋈Q2 + Q1⋈ΔQ2 + ΔQ1⋈ΔQ2, pruned of zero terms by simplify.
            let t1 = Expr::Join(Box::new(dl.clone()), Box::new((**r).clone()));
            let t2 = Expr::Join(Box::new((**l).clone()), Box::new(dr.clone()));
            let t3 = Expr::Join(Box::new(dl), Box::new(dr));
            Expr::Union(
                Box::new(Expr::Union(Box::new(t1), Box::new(t2))),
                Box::new(t3),
            )
        }
        Expr::Sum { group_by, body } => Expr::Sum {
            group_by: group_by.clone(),
            body: Box::new(delta_bound(body, relation, bound)),
        },
        Expr::AssignQuery { var, query } => {
            let dq = simplify(&delta_bound(query, relation, bound));
            if crate::simplify::is_zero(&dq) {
                return Expr::Const(0.0);
            }
            let guard = domain_guard(&dq, query, bound);
            let new_assign = Expr::AssignQuery {
                var: var.clone(),
                query: Box::new(Expr::Union(Box::new((**query).clone()), Box::new(dq))),
            };
            let old_assign = Expr::AssignQuery {
                var: var.clone(),
                query: query.clone(),
            };
            let diff = Expr::Union(
                Box::new(new_assign),
                Box::new(Expr::Join(
                    Box::new(Expr::Const(-1.0)),
                    Box::new(old_assign),
                )),
            );
            Expr::Join(Box::new(guard), Box::new(diff))
        }
        Expr::Exists(q) => {
            let dq = simplify(&delta_bound(q, relation, bound));
            if crate::simplify::is_zero(&dq) {
                return Expr::Const(0.0);
            }
            let guard = domain_guard(&dq, q, bound);
            let new_exists =
                Expr::Exists(Box::new(Expr::Union(Box::new((**q).clone()), Box::new(dq))));
            let old_exists = Expr::Exists(q.clone());
            let diff = Expr::Union(
                Box::new(new_exists),
                Box::new(Expr::Join(
                    Box::new(Expr::Const(-1.0)),
                    Box::new(old_exists),
                )),
            );
            Expr::Join(Box::new(guard), Box::new(diff))
        }
        // Constants, value terms, comparisons and assignments over values do
        // not depend on the database.
        Expr::Const(_) | Expr::Val(_) | Expr::Cmp { .. } | Expr::AssignVal { .. } => {
            Expr::Const(0.0)
        }
    }
}

/// Build the domain guard for the revised assignment/exists delta rules.
///
/// The guard is the extracted domain of the nested delta, projected onto the
/// columns that are visible to the surrounding context — either output
/// columns of the nested query (`sch(Q)`) or variables bound by the context
/// (`bound`, which covers equality correlation through shared variable
/// names).  Projecting and wrapping with `Exists` guarantees multiplicity
/// one per distinct binding, so the guard restricts the iteration domain
/// without altering the delta's multiplicities.
fn domain_guard(delta_of_nested: &Expr, nested: &Expr, bound: &Schema) -> Expr {
    let raw = extract_domain(delta_of_nested);
    if matches!(raw, Expr::Const(_)) {
        return Expr::Const(1.0);
    }
    let allowed = nested.schema().union(bound);
    let keep = raw.schema().intersect(&allowed);
    if keep.is_empty() {
        return Expr::Const(1.0);
    }
    simplify(&Expr::Exists(Box::new(Expr::Sum {
        group_by: keep,
        body: Box::new(raw),
    })))
}

/// All base relations referenced by an expression, in first-occurrence order
/// and without duplicates — the relations a maintenance program needs a
/// trigger for.
pub fn base_relations(expr: &Expr) -> Vec<RelRef> {
    let mut seen = Vec::<RelRef>::new();
    for r in expr.relations() {
        if r.kind == RelKind::Base && !seen.iter().any(|s| s.name == r.name) {
            seen.push(r);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::eval::{evaluate, MapCatalog};
    use hotdog_algebra::expr::*;
    use hotdog_algebra::relation::Relation;
    use hotdog_algebra::tuple;
    use hotdog_algebra::Schema;

    /// Example 2.1: Δ_R of Sum_[B](R ⋈ S ⋈ T) references ΔR, S and T but
    /// not R.
    #[test]
    fn example_2_1_delta_of_three_way_join() {
        let q = sum(
            ["B"],
            join_all([
                rel("R", ["A", "B"]),
                rel("S", ["B", "C"]),
                rel("T", ["C", "D"]),
            ]),
        );
        let d = delta(&q, "R");
        assert!(d.has_delta_relations());
        assert!(d.references("S", RelKind::Base));
        assert!(d.references("T", RelKind::Base));
        assert!(!d.references("R", RelKind::Base));
        // Degree decreased from 3 to 2 (flat query).
        assert_eq!(d.degree(), 2);
    }

    #[test]
    fn delta_of_unrelated_relation_is_zero() {
        let q = sum(["B"], rel("R", ["A", "B"]));
        assert_eq!(delta(&q, "S"), Expr::Const(0.0));
    }

    #[test]
    fn nested_aggregate_delta_gets_domain_guard() {
        // Q17-ish: Sum_[](L(pk,qty) ⋈ (X := Sum_[](L2(pk,qty2)*0.5)) ⋈ (qty < X))
        let nested = sum_total(join(rel("LINEITEM", ["pk", "qty2"]), val_var("qty2")));
        let q = sum_total(join_all([
            rel("LINEITEM", ["pk", "qty"]),
            assign_query("X", nested),
            cmp_vars("qty", CmpOp::Lt, "X"),
        ]));
        let d = delta(&q, "LINEITEM");
        let printed = d.to_string();
        // The revised rule recomputes old and new nested values under an
        // Exists guard over the correlated variable pk.
        assert!(printed.contains("Exists"), "missing guard in {printed}");
        assert!(d.has_delta_relations());
    }

    fn db() -> (MapCatalog, MapCatalog, MapCatalog) {
        // base catalog, delta catalog (base + registered deltas), merged catalog
        let r = Relation::from_pairs(
            Schema::new(["A", "B"]),
            vec![
                (tuple![1, 10], 1.0),
                (tuple![2, 20], 1.0),
                (tuple![4, 20], 1.0),
            ],
        );
        let s = Relation::from_pairs(
            Schema::new(["B", "C"]),
            vec![(tuple![10, 7], 1.0), (tuple![20, 8], 2.0)],
        );
        let dr = Relation::from_pairs(
            Schema::new(["A", "B"]),
            vec![(tuple![3, 20], 1.0), (tuple![1, 10], -1.0)],
        );

        let mut base = MapCatalog::new();
        base.insert("R", RelKind::Base, r.clone());
        base.insert("S", RelKind::Base, s.clone());

        let mut with_delta = base.clone();
        with_delta.insert("R", RelKind::Delta, dr.clone());

        let mut merged = MapCatalog::new();
        merged.insert("R", RelKind::Base, r.union(&dr));
        merged.insert("S", RelKind::Base, s);
        (base, with_delta, merged)
    }

    fn check_delta_correct(q: &Expr) {
        let (base, with_delta, merged) = db();
        let before = evaluate(q, &base);
        let d = delta(q, "R");
        let change = evaluate(&d, &with_delta);
        let after = evaluate(q, &merged);
        let incr = before.union(&change);
        assert!(
            after.approx_eq(&incr),
            "delta incorrect for {q}\nafter={after:?}\nincr={incr:?}\ndelta expr={d}"
        );
    }

    #[test]
    fn delta_correct_for_flat_join_aggregate() {
        check_delta_correct(&sum(
            ["B"],
            join(rel("R", ["A", "B"]), rel("S", ["B", "C"])),
        ));
    }

    #[test]
    fn delta_correct_for_filtered_count() {
        check_delta_correct(&sum_total(join(
            rel("R", ["A", "B"]),
            cmp_lit("B", CmpOp::Gt, 15),
        )));
    }

    #[test]
    fn delta_correct_for_sum_aggregate_value() {
        check_delta_correct(&sum(
            ["B"],
            join_all([rel("R", ["A", "B"]), rel("S", ["B", "C"]), val_var("C")]),
        ));
    }

    #[test]
    fn delta_correct_for_distinct_projection() {
        // SELECT DISTINCT B FROM R (Example 3.2 without the predicate).
        check_delta_correct(&exists(sum(["B"], rel("R", ["A", "B"]))));
    }

    #[test]
    fn delta_correct_for_distinct_with_predicate() {
        // SELECT DISTINCT A FROM R WHERE B > 3 (Example 3.2).
        check_delta_correct(&exists(sum(
            ["A"],
            join(rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 3)),
        )));
    }

    #[test]
    fn delta_correct_for_correlated_nested_aggregate() {
        // COUNT(*) FROM R WHERE A <= (COUNT(*) FROM R r2 WHERE r2.B = R.B)
        let nested = sum_total(rel("R", ["A2", "B"]));
        check_delta_correct(&sum_total(join_all([
            rel("R", ["A", "B"]),
            assign_query("X", nested),
            cmp_vars("A", CmpOp::Le, "X"),
        ])));
    }

    #[test]
    fn delta_correct_for_uncorrelated_nested_aggregate() {
        // COUNT(*) FROM S WHERE C < (COUNT(*) FROM R)  -- updates to R
        let nested = sum_total(rel("R", ["A2", "B2"]));
        check_delta_correct(&sum_total(join_all([
            rel("S", ["B", "C"]),
            assign_query("X", nested),
            cmp_vars("C", CmpOp::Lt, "X"),
        ])));
    }

    #[test]
    fn delta_correct_for_exists_correlated_subquery() {
        // COUNT(*) FROM S WHERE EXISTS (SELECT * FROM R WHERE R.B = S.B)
        let nested = sum_total(rel("R", ["A2", "B"]));
        check_delta_correct(&sum_total(join_all([
            rel("S", ["B", "C"]),
            assign_query("X", nested),
            cmp_lit("X", CmpOp::Ne, 0.0),
        ])));
    }

    #[test]
    fn base_relations_deduplicate() {
        let q = sum_total(join(rel("R", ["A", "B"]), rel("R", ["B", "C"])));
        let rels = base_relations(&q);
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].name, "R");
    }

    #[test]
    fn second_order_delta_of_flat_query_has_no_base_relations() {
        // Recursive IVM terminates because deltas eventually reference no
        // base relations (for flat queries).
        let q = sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"])));
        let d1 = delta(&q, "R"); // references S
        let d2 = delta(&d1, "S"); // references only deltas
        assert_eq!(d2.degree(), 0);
    }
}
