//! Domain extraction (Section 3.2.2, Figure 1).
//!
//! The delta rule for generalized variable assignment `(var := Q)` — and for
//! `Exists(Q)` — recomputes both the old and the new value of `Q`, which can
//! be as expensive as re-evaluating the whole query.  Domain extraction
//! builds a *domain expression* from the delta of the nested query: a cheap
//! expression (built mostly from the update batch) that binds exactly the
//! variables whose values can be affected by the update.  Prepending the
//! domain expression to the delta restricts the recomputation to the affected
//! tuples only.

use crate::simplify::{is_one, is_zero, join_of, simplify};
use hotdog_algebra::expr::{Expr, RelKind};
use hotdog_algebra::schema::Schema;

/// Extract the iteration-domain expression of `e` (typically the delta of a
/// nested aggregate).  Returns `Const(1.0)` when no useful restriction can be
/// derived, mirroring the `1` case of Figure 1.
pub fn extract_domain(e: &Expr) -> Expr {
    simplify(&extract(e))
}

fn extract(e: &Expr) -> Expr {
    match e {
        // Plus: the update may affect tuples coming from either branch, so
        // the propagated domain must cover both; only the columns common to
        // both branch domains can be propagated further up.
        Expr::Union(a, b) => inter_doms(&extract(a), &extract(b)),
        // Prod: domains of the factors merge (bind the union of variables),
        // preserving the left-to-right information flow.
        Expr::Join(a, b) => union_doms(extract(a), extract(b)),
        Expr::Sum { group_by, body } => {
            let dom_a = extract(body);
            if is_one(&dom_a) {
                return Expr::Const(1.0);
            }
            let dom_schema = dom_a.schema();
            let dom_gb = dom_schema.intersect(group_by);
            if dom_gb.same_columns(group_by) {
                // The domain covers the whole group-by list.  For scalar
                // aggregates (empty group-by) the unprojected domain is
                // propagated so that equality-correlated variables stay
                // available to the enclosing delta rule (Section 3.2.3);
                // otherwise reduce the schema to the aggregate's columns
                // (Example 3.2).
                if group_by.is_empty() || dom_schema.same_columns(group_by) {
                    dom_a
                } else {
                    Expr::Exists(Box::new(Expr::Sum {
                        group_by: group_by.clone(),
                        body: Box::new(dom_a),
                    }))
                }
            } else if dom_gb.is_empty() {
                Expr::Const(1.0)
            } else {
                // Reduce the domain schema to the covered part of the
                // aggregate's schema; the Exists wrapper preserves the
                // multiplicity-one domain semantics.
                Expr::Exists(Box::new(Expr::Sum {
                    group_by: dom_gb,
                    body: Box::new(dom_a),
                }))
            }
        }
        Expr::Exists(q) => extract(q),
        Expr::AssignQuery { query, .. }
            if query.has_stored_relations() || query.has_delta_relations() =>
        {
            extract(query)
        }
        Expr::Rel(r) => {
            // Delta relations are the low-cardinality leaves: the batch is
            // (by assumption) much smaller than the base relations, so it is
            // the term that restricts the iteration domain.
            if r.kind == RelKind::Delta {
                Expr::Exists(Box::new(e.clone()))
            } else {
                Expr::Const(1.0)
            }
        }
        // Comparisons, values, and assignments over values can further
        // restrict the domain and are kept verbatim (they are filtered later
        // if their variables end up unbound — see `union_doms`).
        Expr::Cmp { .. } | Expr::Val(_) | Expr::AssignVal { .. } => e.clone(),
        Expr::Const(_) => Expr::Const(1.0),
        Expr::AssignQuery { .. } => Expr::Const(1.0),
    }
}

/// Common-domain extraction for bag union: keep only the columns both
/// domains bind, and cover the tuples of either (the update can touch both
/// branches).
fn inter_doms(a: &Expr, b: &Expr) -> Expr {
    if is_one(a) || is_one(b) {
        return Expr::Const(1.0);
    }
    if is_zero(a) {
        return b.clone();
    }
    if is_zero(b) {
        return a.clone();
    }
    if a == b {
        return a.clone();
    }
    let common: Schema = a.schema().intersect(&b.schema());
    if common.is_empty() {
        return Expr::Const(1.0);
    }
    Expr::Exists(Box::new(Expr::Sum {
        group_by: common.clone(),
        body: Box::new(Expr::Union(
            Box::new(Expr::Sum {
                group_by: common.clone(),
                body: Box::new(a.clone()),
            }),
            Box::new(Expr::Sum {
                group_by: common,
                body: Box::new(b.clone()),
            }),
        )),
    }))
}

/// Merge the domains of the two factors of a product, dropping
/// non-relational restriction terms whose variables would be unbound in the
/// merged domain (they referred to columns of factors that contributed no
/// domain).
fn union_doms(a: Expr, b: Expr) -> Expr {
    let mut factors = Vec::new();
    collect_factors(a, &mut factors);
    collect_factors(b, &mut factors);
    // Drop value/comparison terms whose variables are not bound by the
    // relational part of the domain accumulated to their left.
    let mut bound = Schema::empty();
    let mut kept = Vec::new();
    for f in factors {
        match &f {
            Expr::Cmp { .. } | Expr::Val(_) => {
                let needed = f.input_variables();
                if needed.subset_of(&bound) {
                    kept.push(f);
                }
            }
            Expr::AssignVal { var, value } => {
                if value.variables().subset_of(&bound) {
                    bound.push(var.clone());
                    kept.push(f);
                }
            }
            _ => {
                bound = bound.union(&f.schema());
                kept.push(f);
            }
        }
    }
    if kept.is_empty() {
        Expr::Const(1.0)
    } else {
        join_of(kept)
    }
}

fn collect_factors(e: Expr, out: &mut Vec<Expr>) {
    if is_one(&e) {
        return;
    }
    match e {
        Expr::Join(l, r) => {
            collect_factors(*l, out);
            collect_factors(*r, out);
        }
        other => out.push(other),
    }
}

/// Build the domain expression used by the revised assignment delta rule:
/// the domain of `delta_of_nested`, projected with `Exists` so every tuple
/// carries multiplicity one (the paper's `Q_dom`).
pub fn domain_guard(delta_of_nested: &Expr) -> Expr {
    extract_domain(delta_of_nested)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;

    #[test]
    fn example_3_2_distinct_query_domain() {
        // ΔQn = Sum_[A](ΔR(A,B) * (B > 3))
        let delta_qn = sum(
            ["A"],
            join(delta_rel("R", ["A", "B"]), cmp_lit("B", CmpOp::Gt, 3)),
        );
        let dom = extract_domain(&delta_qn);
        // Expect Exists(Sum_[A](Exists(ΔR(A,B)) * (B > 3))) — i.e. a domain
        // over A built from the batch, retaining the comparison.
        assert_eq!(dom.schema().columns(), ["A"]);
        assert!(dom.has_delta_relations());
        assert!(!dom.has_stored_relations());
        let printed = dom.to_string();
        assert!(printed.contains("Exists"), "got {printed}");
        assert!(printed.contains("> 3"), "got {printed}");
    }

    #[test]
    fn scalar_aggregate_propagates_unprojected_domain() {
        // For a scalar (empty group-by) aggregate the domain keeps the batch
        // columns bound, so that an enclosing delta rule can still restrict
        // equality-correlated variables (Section 3.2.3).  Whether any of
        // those columns are usable is decided by the delta rule's guard
        // projection, not here.
        let delta = sum_total(delta_rel("S", ["B", "C"]));
        let dom = extract_domain(&delta);
        assert_eq!(dom.schema().columns(), ["B", "C"]);
        assert!(dom.has_delta_relations());
    }

    #[test]
    fn base_relations_contribute_no_domain() {
        // A delta expression built only from stored relations (no batch
        // terms) yields no restriction.
        let delta = sum(["B"], rel("S", ["B", "C"]));
        let dom = extract_domain(&delta);
        assert_eq!(dom, Expr::Const(1.0));
    }

    #[test]
    fn correlated_nested_aggregate_restricts_correlated_variable() {
        // ΔQn for Q17-style correlation: Sum_[](ΔS(B2,C) * (B = B2)).
        // The domain cannot propagate B2 through Sum_[] (empty schema), so it
        // degenerates to 1 — but at the Sum_[B2] level it restricts B2.
        let delta_inner = join(delta_rel("S", ["B2", "C"]), cmp_vars("B", CmpOp::Eq, "B2"));
        let dom = extract_domain(&sum(["B2"], delta_inner));
        assert_eq!(dom.schema().columns(), ["B2"]);
        assert!(dom.has_delta_relations());
    }

    #[test]
    fn comparisons_on_unbound_columns_are_dropped() {
        // ΔR(A,B) * S(B,C) * (C > 5): S contributes no domain, so the
        // comparison on C must be dropped rather than left dangling.
        let e = join_all([
            delta_rel("R", ["A", "B"]),
            rel("S", ["B", "C"]),
            cmp_lit("C", CmpOp::Gt, 5),
        ]);
        let dom = extract_domain(&e);
        assert!(!dom.to_string().contains("C >"), "got {dom}");
        assert!(dom.has_delta_relations());
    }

    #[test]
    fn union_intersects_domains() {
        // Δ(R + T) for updates touching both branches: common column A.
        let e = union(
            sum(["A"], delta_rel("R", ["A", "B"])),
            sum(["A"], delta_rel("T", ["A", "C"])),
        );
        let dom = extract_domain(&e);
        assert_eq!(dom.schema().columns(), ["A"]);
    }

    #[test]
    fn union_with_disjoint_domains_gives_one() {
        let e = union(
            sum(["A"], delta_rel("R", ["A", "B"])),
            sum(["C"], delta_rel("T", ["C", "D"])),
        );
        assert_eq!(extract_domain(&e), Expr::Const(1.0));
    }

    #[test]
    fn sum_projects_domain_onto_group_by() {
        let e = sum(["B"], delta_rel("R", ["A", "B"]));
        let dom = extract_domain(&e);
        assert_eq!(dom.schema().columns(), ["B"]);
        assert!(matches!(dom, Expr::Exists(_)));
    }

    #[test]
    fn sum_with_group_by_fully_covered_passes_domain_through() {
        let e = sum(["A", "B"], delta_rel("R", ["A", "B"]));
        let dom = extract_domain(&e);
        // domain already binds A and B: no extra Exists/Sum wrapper needed.
        assert_eq!(dom.schema().columns(), ["A", "B"]);
    }
}
