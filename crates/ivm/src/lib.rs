//! # hotdog-ivm
//!
//! Incremental view maintenance compilers: the paper's core contribution.
//!
//! * [`delta`](mod@delta) — delta-query derivation rules (Section 3.1),
//!   including the revised rule for generalized variable assignment;
//! * [`domain`] — the domain extraction algorithm (Section 3.2.2, Figure 1)
//!   that makes nested aggregates and existential quantification efficiently
//!   maintainable for batch updates;
//! * [`simplify`](mod@simplify) — algebraic simplification used throughout
//!   compilation;
//! * [`compiler`] — three maintenance strategies: recursive IVM
//!   (DBToaster-style, with auxiliary views), classical first-order IVM, and
//!   full re-evaluation;
//! * [`plan`] — the compiled representation (views, statements, triggers)
//!   plus access-pattern analysis for automatic index selection
//!   (Section 5.2.1).

#![forbid(unsafe_code)]

pub mod compiler;
pub mod delta;
pub mod domain;
pub mod plan;
pub mod simplify;

pub use compiler::{compile, compile_classical, compile_recursive, compile_reevaluation};
pub use delta::{base_relations, delta};
pub use domain::extract_domain;
pub use plan::{IndexSpec, MaintenancePlan, Statement, StmtOp, Strategy, Trigger, ViewDef};
pub use simplify::simplify;

#[cfg(test)]
mod proptests {
    use crate::delta::delta;
    use hotdog_algebra::eval::{evaluate, MapCatalog};
    use hotdog_algebra::expr::*;
    use hotdog_algebra::relation::Relation;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple::Tuple;
    use hotdog_algebra::value::Value;
    use proptest::prelude::*;

    fn rel_strategy(arity: usize) -> impl Strategy<Value = Vec<(Vec<i64>, i64)>> {
        prop::collection::vec((prop::collection::vec(0i64..6, arity), -2i64..3), 0..25)
    }

    fn to_relation(cols: &[&str], rows: &[(Vec<i64>, i64)]) -> Relation {
        Relation::from_pairs(
            Schema::new(cols.iter().copied()),
            rows.iter().map(|(vals, m)| {
                (
                    Tuple(vals.iter().map(|v| Value::Long(*v)).collect()),
                    *m as f64,
                )
            }),
        )
    }

    /// The queries exercised by the delta-correctness property: a flat
    /// group-by join count, a SUM aggregate, a DISTINCT projection and a
    /// correlated nested aggregate.
    fn queries() -> Vec<Expr> {
        let flat = sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"])));
        let weighted = sum(
            ["B"],
            join_all([rel("R", ["A", "B"]), rel("S", ["B", "C"]), val_var("C")]),
        );
        let distinct = exists(sum(["B"], rel("R", ["A", "B"])));
        let nested = sum_total(join_all([
            rel("R", ["A", "B"]),
            assign_query("X", sum_total(rel("S", ["B", "C2"]))),
            cmp_vars("A", CmpOp::Lt, "X"),
        ]));
        vec![flat, weighted, distinct, nested]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Fundamental delta correctness: Q(D + ΔD) = Q(D) + ΔQ(D, ΔD) for
        /// random databases and random batches of insertions/deletions, for
        /// every query shape and for updates to either relation.
        #[test]
        fn delta_rule_is_correct(
            r_rows in rel_strategy(2),
            s_rows in rel_strategy(2),
            dr_rows in rel_strategy(2),
            ds_rows in rel_strategy(2),
        ) {
            let r = to_relation(&["A", "B"], &r_rows);
            let s = to_relation(&["B", "C"], &s_rows);
            let dr = to_relation(&["A", "B"], &dr_rows);
            let ds = to_relation(&["B", "C"], &ds_rows);

            for q in queries() {
                for (target, d_rel) in [("R", &dr), ("S", &ds)] {
                    let mut base = MapCatalog::new();
                    base.insert("R", RelKind::Base, r.clone());
                    base.insert("S", RelKind::Base, s.clone());

                    let mut with_delta = base.clone();
                    with_delta.insert(target, RelKind::Delta, (*d_rel).clone());

                    let mut merged = MapCatalog::new();
                    merged.insert(
                        "R",
                        RelKind::Base,
                        if target == "R" { r.union(d_rel) } else { r.clone() },
                    );
                    merged.insert(
                        "S",
                        RelKind::Base,
                        if target == "S" { s.union(d_rel) } else { s.clone() },
                    );

                    let before = evaluate(&q, &base);
                    let change = evaluate(&delta(&q, target), &with_delta);
                    let after = evaluate(&q, &merged);
                    prop_assert!(
                        after.approx_eq(&before.union(&change)),
                        "delta mismatch for {q} on {target}\nafter={after:?}\nincr={:?}",
                        before.union(&change)
                    );
                }
            }
        }
    }
}
