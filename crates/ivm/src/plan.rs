//! Maintenance-plan representation: materialized views, trigger statements
//! and triggers, plus the access-pattern analysis that decides which
//! secondary indexes each view needs (Section 5.1/5.2.1).

use hotdog_algebra::expr::{Expr, RelKind};
use hotdog_algebra::schema::Schema;
use std::collections::BTreeMap;
use std::fmt;

/// Which maintenance strategy produced a plan.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Strategy {
    /// Re-evaluate the query from (materialized) base tables on every batch.
    Reevaluation,
    /// Classical first-order incremental view maintenance: one delta query
    /// per base relation, evaluated against materialized base tables.
    ClassicalIvm,
    /// Recursive incremental view maintenance with auxiliary views
    /// (DBToaster-style, the paper's approach).
    RecursiveIvm,
}

impl Strategy {
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Reevaluation => "REEVAL",
            Strategy::ClassicalIvm => "IVM",
            Strategy::RecursiveIvm => "RIVM",
        }
    }
}

/// A materialized view of the plan.
#[derive(Clone, Debug)]
pub struct ViewDef {
    /// Storage name (also used in `View`-kind relation references).
    pub name: String,
    /// Column names of the stored key tuple.
    pub schema: Schema,
    /// Defining query over *base* relations (used by tests and by the
    /// re-evaluation of the view from scratch).
    pub definition: Expr,
    /// `true` for the top-level query result.
    pub is_top: bool,
}

/// Statement operation: accumulate or overwrite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StmtOp {
    /// `target += expr` — merge the delta into the view.
    AddTo,
    /// `target := expr` — replace the view contents.
    SetTo,
}

/// One maintenance statement of a trigger.
#[derive(Clone, Debug)]
pub struct Statement {
    /// Name of the target materialized view.
    pub target: String,
    /// Schema of the target view (the RHS is projected onto it).
    pub target_schema: Schema,
    pub op: StmtOp,
    /// Right-hand side, referencing only `View` and `Delta` relations.
    pub expr: Expr,
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            StmtOp::AddTo => "+=",
            StmtOp::SetTo => ":=",
        };
        write!(
            f,
            "{}({:?}) {} {}",
            self.target, self.target_schema, op, self.expr
        )
    }
}

/// The maintenance trigger for one base relation: the ordered statements to
/// run when a batch of updates to that relation arrives.
#[derive(Clone, Debug)]
pub struct Trigger {
    /// Base relation whose updates this trigger handles.
    pub relation: String,
    /// Schema of the update batch.
    pub relation_schema: Schema,
    /// Statements in execution order (decreasing view complexity).
    pub statements: Vec<Statement>,
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ON UPDATE {} BY Δ{}", self.relation, self.relation)?;
        for s in &self.statements {
            writeln!(f, "  {s}")?;
        }
        Ok(())
    }
}

/// A complete maintenance plan for one query.
#[derive(Clone, Debug)]
pub struct MaintenancePlan {
    pub query_name: String,
    pub strategy: Strategy,
    /// Name of the view holding the top-level query result.
    pub top_view: String,
    /// All materialized views (top view first).
    pub views: Vec<ViewDef>,
    /// One trigger per updatable base relation.
    pub triggers: Vec<Trigger>,
}

/// A secondary-index requirement discovered by access-pattern analysis:
/// the named view is probed with exactly these key positions bound.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndexSpec {
    pub view: String,
    pub positions: Vec<usize>,
}

impl MaintenancePlan {
    /// Look up a view definition by name.
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.iter().find(|v| v.name == name)
    }

    /// The top-level view definition.
    pub fn top(&self) -> &ViewDef {
        self.view(&self.top_view).expect("top view missing")
    }

    /// Trigger for a base relation, if the query references it.
    pub fn trigger(&self, relation: &str) -> Option<&Trigger> {
        self.triggers.iter().find(|t| t.relation == relation)
    }

    /// Names of the base relations this plan reacts to.
    pub fn stream_relations(&self) -> Vec<&str> {
        self.triggers.iter().map(|t| t.relation.as_str()).collect()
    }

    /// Total number of maintenance statements across all triggers.
    pub fn statement_count(&self) -> usize {
        self.triggers.iter().map(|t| t.statements.len()).sum()
    }

    /// Secondary-index requirements of every view, derived from the access
    /// patterns of all trigger statements (Section 5.2.1): a `slice` access
    /// with columns `P` bound creates a non-unique hash index over `P`.
    pub fn index_requirements(&self) -> Vec<IndexSpec> {
        let mut specs: BTreeMap<(String, Vec<usize>), ()> = BTreeMap::new();
        for trig in &self.triggers {
            for stmt in &trig.statements {
                let mut bound = Schema::empty();
                collect_access(&stmt.expr, &mut bound, &mut |view, positions| {
                    specs.insert((view.to_string(), positions), ());
                });
            }
        }
        specs
            .into_keys()
            .filter(|(view, positions)| {
                // A probe with all positions bound uses the primary (unique)
                // index; a probe with none bound is a scan.  Only partial
                // bindings need secondary indexes.
                let arity = self
                    .view(view)
                    .map(|v| v.schema.len())
                    .unwrap_or(usize::MAX);
                !positions.is_empty() && positions.len() < arity
            })
            .map(|(view, positions)| IndexSpec { view, positions })
            .collect()
    }

    /// Render the whole plan (views + triggers) for inspection.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "-- plan `{}` [{}], {} views, {} triggers\n",
            self.query_name,
            self.strategy.label(),
            self.views.len(),
            self.triggers.len()
        ));
        for v in &self.views {
            out.push_str(&format!(
                "VIEW {}{:?}{} := {}\n",
                v.name,
                v.schema,
                if v.is_top { " (top)" } else { "" },
                v.definition
            ));
        }
        for t in &self.triggers {
            out.push_str(&t.to_string());
        }
        out
    }
}

/// Walk an expression in evaluation order, tracking which columns are bound,
/// and report every access to a `View`-kind relation along with the bound
/// key positions at that point.
pub fn collect_access(expr: &Expr, bound: &mut Schema, report: &mut dyn FnMut(&str, Vec<usize>)) {
    match expr {
        Expr::Rel(r) => {
            if r.kind == RelKind::View {
                let positions: Vec<usize> = r
                    .cols
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| bound.contains(c))
                    .map(|(i, _)| i)
                    .collect();
                report(&r.name, positions);
            }
            for c in &r.cols {
                bound.push(c.clone());
            }
        }
        Expr::Join(l, r) => {
            collect_access(l, bound, report);
            collect_access(r, bound, report);
        }
        Expr::Union(l, r) => {
            let snapshot = bound.clone();
            let mut bl = snapshot.clone();
            collect_access(l, &mut bl, report);
            let mut br = snapshot.clone();
            collect_access(r, &mut br, report);
            *bound = snapshot.union(&bl.intersect(&br));
        }
        Expr::Sum { group_by, body } => {
            let mut inner = bound.clone();
            collect_access(body, &mut inner, report);
            *bound = bound.union(group_by);
        }
        Expr::Exists(q) => {
            let snapshot = bound.clone();
            let mut inner = snapshot.clone();
            collect_access(q, &mut inner, report);
            *bound = bound.union(&q.schema());
        }
        Expr::AssignQuery { var, query } => {
            let mut inner = bound.clone();
            collect_access(query, &mut inner, report);
            *bound = bound.union(&query.schema());
            bound.push(var.clone());
        }
        Expr::AssignVal { var, .. } => {
            bound.push(var.clone());
        }
        Expr::Const(_) | Expr::Val(_) | Expr::Cmp { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;

    #[test]
    fn collect_access_reports_bound_positions() {
        // ΔR(A,B) ⋈ M_ST(B): when M_ST is reached, B is bound -> position 0.
        let e = join(delta_rel("R", ["A", "B"]), view("M_ST", ["B"]));
        let mut reported = Vec::new();
        collect_access(&e, &mut Schema::empty(), &mut |v, p| {
            reported.push((v.to_string(), p));
        });
        assert_eq!(reported, vec![("M_ST".to_string(), vec![0])]);
    }

    #[test]
    fn collect_access_partial_binding() {
        // ΔR(A,B) ⋈ M_S(B,C): only position 0 (B) bound -> slice index [0].
        let e = join(delta_rel("R", ["A", "B"]), view("M_S", ["B", "C"]));
        let mut reported = Vec::new();
        collect_access(&e, &mut Schema::empty(), &mut |v, p| {
            reported.push((v.to_string(), p));
        });
        assert_eq!(reported, vec![("M_S".to_string(), vec![0])]);
    }

    #[test]
    fn statement_display_is_readable() {
        let s = Statement {
            target: "Q".into(),
            target_schema: Schema::new(["B"]),
            op: StmtOp::AddTo,
            expr: join(delta_rel("R", ["A", "B"]), view("M_ST", ["B"])),
        };
        let txt = s.to_string();
        assert!(txt.contains("Q"));
        assert!(txt.contains("+="));
        assert!(txt.contains("M_ST"));
    }
}
