//! Algebraic simplification of query expressions.
//!
//! Delta derivation produces many trivially-zero or trivially-neutral terms
//! (`ΔS` of an expression not referencing `S`, joins with constant 1, unions
//! with 0).  Simplification keeps derived maintenance programs small, which
//! matters both for the interpreter and for readability of compiled plans.

use hotdog_algebra::expr::Expr;

/// Whether an expression is the constant zero relation.
pub fn is_zero(e: &Expr) -> bool {
    matches!(e, Expr::Const(c) if *c == 0.0)
}

/// Whether an expression is the constant one (neutral for natural join).
pub fn is_one(e: &Expr) -> bool {
    matches!(e, Expr::Const(c) if *c == 1.0)
}

/// Recursively simplify an expression.
///
/// Rules applied (each preserves semantics):
/// * `0 + Q = Q`, `Q + 0 = Q`
/// * `0 * Q = 0`, `Q * 0 = 0`
/// * `1 * Q = Q`, `Q * 1 = Q`
/// * `Sum_s(0) = 0`, `Exists(0) = 0`
/// * `Sum_s(Sum_s'(Q)) = Sum_s(Q)` when `s ⊆ s'`
/// * `Sum_s(Q) = Q` when `sch(Q) = s` and `Q` is itself a `Sum` or a
///   relational term (re-grouping on the full schema is the identity)
/// * constant folding of `c1 * c2` and `c1 + c2`
pub fn simplify(e: &Expr) -> Expr {
    let e = e.map_children(&mut |c| simplify(c));
    match e {
        Expr::Union(l, r) => {
            if is_zero(&l) {
                *r
            } else if is_zero(&r) {
                *l
            } else if let (Expr::Const(a), Expr::Const(b)) = (l.as_ref(), r.as_ref()) {
                Expr::Const(a + b)
            } else {
                Expr::Union(l, r)
            }
        }
        Expr::Join(l, r) => {
            if is_zero(&l) || is_zero(&r) {
                Expr::Const(0.0)
            } else if is_one(&l) {
                *r
            } else if is_one(&r) {
                *l
            } else if let (Expr::Const(a), Expr::Const(b)) = (l.as_ref(), r.as_ref()) {
                Expr::Const(a * b)
            } else {
                Expr::Join(l, r)
            }
        }
        Expr::Sum { group_by, body } => {
            if is_zero(&body) {
                return Expr::Const(0.0);
            }
            // Collapse nested Sum when the outer group-by is a subset of the
            // inner one.
            if let Expr::Sum {
                group_by: inner_gb,
                body: inner_body,
            } = body.as_ref()
            {
                if group_by.subset_of(inner_gb) {
                    return simplify(&Expr::Sum {
                        group_by,
                        body: inner_body.clone(),
                    });
                }
            }
            // Re-grouping a relational term on its full schema is an identity.
            if body.schema().same_columns(&group_by) && matches!(body.as_ref(), Expr::Rel(_)) {
                return *body;
            }
            Expr::Sum { group_by, body }
        }
        Expr::Exists(q) => {
            if is_zero(&q) {
                Expr::Const(0.0)
            } else {
                Expr::Exists(q)
            }
        }
        Expr::AssignQuery { var, query } => {
            if is_zero(&query) {
                // (var := 0): with SQL-style scalar semantics the variable is
                // bound to 0 with multiplicity one.
                Expr::AssignVal {
                    var,
                    value: hotdog_algebra::expr::ValExpr::Lit(
                        hotdog_algebra::value::Value::Double(0.0),
                    ),
                }
            } else {
                Expr::AssignQuery { var, query }
            }
        }
        other => other,
    }
}

/// Flatten a union tree into its (already simplified) addends, skipping
/// zeros.  Useful for analyzing delta expressions term by term.
pub fn union_terms(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Union(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            other => {
                if !is_zero(other) {
                    out.push(other.clone());
                }
            }
        }
    }
    walk(e, &mut out);
    out
}

/// Flatten a join tree into its factors in evaluation (left-to-right) order.
pub fn join_factors(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Join(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            other => out.push(other.clone()),
        }
    }
    walk(e, &mut out);
    out
}

/// Rebuild a left-deep join from factors (inverse of [`join_factors`]).
pub fn join_of(factors: Vec<Expr>) -> Expr {
    let mut it = factors.into_iter();
    match it.next() {
        None => Expr::Const(1.0),
        Some(first) => it.fold(first, |acc, f| Expr::Join(Box::new(acc), Box::new(f))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;

    #[test]
    fn zero_annihilates_join() {
        let e = join(Expr::Const(0.0), rel("R", ["A"]));
        assert!(is_zero(&simplify(&e)));
    }

    #[test]
    fn one_is_neutral_for_join() {
        let e = join(Expr::Const(1.0), rel("R", ["A"]));
        assert_eq!(simplify(&e), rel("R", ["A"]));
    }

    #[test]
    fn zero_is_neutral_for_union() {
        let e = union(Expr::Const(0.0), rel("R", ["A"]));
        assert_eq!(simplify(&e), rel("R", ["A"]));
    }

    #[test]
    fn sum_of_zero_is_zero() {
        let e = sum(["A"], Expr::Const(0.0));
        assert!(is_zero(&simplify(&e)));
    }

    #[test]
    fn nested_sums_collapse() {
        let e = sum(["A"], sum(["A", "B"], rel("R", ["A", "B"])));
        assert_eq!(simplify(&e), sum(["A"], rel("R", ["A", "B"])));
    }

    #[test]
    fn sum_over_full_schema_of_rel_is_identity() {
        let e = sum(["A", "B"], rel("R", ["A", "B"]));
        assert_eq!(simplify(&e), rel("R", ["A", "B"]));
    }

    #[test]
    fn constants_fold() {
        let e = join(Expr::Const(2.0), Expr::Const(3.0));
        assert_eq!(simplify(&e), Expr::Const(6.0));
        let e = union(Expr::Const(2.0), Expr::Const(3.0));
        assert_eq!(simplify(&e), Expr::Const(5.0));
    }

    #[test]
    fn union_terms_flatten() {
        let e = union(union(rel("R", ["A"]), Expr::Const(0.0)), rel("S", ["A"]));
        assert_eq!(union_terms(&e).len(), 2);
    }

    #[test]
    fn join_factors_round_trip() {
        let e = join_all([rel("R", ["A"]), rel("S", ["A"]), rel("T", ["A"])]);
        let f = join_factors(&e);
        assert_eq!(f.len(), 3);
        assert_eq!(join_of(f), e);
    }

    #[test]
    fn deep_simplification_reaches_children() {
        let e = sum(
            ["A"],
            join(rel("R", ["A"]), join(Expr::Const(1.0), Expr::Const(0.0))),
        );
        assert!(is_zero(&simplify(&e)));
    }
}
