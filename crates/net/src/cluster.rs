//! The driver side of the socket transport: [`TcpTransport`] (a
//! [`Transport`] over per-worker TCP streams) and [`TcpCluster`] (the
//! multi-process execution backend).
//!
//! Topology: the **driver listens**, workers connect.  [`TcpCluster`]
//! binds a listener (loopback by default, any host:port via
//! [`TcpConfig::bind_addr`] for real multi-host deployments), spawns one
//! `hotdog-worker` subprocess per worker slot — or waits for externally
//! started workers ([`WorkerSpawn::External`]) — and handshakes each
//! connection: the worker sends `Hello{index}` (connections race, so the
//! slot travels in-band), the driver answers with `Init{plan}`, and from
//! then on the connection carries the same FIFO-command/tagged-reply
//! protocol as the in-process channel transport.
//!
//! Everything above the socket — the admission queue, delta coalescing,
//! the request-id ledger, async gathers, `ApplyMany` scatter batching,
//! adaptive tuning, backpressure, watermarks — is the transport-generic
//! [`Driver`] of `hotdog-runtime`, *shared* with `ThreadedCluster`, so
//! the two backends can only differ in how bytes move.  The differential
//! oracle holds `TcpCluster` bit-for-bit against the simulated cluster.

use crate::codec::{
    decode_from_slice, encode_deltas_segment, encode_statements_segment, encode_to_vec, ToDriver,
    ToWorker,
};
use crate::faults::{FaultPlan, FaultState, KillSpec, Phase};
use crate::frame::{read_frame, recv_msg, send_payload, send_payload_parts};
use hotdog_algebra::relation::Relation;
use hotdog_distributed::program::DistStatement;
use hotdog_distributed::protocol::{WorkerReply, WorkerRequest};
use hotdog_distributed::{
    Backend, BatchExecution, CaptureBatch, ClusterTotals, DeltaCapture, DistributedPlan,
    PipelineStats,
};
use hotdog_runtime::{Driver, PipelineConfig, Transport, TransportNames, WorkerDead};
use hotdog_telemetry::{Counter, Histogram, SpanContext, Telemetry};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::ops::{Deref, DerefMut};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How worker endpoints come into existence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerSpawn {
    /// Spawn one `hotdog-worker` subprocess per slot on this machine
    /// (the default).  The binary is located via `HOTDOG_WORKER_BIN`,
    /// [`TcpConfig::worker_bin`], or next to the current executable.
    Subprocess,
    /// Run each worker's event loop on an in-process thread that
    /// connects through a real loopback socket: the full wire path
    /// (framing, codec, kernel TCP) without process isolation.  Used by
    /// tests and as a fallback where spawning is unavailable.
    Thread,
    /// Spawn nothing: wait for `workers` externally started
    /// `hotdog-worker --connect <addr> --index <i>` processes (possibly
    /// on other hosts) to connect to [`TcpConfig::bind_addr`].
    External,
}

/// Configuration of a [`TcpCluster`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Number of worker slots.
    pub workers: usize,
    /// Address the driver listens on.  The default `127.0.0.1:0` picks a
    /// free loopback port; bind a routable address (e.g. `0.0.0.0:7654`)
    /// to accept workers from other hosts ([`WorkerSpawn::External`]).
    pub bind_addr: String,
    /// How worker endpoints are started.
    pub spawn: WorkerSpawn,
    /// Explicit path to the `hotdog-worker` binary (subprocess mode).
    /// `None` falls back to `HOTDOG_WORKER_BIN`, then to probing next to
    /// the current executable (which finds the workspace's target dir in
    /// tests and benches).
    pub worker_bin: Option<PathBuf>,
    /// How long to wait for all workers to connect and handshake.
    pub accept_timeout: Duration,
    /// How long a worker may stay silent while a reply is awaited before
    /// the transport probes it with a `Ping` (and starts counting missed
    /// heartbeats).  `Duration::ZERO` disables failure detection: `recv`
    /// blocks forever, as the pre-heartbeat transport did.
    ///
    /// Workers run a single-threaded event loop, so a worker deep in one
    /// long block answers no pings until it finishes — size the budget
    /// (`heartbeat_interval * heartbeat_misses`) above the longest block
    /// you expect, not above the network round-trip.
    pub heartbeat_interval: Duration,
    /// Consecutive silent intervals after the first probe before the
    /// worker is declared dead.
    pub heartbeat_misses: u32,
    /// Deterministic fault schedule evaluated at the transport's send
    /// chokepoint (see [`crate::faults`]).  `None` injects nothing.
    pub faults: Option<FaultPlan>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            workers: 4,
            bind_addr: "127.0.0.1:0".to_string(),
            spawn: WorkerSpawn::Subprocess,
            worker_bin: None,
            accept_timeout: Duration::from_secs(30),
            heartbeat_interval: Duration::from_secs(2),
            heartbeat_misses: 5,
            faults: None,
        }
    }
}

impl TcpConfig {
    pub fn with_workers(workers: usize) -> Self {
        TcpConfig {
            workers,
            ..Default::default()
        }
    }

    /// Builder-style spawn mode.
    pub fn with_spawn(mut self, spawn: WorkerSpawn) -> Self {
        self.spawn = spawn;
        self
    }

    /// Builder-style failure-detection knobs (interval `ZERO` disables).
    pub fn with_heartbeat(mut self, interval: Duration, misses: u32) -> Self {
        self.heartbeat_interval = interval;
        self.heartbeat_misses = misses;
        self
    }

    /// Builder-style fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Config honouring the environment knobs — the single home for
    /// them, shared by the differential suites and the benches:
    ///
    /// * `HOTDOG_TCP_SPAWN=thread` swaps worker subprocesses for
    ///   in-process socket threads (identical wire path, no process
    ///   isolation) on hosts where spawning is unavailable;
    /// * `HOTDOG_HEARTBEAT_MS` / `HOTDOG_HEARTBEAT_MISSES` tune failure
    ///   detection (`HOTDOG_HEARTBEAT_MS=0` disables it);
    /// * `HOTDOG_FAULT` installs a deterministic kill schedule (see
    ///   [`FaultPlan::parse`] for the syntax) — malformed values panic
    ///   rather than silently running fault-free.
    pub fn from_env(workers: usize) -> Self {
        let spawn = match std::env::var("HOTDOG_TCP_SPAWN").as_deref() {
            Ok("thread") => WorkerSpawn::Thread,
            _ => WorkerSpawn::Subprocess,
        };
        let mut config = TcpConfig::with_workers(workers).with_spawn(spawn);
        if let Ok(ms) = std::env::var("HOTDOG_HEARTBEAT_MS") {
            config.heartbeat_interval = Duration::from_millis(
                ms.parse()
                    .unwrap_or_else(|e| panic!("invalid HOTDOG_HEARTBEAT_MS={ms:?}: {e}")),
            );
        }
        if let Ok(n) = std::env::var("HOTDOG_HEARTBEAT_MISSES") {
            config.heartbeat_misses = n
                .parse()
                .unwrap_or_else(|e| panic!("invalid HOTDOG_HEARTBEAT_MISSES={n:?}: {e}"));
        }
        config.faults = FaultPlan::from_env(workers);
        config
    }
}

/// Locate the `hotdog-worker` binary for subprocess spawning.
fn worker_binary(config: &TcpConfig) -> io::Result<PathBuf> {
    if let Some(p) = &config.worker_bin {
        return Ok(p.clone());
    }
    if let Ok(p) = std::env::var("HOTDOG_WORKER_BIN") {
        return Ok(PathBuf::from(p));
    }
    let exe = std::env::current_exe()?;
    let name = format!("hotdog-worker{}", std::env::consts::EXE_SUFFIX);
    // target/<profile>/deps/<test-bin> -> target/<profile>/hotdog-worker,
    // target/<profile>/<bench-bin>     -> same directory.
    for dir in exe.ancestors().skip(1).take(3) {
        let cand = dir.join(&name);
        if cand.is_file() {
            return Ok(cand);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "hotdog-worker binary not found next to the current executable: build it first \
         (`cargo build -p hotdog-worker`, with --release for release runs — \
         target-filtered `cargo test --test ...` does not build it) or point \
         HOTDOG_WORKER_BIN / TcpConfig::worker_bin at it",
    ))
}

/// Cached handles into the transport's metric registry: the wire-level
/// `net.*` counters.  These measure how bytes move, so they are
/// *excluded* from the deterministic cross-backend contract (see
/// `MetricsSnapshot::deterministic`) — the threaded backend has no wire
/// and records none of them.
#[derive(Clone)]
struct NetMetrics {
    frames_sent: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    frames_received: Arc<Counter>,
    bytes_received: Arc<Counter>,
    rejected_connections: Arc<Counter>,
    /// Silent heartbeat intervals observed.  Registered under the
    /// `worker.*` prefix but wall-clock valued, so it is excluded from
    /// the deterministic cross-backend snapshot by name (see
    /// `MetricsSnapshot::deterministic`).
    heartbeat_missed: Arc<Counter>,
    /// Kill specs fired by the fault-injection schedule.
    fault_injected: Arc<Counter>,
    encode_micros: Arc<Histogram>,
    decode_micros: Arc<Histogram>,
    /// Broadcast body segments served from the encode cache (no
    /// re-encoding) vs. encoded fresh.  Wall-clock-free but wire-only,
    /// so `net.*`-prefixed and excluded from the deterministic snapshot
    /// like the rest of this registry.
    broadcast_cache_hits: Arc<Counter>,
    broadcast_cache_misses: Arc<Counter>,
}

impl NetMetrics {
    fn register(t: &Telemetry) -> Self {
        NetMetrics {
            frames_sent: t.counter("net.frames.sent"),
            bytes_sent: t.counter("net.bytes.sent"),
            frames_received: t.counter("net.frames.received"),
            bytes_received: t.counter("net.bytes.received"),
            rejected_connections: t.counter("net.rejected_connections"),
            heartbeat_missed: t.counter("worker.heartbeat_missed"),
            fault_injected: t.counter("fault.injected"),
            encode_micros: t.histogram("net.encode_micros"),
            decode_micros: t.histogram("net.decode_micros"),
            broadcast_cache_hits: t.counter("net.broadcast.cache_hits"),
            broadcast_cache_misses: t.counter("net.broadcast.cache_misses"),
        }
    }
}

/// One connected worker endpoint, driver side.
struct WorkerConn {
    /// Command stream (writes are frame-at-a-time; `TCP_NODELAY` keeps
    /// small command frames from stalling in the kernel).
    stream: TcpStream,
    /// Replies pumped off the socket by a dedicated reader thread —
    /// giving `try_recv` channel semantics instead of non-blocking
    /// partial-frame parsing.
    inbox: Receiver<WorkerReply>,
    reader: Option<JoinHandle<()>>,
    /// Subprocess handle (subprocess mode only).
    child: Option<Child>,
    /// In-process serve thread (thread mode only).
    serve_thread: Option<JoinHandle<()>>,
    /// Pongs observed by the reader thread (heartbeat answers are
    /// transport-private: counted here, never surfaced to the driver).
    pongs: Arc<AtomicU64>,
    /// Declared dead (heartbeat timeout, closed connection or injected
    /// fault).  Every subsequent operation fast-fails with the typed
    /// error until [`Transport::respawn`] replaces the connection.
    dead: bool,
}

/// An encoded broadcast segment paired with the `Arc` that keys it — the
/// held `Arc` pins the allocation, so the cache's pointer key can never be
/// reused for different content.
type CachedSegment<T> = (Arc<T>, Arc<Vec<u8>>);

/// [`Transport`] implementation over per-worker TCP connections.
pub struct TcpTransport {
    conns: Vec<WorkerConn>,
    shut: bool,
    /// Retained so dead workers can be respawned: replacements connect
    /// to the same address the original cluster handshook on.
    listener: TcpListener,
    config: TcpConfig,
    /// The encoded `Init{plan}` frame, kept for replays to respawned
    /// workers (encode once, ship per (re)connection).
    init: Vec<u8>,
    faults: FaultState,
    ping_seq: u64,
    /// The transport's telemetry sink.  The generic `Driver` *adopts* it
    /// (via [`Transport::telemetry`]) so wire counters and scheduler
    /// counters land in one registry.
    telemetry: Arc<Telemetry>,
    metrics: NetMetrics,
    /// Zero-copy broadcast cache for `RunBlock` statement segments, keyed
    /// by `Arc` identity of the program's statement list.  The driver
    /// shares one `Arc<Vec<DistStatement>>` per block per *cluster*
    /// (`SharedBlock`), so each program encodes once here and the bytes
    /// are reused for every worker of every batch thereafter.  Holding
    /// the keying `Arc` in the value pins the allocation, so a pointer
    /// key can never be reused for a different program.
    program_cache: HashMap<usize, CachedSegment<Vec<DistStatement>>>,
    /// Single-slot cache for the deltas segment of the in-flight
    /// broadcast: the driver hands every worker of one batch the same
    /// `Arc`'d deltas map, so the segment encodes once per batch instead
    /// of once per worker.
    deltas_cache: Option<CachedSegment<HashMap<String, Relation>>>,
}

/// Request ids for transport-injected `Ping`s live in their own half of
/// the id space so they can never collide with the driver's ledger ids
/// (the driver allocates from 0 upward and consumes no `Pong`s anyway —
/// the reader thread filters them — but disjoint id spaces make the
/// invariant structural).
const PING_ID_BASE: u64 = 1 << 63;

impl TcpTransport {
    /// Bind, start workers per `config`, collect and handshake all
    /// connections, ship the plan.
    pub fn connect(dplan: &DistributedPlan, config: &TcpConfig) -> io::Result<Self> {
        assert!(config.workers > 0);
        let telemetry = Telemetry::shared();
        let metrics = NetMetrics::register(&telemetry);
        let mut children: Vec<Option<Child>> = (0..config.workers).map(|_| None).collect();
        let mut serve_threads: Vec<Option<JoinHandle<()>>> =
            (0..config.workers).map(|_| None).collect();
        match Self::connect_inner(
            dplan,
            config,
            &telemetry,
            &metrics,
            &mut children,
            &mut serve_threads,
        ) {
            Ok(transport) => Ok(transport),
            Err(e) => {
                // Reap whatever was already spawned: a failed construction
                // (accept timeout, handshake error, dead worker) must not
                // leak subprocesses — a driver retrying construction would
                // otherwise accumulate zombies until it exits.
                for mut child in children.iter_mut().filter_map(|c| c.take()) {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                // Thread-mode workers exit on their own once their socket
                // (or the pending connect) dies with the listener.
                for handle in serve_threads.iter_mut().filter_map(|t| t.take()) {
                    let _ = handle.join();
                }
                Err(e)
            }
        }
    }

    fn connect_inner(
        dplan: &DistributedPlan,
        config: &TcpConfig,
        telemetry: &Arc<Telemetry>,
        metrics: &NetMetrics,
        children: &mut [Option<Child>],
        serve_threads: &mut [Option<JoinHandle<()>>],
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.bind_addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        match config.spawn {
            WorkerSpawn::Subprocess => {
                let bin = worker_binary(config)?;
                for (i, slot) in children.iter_mut().enumerate() {
                    let child = Command::new(&bin)
                        .arg("--connect")
                        .arg(addr.to_string())
                        .arg("--index")
                        .arg(i.to_string())
                        .stdin(Stdio::null())
                        .stdout(Stdio::null())
                        .stderr(Stdio::inherit())
                        .spawn()
                        .map_err(|e| {
                            io::Error::new(e.kind(), format!("spawning {}: {e}", bin.display()))
                        })?;
                    telemetry.event(
                        "worker.spawned",
                        vec![
                            ("worker", i.into()),
                            ("mode", "subprocess".into()),
                            ("pid", u64::from(child.id()).into()),
                        ],
                    );
                    *slot = Some(child);
                }
            }
            WorkerSpawn::Thread => {
                for (i, slot) in serve_threads.iter_mut().enumerate() {
                    let addr = addr.to_string();
                    let t = telemetry.clone();
                    let handle = thread::Builder::new()
                        .name(format!("hotdog-tcp-worker-{i}"))
                        .spawn(move || {
                            if let Err(e) = crate::worker::run_worker(&addr, i as u32) {
                                t.event(
                                    "worker.error",
                                    vec![("worker", i.into()), ("error", e.to_string().into())],
                                );
                            }
                        })
                        .expect("failed to spawn worker thread");
                    telemetry.event(
                        "worker.spawned",
                        vec![("worker", i.into()), ("mode", "thread".into())],
                    );
                    *slot = Some(handle);
                }
            }
            WorkerSpawn::External => {
                telemetry.event(
                    "net.waiting_external",
                    vec![
                        ("workers", config.workers.into()),
                        ("addr", addr.to_string().into()),
                        (
                            "hint",
                            format!("hotdog-worker --connect {addr} --index <i>").into(),
                        ),
                    ],
                );
            }
        }

        // Accept until every slot has handshaken, under one deadline.
        let deadline = Instant::now() + config.accept_timeout;
        let mut slots: Vec<Option<(TcpStream, BufReader<TcpStream>)>> =
            (0..config.workers).map(|_| None).collect();
        let mut connected = 0usize;
        while connected < config.workers {
            // A spawned worker dying before it connects would otherwise
            // stall the accept loop until the deadline.
            for (i, child) in children.iter_mut().enumerate() {
                if let Some(c) = child.as_mut() {
                    if let Some(status) = c.try_wait()? {
                        return Err(io::Error::new(
                            io::ErrorKind::BrokenPipe,
                            format!("worker {i} exited before connecting: {status}"),
                        ));
                    }
                }
            }
            match listener.accept() {
                // A connection that fails the handshake (no/garbage Hello,
                // bad or duplicate index, stalled peer) is *rejected and
                // dropped*, not fatal: on a routable bind a port scanner or
                // health prober must not take down cluster construction
                // while the real workers are connecting fine.
                Ok((stream, peer)) => match Self::handshake(stream, config.workers, &slots) {
                    Ok((index, stream, reader)) => {
                        telemetry.event(
                            "worker.connected",
                            vec![("worker", index.into()), ("peer", peer.to_string().into())],
                        );
                        slots[index] = Some((stream, reader));
                        connected += 1;
                    }
                    // The error used to be logged and *dropped*; now every
                    // rejection is counted and carries its reason.
                    Err(e) => {
                        metrics.rejected_connections.inc();
                        telemetry.event(
                            "net.connection_rejected",
                            vec![
                                ("peer", peer.to_string().into()),
                                ("error", e.to_string().into()),
                            ],
                        );
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "only {connected}/{} worker(s) connected within {:?}",
                                config.workers, config.accept_timeout
                            ),
                        ));
                    }
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }

        // Ship the plan: encode once, frame per worker.
        let init = encode_to_vec(&ToWorker::Init {
            plan: dplan.plan.clone(),
        });
        let mut conns = Vec::with_capacity(config.workers);
        for (i, slot) in slots.into_iter().enumerate() {
            let (mut stream, reader) = slot.expect("slot filled");
            send_payload(&mut stream, &init)?;
            let (handle, rx, pongs) = Self::spawn_reader(i, reader, telemetry, metrics);
            conns.push(WorkerConn {
                stream,
                inbox: rx,
                reader: Some(handle),
                child: children[i].take(),
                serve_thread: serve_threads[i].take(),
                pongs,
                dead: false,
            });
        }
        let faults = FaultState::new(config.faults.clone().unwrap_or_default());
        Ok(TcpTransport {
            conns,
            shut: false,
            listener,
            config: config.clone(),
            init,
            faults,
            ping_seq: 0,
            telemetry: telemetry.clone(),
            metrics: metrics.clone(),
            program_cache: HashMap::new(),
            deltas_cache: None,
        })
    }

    /// Spawn the reply-pump thread for one connection.  EOF (or our own
    /// shutdown) closes the inbox by dropping the sender; the driver sees
    /// a disconnected channel and reports the typed [`WorkerDead`] if it
    /// still expected replies.  `Pong`s are counted into `pongs` and
    /// dropped — heartbeat answers never reach the driver's accounting.
    #[allow(clippy::type_complexity)]
    fn spawn_reader(
        i: usize,
        mut reader: BufReader<TcpStream>,
        telemetry: &Arc<Telemetry>,
        metrics: &NetMetrics,
    ) -> (JoinHandle<()>, Receiver<WorkerReply>, Arc<AtomicU64>) {
        let (tx, rx) = channel();
        let pongs = Arc::new(AtomicU64::new(0));
        let t = telemetry.clone();
        let m = metrics.clone();
        let p = pongs.clone();
        let handle = thread::Builder::new()
            .name(format!("hotdog-tcp-reader-{i}"))
            .spawn(move || loop {
                let Ok(payload) = read_frame(&mut reader) else {
                    return;
                };
                m.frames_received.inc();
                m.bytes_received.add(payload.len() as u64 + 4);
                let decode_start = Instant::now();
                let msg = decode_from_slice::<ToDriver>(&payload);
                m.decode_micros.record_duration(decode_start.elapsed());
                match msg {
                    Ok(ToDriver::Reply(WorkerReply::Pong { .. })) => {
                        p.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(ToDriver::Reply(rep)) => {
                        if tx.send(rep).is_err() {
                            return; // driver gone
                        }
                    }
                    Ok(ToDriver::Hello { .. }) => {
                        t.event(
                            "net.protocol_error",
                            vec![
                                ("worker", i.into()),
                                ("error", "unexpected Hello after handshake".into()),
                            ],
                        );
                        return;
                    }
                    Err(e) => {
                        t.event(
                            "net.protocol_error",
                            vec![
                                ("worker", i.into()),
                                ("error", format!("bad frame: {e}").into()),
                            ],
                        );
                        return;
                    }
                }
            })
            .expect("failed to spawn reader thread");
        (handle, rx, pongs)
    }

    /// Handshake one accepted connection: read its `Hello` under a bounded
    /// timeout and validate the announced worker slot.  Any failure
    /// rejects just this connection (the accept loop keeps going).
    #[allow(clippy::type_complexity)]
    fn handshake(
        stream: TcpStream,
        workers: usize,
        slots: &[Option<(TcpStream, BufReader<TcpStream>)>],
    ) -> io::Result<(usize, TcpStream, BufReader<TcpStream>)> {
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        // Bound the handshake read so a stuck peer cannot stall the
        // accept loop for the whole deadline.
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let index = match recv_msg::<ToDriver>(&mut reader)? {
            ToDriver::Hello { index } => index as usize,
            ToDriver::Reply(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "protocol error: reply before Hello",
                ))
            }
        };
        stream.set_read_timeout(None)?;
        if index >= workers || slots[index].is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad or duplicate worker index {index}"),
            ));
        }
        Ok((index, stream, reader))
    }

    /// [`TcpTransport::handshake`] for a respawn: only a `Hello`
    /// announcing exactly `expected` passes — every live slot is
    /// occupied, so any other index is bad or a duplicate.
    fn handshake_one(
        stream: TcpStream,
        expected: usize,
    ) -> io::Result<(TcpStream, BufReader<TcpStream>)> {
        stream.set_nonblocking(false)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let index = match recv_msg::<ToDriver>(&mut reader)? {
            ToDriver::Hello { index } => index as usize,
            ToDriver::Reply(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "protocol error: reply before Hello",
                ))
            }
        };
        stream.set_read_timeout(None)?;
        if index != expected {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected respawned worker {expected}, got Hello{{{index}}}"),
            ));
        }
        Ok((stream, reader))
    }

    /// Mark worker `w` dead and fence it off: close the stream and kill
    /// the subprocess (if any), so a worker that was merely slow cannot
    /// come back and race its replacement.  Returns the typed error every
    /// subsequent operation on the slot fast-fails with.
    fn declare_dead(&mut self, w: usize, reason: &str) -> WorkerDead {
        let conn = &mut self.conns[w];
        if !conn.dead {
            conn.dead = true;
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(child) = conn.child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            self.telemetry.event(
                "net.worker_dead",
                vec![("worker", w.into()), ("reason", reason.into())],
            );
        }
        WorkerDead {
            index: w,
            reason: reason.to_string(),
        }
    }

    /// Fire one kill spec: SIGKILL the subprocess (no cleanup, the
    /// crash-model fault) and sever the stream (which also fells
    /// thread-mode workers, whose event loop dies with its socket).
    fn inject_kill(&mut self, spec: &KillSpec) {
        self.metrics.fault_injected.inc();
        self.telemetry.event(
            "fault.injected",
            vec![
                ("worker", spec.worker.into()),
                ("spec", spec.to_string().into()),
            ],
        );
        self.declare_dead(spec.worker, &format!("fault injected: {spec}"));
    }

    /// Probe worker `w` with a transport-private `Ping` (bypasses fault
    /// counting: ping traffic is wall-clock scheduled, so letting kill
    /// specs fire on it would break the deterministic-kill-point
    /// contract).
    fn send_ping(&mut self, w: usize) -> io::Result<()> {
        self.ping_seq += 1;
        let payload = encode_to_vec(&ToWorker::Request(WorkerRequest::Ping {
            id: PING_ID_BASE | self.ping_seq,
        }));
        self.metrics.frames_sent.inc();
        self.metrics.bytes_sent.add(payload.len() as u64 + 4);
        send_payload(&mut self.conns[w].stream, &payload)
    }

    /// Replace slot `w`'s endpoint: tear the old connection down, start a
    /// replacement per the spawn mode (external mode just waits for a
    /// reconnect), handshake it under the accept deadline, ship the
    /// retained `Init` and restart the reply pump.  On success the slot
    /// is live again (with empty worker state — the driver must follow
    /// with a `Restore`).
    fn respawn_inner(&mut self, w: usize) -> io::Result<()> {
        {
            let conn = &mut self.conns[w];
            conn.dead = true;
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(mut child) = conn.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(handle) = conn.reader.take() {
                let _ = handle.join();
            }
            if let Some(handle) = conn.serve_thread.take() {
                let _ = handle.join();
            }
        }
        let addr = self.listener.local_addr()?;
        let mut child = None;
        let mut serve_thread = None;
        match self.config.spawn {
            WorkerSpawn::Subprocess => {
                let bin = worker_binary(&self.config)?;
                let spawned = Command::new(&bin)
                    .arg("--connect")
                    .arg(addr.to_string())
                    .arg("--index")
                    .arg(w.to_string())
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::inherit())
                    .spawn()
                    .map_err(|e| {
                        io::Error::new(e.kind(), format!("spawning {}: {e}", bin.display()))
                    })?;
                self.telemetry.event(
                    "worker.spawned",
                    vec![
                        ("worker", w.into()),
                        ("mode", "subprocess".into()),
                        ("pid", u64::from(spawned.id()).into()),
                    ],
                );
                child = Some(spawned);
            }
            WorkerSpawn::Thread => {
                let addr = addr.to_string();
                let t = self.telemetry.clone();
                let handle = thread::Builder::new()
                    .name(format!("hotdog-tcp-worker-{w}"))
                    .spawn(move || {
                        if let Err(e) = crate::worker::run_worker(&addr, w as u32) {
                            t.event(
                                "worker.error",
                                vec![("worker", w.into()), ("error", e.to_string().into())],
                            );
                        }
                    })
                    .expect("failed to spawn worker thread");
                self.telemetry.event(
                    "worker.spawned",
                    vec![("worker", w.into()), ("mode", "thread".into())],
                );
                serve_thread = Some(handle);
            }
            WorkerSpawn::External => {
                self.telemetry.event(
                    "net.waiting_external",
                    vec![
                        ("workers", 1u64.into()),
                        ("addr", addr.to_string().into()),
                        (
                            "hint",
                            format!("hotdog-worker --connect {addr} --index {w}").into(),
                        ),
                    ],
                );
            }
        }

        // Accept until *this* slot reconnects (other peers are rejected,
        // as during construction), under the same deadline policy.
        let deadline = Instant::now() + self.config.accept_timeout;
        let (mut stream, reader) = loop {
            if let Some(c) = child.as_mut() {
                if let Some(status) = c.try_wait()? {
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        format!("respawned worker {w} exited before connecting: {status}"),
                    ));
                }
            }
            match self.listener.accept() {
                Ok((stream, peer)) => match Self::handshake_one(stream, w) {
                    Ok((stream, reader)) => {
                        self.telemetry.event(
                            "worker.connected",
                            vec![("worker", w.into()), ("peer", peer.to_string().into())],
                        );
                        break (stream, reader);
                    }
                    Err(e) => {
                        self.metrics.rejected_connections.inc();
                        self.telemetry.event(
                            "net.connection_rejected",
                            vec![
                                ("peer", peer.to_string().into()),
                                ("error", e.to_string().into()),
                            ],
                        );
                    }
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!(
                                "respawned worker {w} did not reconnect within {:?}",
                                self.config.accept_timeout
                            ),
                        ));
                    }
                    thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        };
        send_payload(&mut stream, &self.init)?;
        let (handle, rx, pongs) = Self::spawn_reader(w, reader, &self.telemetry, &self.metrics);
        self.conns[w] = WorkerConn {
            stream,
            inbox: rx,
            reader: Some(handle),
            child,
            serve_thread,
            pongs,
            dead: false,
        };
        Ok(())
    }

    /// Encoded statements segment for a broadcast, served from the
    /// per-cluster cache when this exact `Arc` was seen before.
    fn cached_statements(&mut self, statements: &Arc<Vec<DistStatement>>) -> Arc<Vec<u8>> {
        let key = Arc::as_ptr(statements) as usize;
        if let Some((held, bytes)) = self.program_cache.get(&key) {
            if Arc::ptr_eq(held, statements) {
                self.metrics.broadcast_cache_hits.inc();
                return bytes.clone();
            }
        }
        let encode_start = Instant::now();
        let bytes = Arc::new(encode_statements_segment(statements));
        self.metrics
            .encode_micros
            .record_duration(encode_start.elapsed());
        self.metrics.broadcast_cache_misses.inc();
        self.program_cache
            .insert(key, (statements.clone(), bytes.clone()));
        bytes
    }

    /// Encoded deltas segment for a broadcast, served from the
    /// single-slot per-batch cache when this exact `Arc` was seen last.
    fn cached_deltas(&mut self, deltas: &Arc<HashMap<String, Relation>>) -> Arc<Vec<u8>> {
        if let Some((held, bytes)) = &self.deltas_cache {
            if Arc::ptr_eq(held, deltas) {
                self.metrics.broadcast_cache_hits.inc();
                return bytes.clone();
            }
        }
        let encode_start = Instant::now();
        let bytes = Arc::new(encode_deltas_segment(deltas));
        self.metrics
            .encode_micros
            .record_duration(encode_start.elapsed());
        self.metrics.broadcast_cache_misses.inc();
        self.deltas_cache = Some((deltas.clone(), bytes.clone()));
        bytes
    }
}

impl Transport for TcpTransport {
    fn workers(&self) -> usize {
        self.conns.len()
    }

    fn send(&mut self, w: usize, request: WorkerRequest) -> Result<(), WorkerDead> {
        if self.conns[w].dead {
            return Err(self.declare_dead(w, "previously declared dead"));
        }
        // The fault schedule counts at this chokepoint: a `before` kill
        // fells the worker in place of the send (the message is never
        // written), an `after` kill lets the send land first.
        let fired = self.faults.on_send(w, &request);
        if let Some(spec) = &fired {
            if spec.phase == Phase::Before {
                self.inject_kill(spec);
                return Err(WorkerDead {
                    index: w,
                    reason: format!("fault injected: {spec}"),
                });
            }
        }
        let sent = match request {
            // Broadcast fast path: `RunBlock` frames share their body
            // across workers — `[0x41][0x00][id][trace][parent]` is the
            // only per-worker part; the statements segment is cached per
            // cluster and the deltas segment per batch, so neither
            // re-encodes per worker.  The trace header lives in this
            // prefix precisely so the cached segments stay batch- and
            // trace-independent.  Byte-identical on the wire to the
            // generic path below.
            WorkerRequest::RunBlock {
                id,
                ctx,
                statements,
                deltas,
            } => {
                let mut header = [0u8; 26];
                header[0] = 0x41; // ToWorker::Request
                header[1] = 0x00; // WorkerRequest::RunBlock
                header[2..10].copy_from_slice(&id.to_le_bytes());
                header[10..18].copy_from_slice(&ctx.trace.to_le_bytes());
                header[18..26].copy_from_slice(&ctx.parent.to_le_bytes());
                let stmt_bytes = self.cached_statements(&statements);
                let delta_bytes = self.cached_deltas(&deltas);
                let total = header.len() + stmt_bytes.len() + delta_bytes.len();
                self.metrics.frames_sent.inc();
                self.metrics.bytes_sent.add(total as u64 + 4);
                send_payload_parts(
                    &mut self.conns[w].stream,
                    &[&header[..], &stmt_bytes[..], &delta_bytes[..]],
                )
            }
            other => {
                let encode_start = Instant::now();
                let payload = encode_to_vec(&ToWorker::Request(other));
                self.metrics
                    .encode_micros
                    .record_duration(encode_start.elapsed());
                self.metrics.frames_sent.inc();
                self.metrics.bytes_sent.add(payload.len() as u64 + 4);
                send_payload(&mut self.conns[w].stream, &payload)
            }
        };
        if let Err(e) = sent {
            return Err(self.declare_dead(w, &format!("send failed: {e}")));
        }
        if let Some(spec) = &fired {
            // `after`: the command reached the socket; the crash is
            // detected at the next interaction with the slot.
            self.inject_kill(spec);
        }
        Ok(())
    }

    fn recv(&mut self, w: usize) -> Result<WorkerReply, WorkerDead> {
        if self.conns[w].dead {
            return Err(self.declare_dead(w, "previously declared dead"));
        }
        let interval = self.config.heartbeat_interval;
        if interval.is_zero() {
            return match self.conns[w].inbox.recv() {
                Ok(rep) => Ok(rep),
                Err(_) => Err(self.declare_dead(w, "connection closed")),
            };
        }
        // Failure detection below the driver's accounting chokepoint: a
        // silent interval probes the worker with a `Ping`; the reader
        // thread counts `Pong`s out-of-band.  A silent interval *after* a
        // probe with no pong progress is a missed heartbeat; any reply or
        // pong resets the count (the worker is slow, not gone).
        let mut misses: u32 = 0;
        let mut pinged = false;
        let mut pongs_at_probe = 0u64;
        loop {
            match self.conns[w].inbox.recv_timeout(interval) {
                Ok(rep) => return Ok(rep),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(self.declare_dead(w, "connection closed"))
                }
                Err(RecvTimeoutError::Timeout) => {
                    let pongs = self.conns[w].pongs.load(Ordering::Relaxed);
                    if pinged && pongs == pongs_at_probe {
                        misses += 1;
                        self.metrics.heartbeat_missed.inc();
                        self.telemetry.event(
                            "worker.heartbeat_missed",
                            vec![("worker", w.into()), ("misses", u64::from(misses).into())],
                        );
                        if misses >= self.config.heartbeat_misses.max(1) {
                            return Err(self.declare_dead(
                                w,
                                &format!(
                                    "heartbeat timeout ({misses} probes unanswered over {:?})",
                                    interval * misses
                                ),
                            ));
                        }
                    } else if pinged {
                        misses = 0; // pong progress: alive but busy
                    }
                    pongs_at_probe = pongs;
                    pinged = true;
                    if self.send_ping(w).is_err() {
                        return Err(self.declare_dead(w, "connection closed (ping failed)"));
                    }
                }
            }
        }
    }

    fn try_recv(&mut self, w: usize) -> Result<Option<WorkerReply>, WorkerDead> {
        if self.conns[w].dead {
            return Err(self.declare_dead(w, "previously declared dead"));
        }
        match self.conns[w].inbox.try_recv() {
            Ok(rep) => Ok(Some(rep)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(self.declare_dead(w, "connection closed")),
        }
    }

    fn respawn(&mut self, w: usize) -> Result<(), WorkerDead> {
        self.respawn_inner(w).map_err(|e| WorkerDead {
            index: w,
            reason: format!("respawn failed: {e}"),
        })
    }

    fn shutdown(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        let payload = encode_to_vec(&ToWorker::Request(WorkerRequest::Shutdown));
        for conn in &mut self.conns {
            // Best effort: a worker that already died must not fail the
            // others' shutdown.
            self.metrics.frames_sent.inc();
            self.metrics.bytes_sent.add(payload.len() as u64 + 4);
            let _ = send_payload(&mut conn.stream, &payload);
        }
        const KILL_GRACE: Duration = Duration::from_secs(10);
        for (w, conn) in self.conns.iter_mut().enumerate() {
            if let Some(mut child) = conn.child.take() {
                // Give the worker a moment to exit cleanly, then kill.
                let deadline = Instant::now() + KILL_GRACE;
                loop {
                    match child.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() >= deadline => {
                            self.telemetry.event(
                                "worker.killed",
                                vec![
                                    ("worker", w.into()),
                                    ("reason", "shutdown_grace_expired".into()),
                                    ("grace_secs", KILL_GRACE.as_secs().into()),
                                ],
                            );
                            let _ = child.kill();
                            let _ = child.wait();
                            break;
                        }
                        Ok(None) => thread::sleep(Duration::from_millis(5)),
                        Err(_) => break,
                    }
                }
            }
            let _ = conn.stream.shutdown(Shutdown::Both);
            if let Some(handle) = conn.reader.take() {
                let _ = handle.join();
            }
            if let Some(handle) = conn.serve_thread.take() {
                let _ = handle.join();
            }
        }
    }

    fn names(&self) -> TransportNames {
        TransportNames {
            sync: "tcp",
            pipelined: "tcp-pipelined",
            fifo: "tcp-pipelined-fifo",
        }
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        Some(self.telemetry.clone())
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The multi-process TCP execution backend: the transport-generic
/// [`Driver`] over [`TcpTransport`].
///
/// Same public surface as `ThreadedCluster` (via `Deref`), same
/// [`Backend`] impl, same FIFO-command/tagged-reply contract including
/// fully async gathers and `ApplyMany` scatter batching — only the bytes
/// move through the kernel instead of an `mpsc` channel.  Construction is
/// fallible (sockets, subprocesses), hence `io::Result`.
pub struct TcpCluster {
    inner: Driver<TcpTransport>,
}

impl TcpCluster {
    /// Epoch-synchronous TCP cluster (one batch in the system at a time).
    pub fn new(dplan: DistributedPlan, config: &TcpConfig) -> io::Result<Self> {
        let transport = TcpTransport::connect(&dplan, config)?;
        Ok(TcpCluster {
            inner: Driver::with_transport(dplan, transport, None),
        })
    }

    /// Pipelined TCP cluster: admission queue, delta coalescing, bounded
    /// in-flight window — the same pipeline as the threaded backend,
    /// over sockets.
    pub fn pipelined(
        dplan: DistributedPlan,
        config: &TcpConfig,
        pipeline: PipelineConfig,
    ) -> io::Result<Self> {
        let transport = TcpTransport::connect(&dplan, config)?;
        Ok(TcpCluster {
            inner: Driver::with_transport(dplan, transport, Some(pipeline)),
        })
    }

    /// Abandon queued batches, stop the workers and return the final
    /// pipeline stats (see `Driver::close`).
    pub fn close(self) -> PipelineStats {
        self.inner.close()
    }
}

impl Deref for TcpCluster {
    type Target = Driver<TcpTransport>;
    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

impl DerefMut for TcpCluster {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.inner
    }
}

impl Backend for TcpCluster {
    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }

    fn plan(&self) -> &DistributedPlan {
        Backend::plan(&self.inner)
    }

    fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        Backend::apply_batch(&mut self.inner, relation, batch)
    }

    fn flush(&mut self) {
        Backend::flush(&mut self.inner);
    }

    fn view_contents(&mut self, name: &str) -> Relation {
        Backend::view_contents(&mut self.inner, name)
    }

    fn totals(&self) -> &ClusterTotals {
        Backend::totals(&self.inner)
    }

    fn pipeline_stats(&self) -> Option<PipelineStats> {
        Backend::pipeline_stats(&self.inner)
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        Backend::telemetry(&self.inner)
    }

    fn trace_scope(&self) -> SpanContext {
        Backend::trace_scope(&self.inner)
    }
}

impl DeltaCapture for TcpCluster {
    fn enable_capture(&mut self, views: &[String]) {
        self.inner.enable_capture(views);
    }

    fn take_captured(&mut self) -> CaptureBatch {
        DeltaCapture::take_captured(&mut self.inner)
    }
}
