//! Hand-rolled, length-prefixed binary codec for the driver↔worker
//! message set.
//!
//! No serde: the build image is offline (mirroring `hotdog-bench::json`),
//! so every type on the wire implements [`Wire`] by hand.  The encoding is
//! deliberately boring — little-endian fixed-width integers, one tag byte
//! per enum variant, `u32` length prefixes for strings and sequences — and
//! makes two promises the differential oracle depends on:
//!
//! * **Bit-preserving floats.**  Multiplicities and `Double` values travel
//!   as raw IEEE-754 bits (`f64::to_bits`), never through a decimal
//!   round-trip, so NaN payloads, negative zero and every last ulp survive
//!   the wire and [`ViewChecksum`]s computed on either side agree.
//! * **Canonical relation layout.**  A [`Relation`] is encoded as its
//!   *sorted* pair list and decoded by replaying exactly that insertion
//!   order into an empty map — i.e. decoding yields
//!   [`Relation::canonical`] of the encoded relation.  Since every
//!   in-process backend canonicalizes relations at the same exchange
//!   points (`relabel`, `partition_shards`), a decoded relation is
//!   bit-identical — in content *and* iteration order, hence in every
//!   downstream float accumulation — to the object an in-process worker
//!   would have received.
//!
//! Decoding is paranoid: unknown tags, non-UTF-8 strings, truncated
//! buffers and trailing garbage are all [`DecodeError`]s, never panics —
//! a corrupt frame must kill the connection loudly, not the process
//! silently.
//!
//! [`ViewChecksum`]: hotdog_algebra::relation::ViewChecksum

use hotdog_algebra::expr::{CmpOp, Expr, RelKind, RelRef, ValExpr};
use hotdog_algebra::relation::Relation;
use hotdog_algebra::schema::Schema;
use hotdog_algebra::tuple::Tuple;
use hotdog_algebra::value::Value;
use hotdog_distributed::program::{DistStatement, DistStmtKind, StmtMode, Transform};
use hotdog_distributed::protocol::{WorkerReply, WorkerRequest};
use hotdog_distributed::{PartitionFn, WorkerSnapshot, WorkerStats, WorkerStatsSnapshot};
use hotdog_ivm::StmtOp;
use hotdog_ivm::{MaintenancePlan, Statement, Strategy, Trigger, ViewDef};
use hotdog_telemetry::trace::{SpanContext, SpanRecord};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Decoding failure: the buffer does not contain a well-formed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the message did.
    UnexpectedEof,
    /// An enum tag byte had no corresponding variant.
    BadTag { what: &'static str, tag: u8 },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// The message decoded fully but bytes were left over.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of frame"),
            DecodeError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#x}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::BadBool(b) => write!(f, "bad boolean byte {b:#x}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over a received frame's payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
}

/// A type with a hand-rolled binary wire format.
pub trait Wire: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Encode a message into a fresh payload buffer.
pub fn encode_to_vec<M: Wire>(msg: &M) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode(&mut out);
    out
}

/// Decode a message from a full payload buffer, rejecting trailing bytes.
pub fn decode_from_slice<M: Wire>(buf: &[u8]) -> Result<M, DecodeError> {
    let mut r = Reader::new(buf);
    let msg = M::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.u8()
    }
}

impl Wire for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u16::from_le_bytes(r.take(2)?.try_into().unwrap()))
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u32::from_le_bytes(r.take(4)?.try_into().unwrap()))
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(u64::from_le_bytes(r.take(8)?.try_into().unwrap()))
    }
}

impl Wire for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(i64::from_le_bytes(r.take(8)?.try_into().unwrap()))
    }
}

/// Floats travel as raw bits — the exact-bit promise of the codec.
impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadBool(b)),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u32::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = u32::decode(r)? as usize;
        // A corrupt length must not pre-allocate gigabytes: every element
        // costs at least one byte, so `remaining()` bounds a sane capacity.
        let mut v = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

impl Wire for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Long(v) => {
                out.push(0);
                v.encode(out);
            }
            Value::Double(v) => {
                out.push(1);
                v.encode(out);
            }
            Value::Str(s) => {
                out.push(2);
                (s.len() as u32).encode(out);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(3);
                b.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(Value::Long(i64::decode(r)?)),
            1 => Ok(Value::Double(f64::decode(r)?)),
            2 => {
                let len = u32::decode(r)? as usize;
                let bytes = r.take(len)?;
                let s = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)?;
                Ok(Value::str(s))
            }
            3 => Ok(Value::Bool(bool::decode(r)?)),
            tag => Err(DecodeError::BadTag { what: "Value", tag }),
        }
    }
}

impl Wire for Tuple {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.arity() as u16).encode(out);
        for v in &self.0 {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let arity = u16::decode(r)? as usize;
        let mut vals = Vec::with_capacity(arity.min(r.remaining()));
        for _ in 0..arity {
            vals.push(Value::decode(r)?);
        }
        Ok(Tuple(vals))
    }
}

impl Wire for Schema {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for c in self.iter() {
            (c.len() as u32).encode(out);
            out.extend_from_slice(c.as_bytes());
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let cols: Vec<String> = {
            let len = u32::decode(r)? as usize;
            let mut v = Vec::with_capacity(len.min(r.remaining()));
            for _ in 0..len {
                v.push(String::decode(r)?);
            }
            v
        };
        Ok(Schema::new(cols))
    }
}

/// Encoded **column-contiguous** in sorted row order: after the schema and
/// the row count come all of column 0's values, then column 1's, …, then
/// the raw `f64` multiplicity bits, one contiguous run per column — the
/// shuffle buffer is written as column slices, with no per-row framing
/// (arity lives in the schema).  Decoding rebuilds the rows in that sorted
/// order and replays them into an empty map, so `decode(encode(r))` is
/// exactly [`Relation::canonical`] of `r` — content-equal bit-for-bit, and
/// layout-equal to what every in-process backend holds after its own
/// canonicalization.
impl Wire for Relation {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema().encode(out);
        (self.len() as u32).encode(out);
        let rows = self.sorted();
        for j in 0..self.schema().len() {
            for (t, _) in &rows {
                t.get(j).encode(out);
            }
        }
        for (_, m) in &rows {
            m.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let schema = Schema::decode(r)?;
        let len = u32::decode(r)? as usize;
        let arity = schema.len();
        let mut cols: Vec<Vec<Value>> = Vec::with_capacity(arity);
        for _ in 0..arity {
            let mut col = Vec::with_capacity(len.min(r.remaining()));
            for _ in 0..len {
                col.push(Value::decode(r)?);
            }
            cols.push(col);
        }
        let mut rel = Relation::new(schema);
        for i in 0..len {
            let t = Tuple(cols.iter_mut().map(|c| take_value(c, i)).collect());
            let m = f64::decode(r)?;
            rel.add(t, m);
        }
        Ok(rel)
    }
}

/// Move column `c`'s row-`i` value out without cloning (the slot is never
/// read again — rows are rebuilt in ascending `i`).
fn take_value(c: &mut [Value], i: usize) -> Value {
    std::mem::replace(&mut c[i], Value::Long(0))
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

impl Wire for CmpOp {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(CmpOp::Eq),
            1 => Ok(CmpOp::Ne),
            2 => Ok(CmpOp::Lt),
            3 => Ok(CmpOp::Le),
            4 => Ok(CmpOp::Gt),
            5 => Ok(CmpOp::Ge),
            tag => Err(DecodeError::BadTag { what: "CmpOp", tag }),
        }
    }
}

impl Wire for ValExpr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ValExpr::Var(v) => {
                out.push(0);
                v.encode(out);
            }
            ValExpr::Lit(v) => {
                out.push(1);
                v.encode(out);
            }
            ValExpr::Add(a, b) => {
                out.push(2);
                a.encode(out);
                b.encode(out);
            }
            ValExpr::Sub(a, b) => {
                out.push(3);
                a.encode(out);
                b.encode(out);
            }
            ValExpr::Mul(a, b) => {
                out.push(4);
                a.encode(out);
                b.encode(out);
            }
            ValExpr::Div(a, b) => {
                out.push(5);
                a.encode(out);
                b.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let pair = |r: &mut Reader<'_>| -> Result<(Box<ValExpr>, Box<ValExpr>), DecodeError> {
            Ok((Box::new(ValExpr::decode(r)?), Box::new(ValExpr::decode(r)?)))
        };
        match r.u8()? {
            0 => Ok(ValExpr::Var(String::decode(r)?)),
            1 => Ok(ValExpr::Lit(Value::decode(r)?)),
            2 => pair(r).map(|(a, b)| ValExpr::Add(a, b)),
            3 => pair(r).map(|(a, b)| ValExpr::Sub(a, b)),
            4 => pair(r).map(|(a, b)| ValExpr::Mul(a, b)),
            5 => pair(r).map(|(a, b)| ValExpr::Div(a, b)),
            tag => Err(DecodeError::BadTag {
                what: "ValExpr",
                tag,
            }),
        }
    }
}

impl Wire for RelKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            RelKind::Base => 0,
            RelKind::View => 1,
            RelKind::Delta => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(RelKind::Base),
            1 => Ok(RelKind::View),
            2 => Ok(RelKind::Delta),
            tag => Err(DecodeError::BadTag {
                what: "RelKind",
                tag,
            }),
        }
    }
}

impl Wire for RelRef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.kind.encode(out);
        self.cols.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(RelRef {
            name: String::decode(r)?,
            kind: RelKind::decode(r)?,
            cols: Vec::decode(r)?,
        })
    }
}

impl Wire for Expr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Expr::Rel(r) => {
                out.push(0);
                r.encode(out);
            }
            Expr::Union(l, r) => {
                out.push(1);
                l.encode(out);
                r.encode(out);
            }
            Expr::Join(l, r) => {
                out.push(2);
                l.encode(out);
                r.encode(out);
            }
            Expr::Sum { group_by, body } => {
                out.push(3);
                group_by.encode(out);
                body.encode(out);
            }
            Expr::Const(c) => {
                out.push(4);
                c.encode(out);
            }
            Expr::Val(v) => {
                out.push(5);
                v.encode(out);
            }
            Expr::Cmp { op, lhs, rhs } => {
                out.push(6);
                op.encode(out);
                lhs.encode(out);
                rhs.encode(out);
            }
            Expr::AssignVal { var, value } => {
                out.push(7);
                var.encode(out);
                value.encode(out);
            }
            Expr::AssignQuery { var, query } => {
                out.push(8);
                var.encode(out);
                query.encode(out);
            }
            Expr::Exists(q) => {
                out.push(9);
                q.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(Expr::Rel(RelRef::decode(r)?)),
            1 => Ok(Expr::Union(
                Box::new(Expr::decode(r)?),
                Box::new(Expr::decode(r)?),
            )),
            2 => Ok(Expr::Join(
                Box::new(Expr::decode(r)?),
                Box::new(Expr::decode(r)?),
            )),
            3 => Ok(Expr::Sum {
                group_by: Schema::decode(r)?,
                body: Box::new(Expr::decode(r)?),
            }),
            4 => Ok(Expr::Const(f64::decode(r)?)),
            5 => Ok(Expr::Val(ValExpr::decode(r)?)),
            6 => Ok(Expr::Cmp {
                op: CmpOp::decode(r)?,
                lhs: ValExpr::decode(r)?,
                rhs: ValExpr::decode(r)?,
            }),
            7 => Ok(Expr::AssignVal {
                var: String::decode(r)?,
                value: ValExpr::decode(r)?,
            }),
            8 => Ok(Expr::AssignQuery {
                var: String::decode(r)?,
                query: Box::new(Expr::decode(r)?),
            }),
            9 => Ok(Expr::Exists(Box::new(Expr::decode(r)?))),
            tag => Err(DecodeError::BadTag { what: "Expr", tag }),
        }
    }
}

// ---------------------------------------------------------------------------
// Plans and statements
// ---------------------------------------------------------------------------

impl Wire for StmtOp {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            StmtOp::AddTo => 0,
            StmtOp::SetTo => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(StmtOp::AddTo),
            1 => Ok(StmtOp::SetTo),
            tag => Err(DecodeError::BadTag {
                what: "StmtOp",
                tag,
            }),
        }
    }
}

impl Wire for StmtMode {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            StmtMode::Local => 0,
            StmtMode::Distributed => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(StmtMode::Local),
            1 => Ok(StmtMode::Distributed),
            tag => Err(DecodeError::BadTag {
                what: "StmtMode",
                tag,
            }),
        }
    }
}

impl Wire for PartitionFn {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PartitionFn::ByColumns(cols) => {
                out.push(0);
                cols.encode(out);
            }
            PartitionFn::Replicate => out.push(1),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(PartitionFn::ByColumns(Vec::decode(r)?)),
            1 => Ok(PartitionFn::Replicate),
            tag => Err(DecodeError::BadTag {
                what: "PartitionFn",
                tag,
            }),
        }
    }
}

impl Wire for Transform {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Transform::Scatter(pf) => {
                out.push(0);
                pf.encode(out);
            }
            Transform::Repart(pf) => {
                out.push(1);
                pf.encode(out);
            }
            Transform::Gather => out.push(2),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(Transform::Scatter(PartitionFn::decode(r)?)),
            1 => Ok(Transform::Repart(PartitionFn::decode(r)?)),
            2 => Ok(Transform::Gather),
            tag => Err(DecodeError::BadTag {
                what: "Transform",
                tag,
            }),
        }
    }
}

impl Wire for DistStmtKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DistStmtKind::Compute(e) => {
                out.push(0);
                e.encode(out);
            }
            DistStmtKind::Transform { kind, source } => {
                out.push(1);
                kind.encode(out);
                source.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(DistStmtKind::Compute(Expr::decode(r)?)),
            1 => Ok(DistStmtKind::Transform {
                kind: Transform::decode(r)?,
                source: String::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "DistStmtKind",
                tag,
            }),
        }
    }
}

impl Wire for DistStatement {
    fn encode(&self, out: &mut Vec<u8>) {
        self.target.encode(out);
        self.target_schema.encode(out);
        self.op.encode(out);
        self.kind.encode(out);
        self.mode.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(DistStatement {
            target: String::decode(r)?,
            target_schema: Schema::decode(r)?,
            op: StmtOp::decode(r)?,
            kind: DistStmtKind::decode(r)?,
            mode: StmtMode::decode(r)?,
        })
    }
}

impl Wire for Strategy {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Strategy::Reevaluation => 0,
            Strategy::ClassicalIvm => 1,
            Strategy::RecursiveIvm => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(Strategy::Reevaluation),
            1 => Ok(Strategy::ClassicalIvm),
            2 => Ok(Strategy::RecursiveIvm),
            tag => Err(DecodeError::BadTag {
                what: "Strategy",
                tag,
            }),
        }
    }
}

impl Wire for ViewDef {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.schema.encode(out);
        self.definition.encode(out);
        self.is_top.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ViewDef {
            name: String::decode(r)?,
            schema: Schema::decode(r)?,
            definition: Expr::decode(r)?,
            is_top: bool::decode(r)?,
        })
    }
}

impl Wire for Statement {
    fn encode(&self, out: &mut Vec<u8>) {
        self.target.encode(out);
        self.target_schema.encode(out);
        self.op.encode(out);
        self.expr.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Statement {
            target: String::decode(r)?,
            target_schema: Schema::decode(r)?,
            op: StmtOp::decode(r)?,
            expr: Expr::decode(r)?,
        })
    }
}

impl Wire for Trigger {
    fn encode(&self, out: &mut Vec<u8>) {
        self.relation.encode(out);
        self.relation_schema.encode(out);
        self.statements.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Trigger {
            relation: String::decode(r)?,
            relation_schema: Schema::decode(r)?,
            statements: Vec::decode(r)?,
        })
    }
}

impl Wire for MaintenancePlan {
    fn encode(&self, out: &mut Vec<u8>) {
        self.query_name.encode(out);
        self.strategy.encode(out);
        self.top_view.encode(out);
        self.views.encode(out);
        self.triggers.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MaintenancePlan {
            query_name: String::decode(r)?,
            strategy: Strategy::decode(r)?,
            top_view: String::decode(r)?,
            views: Vec::decode(r)?,
            triggers: Vec::decode(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Protocol messages
// ---------------------------------------------------------------------------

/// Deltas maps are encoded as a key-sorted entry list (deterministic bytes
/// for identical content) and decoded into a fresh map; workers only look
/// entries up by name, never iterate, so the map's own layout is inert.
fn encode_deltas(deltas: &HashMap<String, Relation>, out: &mut Vec<u8>) {
    let mut entries: Vec<(&String, &Relation)> = deltas.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    (entries.len() as u32).encode(out);
    for (name, rel) in entries {
        name.encode(out);
        rel.encode(out);
    }
}

/// Encode the statements segment of a `RunBlock` broadcast on its own.
///
/// `ToWorker::Request(RunBlock { id, ctx, statements, deltas })` encodes as
/// `[0x41][0x00][id: 8B LE][trace: 8B LE][parent: 8B LE]` followed by this
/// segment and then [`encode_deltas_segment`] — the transport exploits that
/// split to encode each segment once per cluster (keyed by `Arc` identity)
/// and share the immutable bytes across all workers of a broadcast.  The
/// trace header rides in the per-worker prefix, never the shared segments.
pub fn encode_statements_segment(statements: &[DistStatement]) -> Vec<u8> {
    let mut out = Vec::new();
    (statements.len() as u32).encode(&mut out);
    for stmt in statements {
        stmt.encode(&mut out);
    }
    out
}

/// Encode the deltas segment of a `RunBlock` broadcast on its own (see
/// [`encode_statements_segment`]).
pub fn encode_deltas_segment(deltas: &HashMap<String, Relation>) -> Vec<u8> {
    let mut out = Vec::new();
    encode_deltas(deltas, &mut out);
    out
}

fn decode_deltas(r: &mut Reader<'_>) -> Result<HashMap<String, Relation>, DecodeError> {
    let len = u32::decode(r)? as usize;
    let mut map = HashMap::with_capacity(len.min(r.remaining()));
    for _ in 0..len {
        let name = String::decode(r)?;
        let rel = Relation::decode(r)?;
        map.insert(name, rel);
    }
    Ok(map)
}

/// The wire-propagated trace header: 16 fixed bytes, `(trace, parent)` —
/// `(0, 0)` when the carrying command is outside any batch trace.
impl Wire for SpanContext {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trace.encode(out);
        self.parent.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SpanContext {
            trace: u64::decode(r)?,
            parent: u64::decode(r)?,
        })
    }
}

/// Finished spans piggybacked on the `Stats` reply.  Durations ride as
/// plain micros off the sending process's epoch; the driver only compares
/// the structural fields across transports, never the clocks.
impl Wire for SpanRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trace.encode(out);
        self.id.encode(out);
        self.parent.encode(out);
        self.track.encode(out);
        self.start_micros.encode(out);
        self.end_micros.encode(out);
        self.name.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SpanRecord {
            trace: u64::decode(r)?,
            id: u64::decode(r)?,
            parent: u64::decode(r)?,
            track: u32::decode(r)?,
            start_micros: u64::decode(r)?,
            end_micros: u64::decode(r)?,
            name: String::decode(r)?,
        })
    }
}

impl Wire for WorkerStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.blocks_run.encode(out);
        self.statements.encode(out);
        self.instructions.encode(out);
        self.applies.encode(out);
        self.tuples_applied.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(WorkerStats {
            blocks_run: u64::decode(r)?,
            statements: u64::decode(r)?,
            instructions: u64::decode(r)?,
            applies: u64::decode(r)?,
            tuples_applied: u64::decode(r)?,
        })
    }
}

impl Wire for WorkerStatsSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.stats.encode(out);
        self.cardinalities.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(WorkerStatsSnapshot {
            stats: WorkerStats::decode(r)?,
            cardinalities: Vec::decode(r)?,
        })
    }
}

impl Wire for WorkerSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.views.encode(out);
        self.temps.encode(out);
        self.stats.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(WorkerSnapshot {
            views: Vec::decode(r)?,
            temps: Vec::decode(r)?,
            stats: WorkerStats::decode(r)?,
        })
    }
}

impl Wire for WorkerRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WorkerRequest::RunBlock {
                id,
                ctx,
                statements,
                deltas,
            } => {
                out.push(0);
                id.encode(out);
                ctx.encode(out);
                statements.encode(out);
                encode_deltas(deltas, out);
            }
            WorkerRequest::ApplyMany { id, ctx, applies } => {
                out.push(1);
                id.encode(out);
                ctx.encode(out);
                applies.encode(out);
            }
            WorkerRequest::Fetch { id, ctx, name } => {
                out.push(2);
                id.encode(out);
                ctx.encode(out);
                name.encode(out);
            }
            WorkerRequest::Snapshot { id, view } => {
                out.push(3);
                id.encode(out);
                view.encode(out);
            }
            WorkerRequest::Barrier { id } => {
                out.push(4);
                id.encode(out);
            }
            WorkerRequest::Shutdown => out.push(5),
            WorkerRequest::Stats { id } => {
                out.push(6);
                id.encode(out);
            }
            WorkerRequest::Ping { id } => {
                out.push(7);
                id.encode(out);
            }
            WorkerRequest::Checkpoint { id, ship } => {
                out.push(8);
                id.encode(out);
                ship.encode(out);
            }
            WorkerRequest::Restore { id, snapshot } => {
                out.push(9);
                id.encode(out);
                snapshot.encode(out);
            }
            WorkerRequest::SetCapture { id, views } => {
                out.push(10);
                id.encode(out);
                views.encode(out);
            }
            WorkerRequest::TakeCaptured { id } => {
                out.push(11);
                id.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(WorkerRequest::RunBlock {
                id: u64::decode(r)?,
                ctx: SpanContext::decode(r)?,
                statements: Arc::decode(r)?,
                deltas: Arc::new(decode_deltas(r)?),
            }),
            1 => Ok(WorkerRequest::ApplyMany {
                id: u64::decode(r)?,
                ctx: SpanContext::decode(r)?,
                applies: Vec::decode(r)?,
            }),
            2 => Ok(WorkerRequest::Fetch {
                id: u64::decode(r)?,
                ctx: SpanContext::decode(r)?,
                name: String::decode(r)?,
            }),
            3 => Ok(WorkerRequest::Snapshot {
                id: u64::decode(r)?,
                view: String::decode(r)?,
            }),
            4 => Ok(WorkerRequest::Barrier {
                id: u64::decode(r)?,
            }),
            5 => Ok(WorkerRequest::Shutdown),
            6 => Ok(WorkerRequest::Stats {
                id: u64::decode(r)?,
            }),
            7 => Ok(WorkerRequest::Ping {
                id: u64::decode(r)?,
            }),
            8 => Ok(WorkerRequest::Checkpoint {
                id: u64::decode(r)?,
                ship: bool::decode(r)?,
            }),
            9 => Ok(WorkerRequest::Restore {
                id: u64::decode(r)?,
                snapshot: Box::new(WorkerSnapshot::decode(r)?),
            }),
            10 => Ok(WorkerRequest::SetCapture {
                id: u64::decode(r)?,
                views: Vec::decode(r)?,
            }),
            11 => Ok(WorkerRequest::TakeCaptured {
                id: u64::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "WorkerRequest",
                tag,
            }),
        }
    }
}

impl Wire for WorkerReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WorkerReply::Ran { id, instructions } => {
                out.push(0);
                id.encode(out);
                instructions.encode(out);
            }
            WorkerReply::Rel { id, rel } => {
                out.push(1);
                id.encode(out);
                rel.encode(out);
            }
            WorkerReply::Ack { id } => {
                out.push(2);
                id.encode(out);
            }
            WorkerReply::Stats {
                id,
                snapshot,
                spans,
            } => {
                out.push(3);
                id.encode(out);
                snapshot.encode(out);
                spans.encode(out);
            }
            WorkerReply::Pong { id } => {
                out.push(4);
                id.encode(out);
            }
            WorkerReply::Checkpoint { id, snapshot } => {
                out.push(5);
                id.encode(out);
                snapshot.encode(out);
            }
            WorkerReply::Captured { id, ops } => {
                out.push(6);
                id.encode(out);
                ops.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(WorkerReply::Ran {
                id: u64::decode(r)?,
                instructions: u64::decode(r)?,
            }),
            1 => Ok(WorkerReply::Rel {
                id: u64::decode(r)?,
                rel: Relation::decode(r)?,
            }),
            2 => Ok(WorkerReply::Ack {
                id: u64::decode(r)?,
            }),
            3 => Ok(WorkerReply::Stats {
                id: u64::decode(r)?,
                snapshot: WorkerStatsSnapshot::decode(r)?,
                spans: Vec::decode(r)?,
            }),
            4 => Ok(WorkerReply::Pong {
                id: u64::decode(r)?,
            }),
            5 => Ok(WorkerReply::Checkpoint {
                id: u64::decode(r)?,
                snapshot: Box::new(WorkerSnapshot::decode(r)?),
            }),
            6 => Ok(WorkerReply::Captured {
                id: u64::decode(r)?,
                ops: Vec::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "WorkerReply",
                tag,
            }),
        }
    }
}

/// Driver → worker frames: the `Init` handshake carrying the plan, then a
/// stream of protocol requests.
pub enum ToWorker {
    /// First frame after the connection is slotted: the maintenance plan
    /// the worker builds its [`WorkerState`] from.
    ///
    /// [`WorkerState`]: hotdog_distributed::WorkerState
    Init {
        plan: MaintenancePlan,
    },
    Request(WorkerRequest),
}

impl Wire for ToWorker {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ToWorker::Init { plan } => {
                out.push(0x40);
                plan.encode(out);
            }
            ToWorker::Request(req) => {
                out.push(0x41);
                req.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0x40 => Ok(ToWorker::Init {
                plan: MaintenancePlan::decode(r)?,
            }),
            0x41 => Ok(ToWorker::Request(WorkerRequest::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "ToWorker",
                tag,
            }),
        }
    }
}

/// Worker → driver frames: the `Hello` handshake naming the worker's
/// slot, then a stream of protocol replies.
pub enum ToDriver {
    /// First frame a worker sends after connecting: which worker slot it
    /// was started as (`--index`), so the driver can map the accepted
    /// connection — connections race, arrival order is meaningless.
    Hello {
        index: u32,
    },
    Reply(WorkerReply),
}

impl Wire for ToDriver {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ToDriver::Hello { index } => {
                out.push(0x80);
                index.encode(out);
            }
            ToDriver::Reply(rep) => {
                out.push(0x81);
                rep.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0x80 => Ok(ToDriver::Hello {
                index: u32::decode(r)?,
            }),
            0x81 => Ok(ToDriver::Reply(WorkerReply::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "ToDriver",
                tag,
            }),
        }
    }
}
