//! Deterministic fault injection for the TCP transport.
//!
//! A [`FaultPlan`] is a list of [`KillSpec`]s: *kill worker `w` before
//! (or after) the `n`-th message of kind `k` is sent to it*.  The plan is
//! evaluated at the transport's send chokepoint, so the kill point is a
//! pure function of the driver's message schedule — the same plan against
//! the same input stream kills at the same protocol moment on every run,
//! which is what lets the recovery oracle demand bit-identical final
//! views between a faulted and an unfaulted run.
//!
//! Plans come from three places:
//!
//! * programmatically, via [`TcpConfig::with_faults`](crate::TcpConfig);
//! * the `HOTDOG_FAULT` environment variable, parsed by
//!   [`FaultPlan::parse`] — e.g. `kill:1:run_block:3:before` (kill worker
//!   1 just before its 3rd `RunBlock`), multiple specs `;`-separated;
//! * a seed, via [`FaultPlan::seeded`] or `HOTDOG_FAULT=seed:42` — a
//!   splitmix64 stream materializes one kill at a plausible early point
//!   in the schedule, which is how the CI chaos job derives a fresh but
//!   reproducible kill point per run.

use hotdog_distributed::protocol::WorkerRequest;
use std::collections::HashMap;
use std::fmt;

/// The message kinds a [`KillSpec`] can count (one per
/// [`WorkerRequest`] variant that crosses the wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    RunBlock,
    ApplyMany,
    Fetch,
    Snapshot,
    Barrier,
    Stats,
    Ping,
    Checkpoint,
    Restore,
    SetCapture,
    TakeCaptured,
    Shutdown,
}

impl FaultKind {
    /// Classify a request for kill-point counting.
    pub fn of(request: &WorkerRequest) -> FaultKind {
        match request {
            WorkerRequest::RunBlock { .. } => FaultKind::RunBlock,
            WorkerRequest::ApplyMany { .. } => FaultKind::ApplyMany,
            WorkerRequest::Fetch { .. } => FaultKind::Fetch,
            WorkerRequest::Snapshot { .. } => FaultKind::Snapshot,
            WorkerRequest::Barrier { .. } => FaultKind::Barrier,
            WorkerRequest::Stats { .. } => FaultKind::Stats,
            WorkerRequest::Ping { .. } => FaultKind::Ping,
            WorkerRequest::Checkpoint { .. } => FaultKind::Checkpoint,
            WorkerRequest::Restore { .. } => FaultKind::Restore,
            WorkerRequest::SetCapture { .. } => FaultKind::SetCapture,
            WorkerRequest::TakeCaptured { .. } => FaultKind::TakeCaptured,
            WorkerRequest::Shutdown => FaultKind::Shutdown,
        }
    }

    /// The spelling used by `HOTDOG_FAULT` and telemetry events.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::RunBlock => "run_block",
            FaultKind::ApplyMany => "apply_many",
            FaultKind::Fetch => "fetch",
            FaultKind::Snapshot => "snapshot",
            FaultKind::Barrier => "barrier",
            FaultKind::Stats => "stats",
            FaultKind::Ping => "ping",
            FaultKind::Checkpoint => "checkpoint",
            FaultKind::Restore => "restore",
            FaultKind::SetCapture => "set_capture",
            FaultKind::TakeCaptured => "take_captured",
            FaultKind::Shutdown => "shutdown",
        }
    }

    fn from_str(s: &str) -> Option<FaultKind> {
        Some(match s {
            "run_block" => FaultKind::RunBlock,
            "apply_many" => FaultKind::ApplyMany,
            "fetch" => FaultKind::Fetch,
            "snapshot" => FaultKind::Snapshot,
            "barrier" => FaultKind::Barrier,
            "stats" => FaultKind::Stats,
            "ping" => FaultKind::Ping,
            "checkpoint" => FaultKind::Checkpoint,
            "restore" => FaultKind::Restore,
            "set_capture" => FaultKind::SetCapture,
            "take_captured" => FaultKind::TakeCaptured,
            "shutdown" => FaultKind::Shutdown,
            _ => return None,
        })
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether the kill lands before the counted message is written to the
/// socket (the worker never sees it) or after (the worker may have
/// started executing it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Before,
    After,
}

/// One deterministic kill point: worker `worker` dies at the `nth`
/// (1-based) message of kind `kind` sent to it, at `phase`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KillSpec {
    pub worker: usize,
    pub kind: FaultKind,
    pub nth: u64,
    pub phase: Phase,
}

impl fmt::Display for KillSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Before => "before",
            Phase::After => "after",
        };
        write!(f, "kill:{}:{}:{}:{phase}", self.worker, self.kind, self.nth)
    }
}

/// A full fault schedule (any number of kill points).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub kills: Vec<KillSpec>,
}

impl FaultPlan {
    /// A plan with a single kill point.
    pub fn kill(worker: usize, kind: FaultKind, nth: u64, phase: Phase) -> FaultPlan {
        FaultPlan {
            kills: vec![KillSpec {
                worker,
                kind,
                nth,
                phase,
            }],
        }
    }

    /// Parse the `HOTDOG_FAULT` syntax: `;`-separated specs, each either
    /// `kill:<worker>:<kind>:<n>[:before|after]` (default `before`) or
    /// `seed:<u64>` (expanded via [`FaultPlan::seeded`] with `workers`).
    pub fn parse(s: &str, workers: usize) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for spec in s.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            let parts: Vec<&str> = spec.split(':').collect();
            match parts.as_slice() {
                ["seed", seed] => {
                    let seed: u64 = seed
                        .parse()
                        .map_err(|e| format!("bad seed in {spec:?}: {e}"))?;
                    plan.kills.extend(FaultPlan::seeded(seed, workers).kills);
                }
                ["kill", worker, kind, nth] | ["kill", worker, kind, nth, _] => {
                    let phase = match parts.get(4) {
                        None | Some(&"before") => Phase::Before,
                        Some(&"after") => Phase::After,
                        Some(p) => return Err(format!("bad phase {p:?} in {spec:?}")),
                    };
                    plan.kills.push(KillSpec {
                        worker: worker
                            .parse()
                            .map_err(|e| format!("bad worker in {spec:?}: {e}"))?,
                        kind: FaultKind::from_str(kind)
                            .ok_or_else(|| format!("bad kind {kind:?} in {spec:?}"))?,
                        nth: nth.parse().map_err(|e| format!("bad n in {spec:?}: {e}"))?,
                        phase,
                    });
                }
                _ => return Err(format!("bad fault spec {spec:?}")),
            }
        }
        Ok(plan)
    }

    /// Materialize one seeded kill point for a `workers`-node cluster: a
    /// splitmix64 stream picks the victim, a message kind from the
    /// steady-state schedule, an early ordinal, and the phase.  Same seed
    /// and worker count → same plan, on every host.
    pub fn seeded(seed: u64, workers: usize) -> FaultPlan {
        let mut state = seed;
        let mut next = move || {
            // splitmix64: the standard 64-bit mix, good enough to
            // decorrelate consecutive draws from small seeds.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        // Kinds every schedule sends repeatedly, so an early ordinal is
        // guaranteed to fire on any non-trivial stream.
        const KINDS: [FaultKind; 3] = [FaultKind::RunBlock, FaultKind::ApplyMany, FaultKind::Fetch];
        FaultPlan::kill(
            (next() % workers.max(1) as u64) as usize,
            KINDS[(next() % KINDS.len() as u64) as usize],
            1 + next() % 4,
            if next() % 2 == 0 {
                Phase::Before
            } else {
                Phase::After
            },
        )
    }

    /// The plan named by the `HOTDOG_FAULT` environment variable, if any.
    /// Malformed values are a hard error (a chaos run silently running
    /// fault-free would defeat its purpose).
    pub fn from_env(workers: usize) -> Option<FaultPlan> {
        let raw = std::env::var("HOTDOG_FAULT").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        Some(
            FaultPlan::parse(&raw, workers)
                .unwrap_or_else(|e| panic!("invalid HOTDOG_FAULT={raw:?}: {e}")),
        )
    }
}

/// Runtime state of a plan: per-(worker, kind) send counters and the
/// fired flags.  Owned by the transport; counting happens at its send
/// chokepoint.
#[derive(Debug, Default)]
pub struct FaultState {
    plan: FaultPlan,
    counts: HashMap<(usize, FaultKind), u64>,
    fired: Vec<bool>,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            fired: vec![false; plan.kills.len()],
            plan,
            counts: HashMap::new(),
        }
    }

    /// Count one message about to be sent to `worker`; if an unfired kill
    /// spec matches its ordinal, return the spec (marking it fired) so
    /// the transport can kill the worker at the requested phase.
    pub fn on_send(&mut self, worker: usize, request: &WorkerRequest) -> Option<KillSpec> {
        let kind = FaultKind::of(request);
        let n = self.counts.entry((worker, kind)).or_insert(0);
        *n += 1;
        let n = *n;
        for (i, spec) in self.plan.kills.iter().enumerate() {
            if !self.fired[i] && spec.worker == worker && spec.kind == kind && spec.nth == n {
                self.fired[i] = true;
                return Some(spec.clone());
            }
        }
        None
    }

    /// How many kill specs have fired so far.
    pub fn fired(&self) -> usize {
        self.fired.iter().filter(|f| **f).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_display() {
        let plan = FaultPlan::parse("kill:1:run_block:3:after; kill:0:fetch:2", 4).unwrap();
        assert_eq!(
            plan.kills,
            vec![
                KillSpec {
                    worker: 1,
                    kind: FaultKind::RunBlock,
                    nth: 3,
                    phase: Phase::After,
                },
                KillSpec {
                    worker: 0,
                    kind: FaultKind::Fetch,
                    nth: 2,
                    phase: Phase::Before,
                },
            ]
        );
        let rendered = plan
            .kills
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(";");
        assert_eq!(FaultPlan::parse(&rendered, 4).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("kill:x:run_block:1", 4).is_err());
        assert!(FaultPlan::parse("kill:0:no_such_kind:1", 4).is_err());
        assert!(FaultPlan::parse("kill:0:fetch:1:sideways", 4).is_err());
        assert!(FaultPlan::parse("explode", 4).is_err());
    }

    #[test]
    fn seeded_is_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 4);
            assert_eq!(a, FaultPlan::seeded(seed, 4));
            let spec = &a.kills[0];
            assert!(spec.worker < 4);
            assert!((1..=4).contains(&spec.nth));
        }
        // Different seeds must not all collapse to one kill point.
        let distinct: std::collections::HashSet<String> = (0..64)
            .map(|s| FaultPlan::seeded(s, 4).kills[0].to_string())
            .collect();
        assert!(distinct.len() > 8, "seeded plans barely vary: {distinct:?}");
    }

    #[test]
    fn state_fires_each_spec_once_at_its_ordinal() {
        let mut st = FaultState::new(FaultPlan::kill(1, FaultKind::Barrier, 2, Phase::Before));
        let barrier = |id| WorkerRequest::Barrier { id };
        assert!(st.on_send(1, &barrier(1)).is_none()); // 1st barrier
        assert!(st.on_send(0, &barrier(2)).is_none()); // other worker
        let fired = st.on_send(1, &barrier(3)); // 2nd barrier to worker 1
        assert_eq!(
            fired,
            Some(KillSpec {
                worker: 1,
                kind: FaultKind::Barrier,
                nth: 2,
                phase: Phase::Before,
            })
        );
        assert!(st.on_send(1, &barrier(4)).is_none()); // never re-fires
        assert_eq!(st.fired(), 1);
    }
}
