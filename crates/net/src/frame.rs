//! Length-prefixed framing over a byte stream.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 LE    | payload: len bytes        |
//! +----------------+---------------------------+
//! ```
//!
//! where the payload is a [`Wire`]-encoded message.  Frames longer than
//! [`MAX_FRAME`] are rejected before any allocation — a corrupt or
//! hostile length prefix must not OOM the process — and a payload that
//! fails to decode (bad tag, truncation, trailing bytes) surfaces as an
//! `InvalidData` I/O error, killing the connection loudly.

use crate::codec::{decode_from_slice, encode_to_vec, Wire};
use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (256 MiB — far above any real
/// message; a `u32` length beyond it is treated as stream corruption).
pub const MAX_FRAME: usize = 256 << 20;

/// Write one frame (length prefix + payload).
///
/// Enforced on the send side too: an oversized payload errors *here*,
/// with a message naming the limit — otherwise it would be shipped, and
/// the peer's `read_frame` would misdiagnose a working cluster as stream
/// corruption (and beyond 4 GiB the `u32` prefix would silently truncate
/// and desynchronize the stream).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "refusing to send frame of {} bytes (MAX_FRAME is {MAX_FRAME}); \
                 a relation this large must be split before shipping",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame's payload.  `Err(UnexpectedEof)` with an empty message
/// means the peer closed cleanly between frames; any other error is a
/// protocol or transport failure.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Encode and send one message as a frame.
pub fn send_msg<M: Wire>(w: &mut impl Write, msg: &M) -> io::Result<()> {
    write_frame(w, &encode_to_vec(msg))
}

/// Send an already-encoded payload (for broadcasts: encode once, frame
/// per peer).
pub fn send_payload(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write_frame(w, payload)
}

/// Send one frame whose payload is the concatenation of `parts`, without
/// materializing the concatenation (the zero-copy broadcast path: a short
/// per-worker header followed by body segments shared — and encoded once —
/// across all peers).  Byte-identical on the wire to
/// `send_payload(w, &parts.concat())`.
pub fn send_payload_parts(w: &mut impl Write, parts: &[&[u8]]) -> io::Result<()> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "refusing to send frame of {len} bytes (MAX_FRAME is {MAX_FRAME}); \
                 a relation this large must be split before shipping"
            ),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    for p in parts {
        w.write_all(p)?;
    }
    Ok(())
}

/// Receive and decode one message.
pub fn recv_msg<M: Wire>(r: &mut impl Read) -> io::Result<M> {
    let payload = read_frame(r)?;
    decode_from_slice(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
}
