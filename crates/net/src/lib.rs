//! # hotdog-net
//!
//! A real socket transport for the distributed IVM runtime: the same
//! driver, the same FIFO-command/tagged-reply protocol, with worker
//! *processes* joined by TCP instead of worker threads joined by `mpsc`
//! channels.
//!
//! Three pieces:
//!
//! * [`codec`] — a hand-rolled, length-prefixed binary encoding (no
//!   serde; the build image is offline) for the full driver↔worker
//!   message set: values, tuples, relations, expressions, maintenance
//!   plans, commands with request ids, and the `Ran`/`Rel`/`Ack` replies.
//!   Floats travel as raw IEEE-754 bits and relations as sorted pair
//!   lists, so decoded state is **bit-identical** — in content and in map
//!   layout — to what an in-process backend holds.
//! * [`worker`] — the worker event loop over one TCP stream (what the
//!   `hotdog-worker` binary runs): `Hello` handshake, `Init` plan, then
//!   [`handle_request`](hotdog_distributed::protocol::handle_request) per
//!   frame — the exact interpreter the threaded runtime's workers use.
//! * [`cluster`] — [`TcpTransport`] and [`TcpCluster`]: the driver binds
//!   a listener (loopback by default, any host:port for multi-host),
//!   spawns worker subprocesses (or in-process socket threads, or waits
//!   for external workers), and runs the transport-generic
//!   [`Driver`](hotdog_runtime::Driver) over the connections — sharing
//!   the admission queue, delta coalescing, request-id ledger, adaptive
//!   control and backpressure with `ThreadedCluster` rather than forking
//!   them.
//!
//! The differential oracle (`tests/pipeline_differential.rs`) pins
//! `TcpCluster` bit-for-bit against the simulated cluster across the
//! TPC-H/TPC-DS catalog, making TCP the third independently-scheduled
//! backend under the oracle.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod codec;
pub mod faults;
pub mod frame;
pub mod worker;

pub use cluster::{TcpCluster, TcpConfig, TcpTransport, WorkerSpawn};
pub use codec::{decode_from_slice, encode_to_vec, DecodeError, Reader, Wire};
pub use faults::{FaultKind, FaultPlan, FaultState, KillSpec, Phase};
pub use frame::{read_frame, recv_msg, send_msg, write_frame, MAX_FRAME};
pub use worker::{run_worker, serve};
