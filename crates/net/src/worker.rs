//! The worker side of the socket transport: one [`WorkerState`] event
//! loop over a TCP stream.
//!
//! This is the function the `hotdog-worker` binary runs; it is also
//! spawnable on an in-process thread ([`TcpConfig::spawn`]'s
//! `WorkerSpawn::Thread` mode), which exercises the identical wire path
//! without a subprocess.  All request semantics live in
//! [`hotdog_distributed::protocol::handle_request`], shared with the
//! thread-channel runtime — the loop here only moves frames.
//!
//! [`TcpConfig::spawn`]: crate::cluster::TcpConfig

use crate::codec::{ToDriver, ToWorker};
use crate::frame::{recv_msg, send_msg};
use hotdog_distributed::protocol::{handle_request, WorkerRequest};
use hotdog_distributed::WorkerState;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// Connect to a driver at `addr`, introduce ourselves as worker slot
/// `index`, and serve requests until `Shutdown` (or the driver closes
/// the connection).
pub fn run_worker(addr: &str, index: u32) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    serve(stream, index)
}

/// Serve one driver connection: `Hello` handshake, `Init` plan, then the
/// FIFO request loop.
pub fn serve(stream: TcpStream, index: u32) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    send_msg(&mut writer, &ToDriver::Hello { index })?;
    writer.flush()?;

    let plan = match recv_msg::<ToWorker>(&mut reader)? {
        ToWorker::Init { plan } => plan,
        ToWorker::Request(_) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "protocol error: request before Init",
            ))
        }
    };
    let mut state = WorkerState::for_plan(&plan);
    // Same track numbering as the thread-channel transport (driver is
    // track 0), so a trace stitched over TCP is structurally identical.
    state.set_trace_track(index + 1);

    loop {
        let msg = match recv_msg::<ToWorker>(&mut reader) {
            Ok(m) => m,
            // The driver dropping the connection between frames is a
            // clean shutdown (its Drop path may lose the race with an
            // explicit Shutdown frame).
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            ToWorker::Init { .. } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "protocol error: duplicate Init",
                ))
            }
            ToWorker::Request(WorkerRequest::Shutdown) => return Ok(()),
            ToWorker::Request(req) => {
                if let Some(reply) = handle_request(&mut state, req) {
                    send_msg(&mut writer, &ToDriver::Reply(reply))?;
                    // One flush per reply: the driver may be blocked on
                    // exactly this frame.
                    writer.flush()?;
                }
            }
        }
    }
}
