//! Codec correctness: round-trip property tests over random values,
//! tuples, relations and protocol messages — including the adversarial
//! floats (NaN, negative zero, infinities, denormals), empty relations
//! and very long strings — plus rejection tests for truncated and
//! corrupt frames, and the reconciliation of the O(1)
//! `Relation::serialized_size` accounting against real encoded bytes.

use hotdog_algebra::relation::Relation;
use hotdog_algebra::schema::Schema;
use hotdog_algebra::tuple::Tuple;
use hotdog_algebra::value::Value;
use hotdog_distributed::protocol::{WorkerReply, WorkerRequest};
use hotdog_ivm::{compile_recursive, MaintenancePlan};
use hotdog_net::codec::{encode_deltas_segment, encode_statements_segment, ToDriver, ToWorker};
use hotdog_net::{decode_from_slice, encode_to_vec, read_frame, write_frame, DecodeError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Random-instance generators (seeded; the proptest shim drives the seed)
// ---------------------------------------------------------------------------

fn rand_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0usize..8) {
        0 => Value::Long(rng.gen_range(-1_000_000i64..1_000_000)),
        1 => Value::Long(i64::MIN + rng.gen_range(0i64..3)),
        2 => Value::Double(rng.gen_range(-1e9..1e9)),
        // The adversarial floats: NaN, ±0, infinities, denormals — all
        // must survive the wire bit-for-bit.
        3 => Value::Double(match rng.gen_range(0usize..5) {
            0 => f64::NAN,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            _ => 5e-324, // smallest positive denormal
        }),
        4 => {
            let len = rng.gen_range(0usize..12);
            let s: String = (0..len)
                .map(|_| char::from(b'a' + (rng.gen_range(0usize..26) as u8)))
                .collect();
            Value::str(s)
        }
        5 => Value::str("µ∂∫ — non-ascii"),
        6 => Value::Bool(rng.gen_range(0usize..2) == 1),
        _ => Value::Long(0),
    }
}

fn rand_tuple(rng: &mut StdRng, arity: usize) -> Tuple {
    Tuple((0..arity).map(|_| rand_value(rng)).collect())
}

fn rand_schema(rng: &mut StdRng) -> Schema {
    let arity = rng.gen_range(0usize..5);
    Schema::new((0..arity).map(|i| format!("c{i}")))
}

fn rand_relation(rng: &mut StdRng) -> Relation {
    let schema = rand_schema(rng);
    let arity = schema.len();
    let tuples = rng.gen_range(0usize..30);
    let mut rel = Relation::new(schema);
    for _ in 0..tuples {
        let mult = match rng.gen_range(0usize..6) {
            0 => -(rng.gen_range(0.0f64..100.0)),
            1 => rng.gen_range(0.0f64..1.0) * 1e-12,
            _ => rng.gen_range(0.0f64..1000.0),
        };
        rel.add(rand_tuple(rng, arity), mult);
    }
    rel
}

fn assert_bits_equal(a: &Relation, b: &Relation, what: &str) -> Result<(), String> {
    prop_assert_eq!(a.checksum(), b.checksum());
    prop_assert!(
        a.schema() == b.schema(),
        "{what}: schema changed: {:?} vs {:?}",
        a.schema(),
        b.schema()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Values round-trip with exact bits (NaN payloads, -0.0, ±inf,
    /// denormals, unicode strings).
    #[test]
    fn values_roundtrip_bit_exact(seed in 1usize..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        for _ in 0..20 {
            let v = rand_value(&mut rng);
            let decoded: Value = decode_from_slice(&encode_to_vec(&v))
                .map_err(|e| format!("decode failed: {e}"))?;
            match (&v, &decoded) {
                (Value::Double(a), Value::Double(b)) => {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => prop_assert_eq!(&v, &decoded),
            }
        }
    }

    /// Tuples and relations round-trip content-exactly, and the decoded
    /// relation's *layout* (iteration order) equals the canonical form —
    /// the property the bit-for-bit differential equality rests on.
    #[test]
    fn relations_roundtrip_canonically(seed in 1usize..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        for _ in 0..10 {
            let rel = rand_relation(&mut rng);
            let decoded: Relation = decode_from_slice(&encode_to_vec(&rel))
                .map_err(|e| format!("decode failed: {e}"))?;
            assert_bits_equal(&rel, &decoded, "roundtrip")?;
            let canonical_order: Vec<Tuple> =
                rel.canonical().iter().map(|(t, _)| t.clone()).collect();
            let decoded_order: Vec<Tuple> = decoded.iter().map(|(t, _)| t.clone()).collect();
            prop_assert_eq!(canonical_order, decoded_order);
        }
    }

    /// The O(1) `serialized_size` accounting reconciles *exactly* against
    /// the real encoder under the documented bound: the codec spends one
    /// tag byte per value plus a per-relation header (encoded schema +
    /// u32 tuple count); multiplicities are 8 bytes on both sides.
    #[test]
    fn serialized_size_matches_encoded_bytes(seed in 1usize..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        for _ in 0..10 {
            let rel = rand_relation(&mut rng);
            let encoded_len = encode_to_vec(&rel).len();
            let header = 4 // u32 column count
                + rel.schema().iter().map(|c| 4 + c.len()).sum::<usize>()
                + 4; // u32 tuple count
            let value_tags: usize = rel.iter().map(|(t, _)| t.arity()).sum();
            prop_assert_eq!(encoded_len, rel.serialized_size() + value_tags + header);
            // Direction of the drift is part of the contract: the O(1)
            // accounting never overcounts the wire.
            prop_assert!(encoded_len >= rel.serialized_size());
        }
    }

    /// Every strict prefix of an encoded message is rejected with an
    /// error — never a panic, never a silent partial decode.
    #[test]
    fn truncated_frames_are_rejected(seed in 1usize..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let rel = rand_relation(&mut rng);
        let msg = ToDriver::Reply(WorkerReply::Rel { id: seed as u64, rel });
        let encoded = encode_to_vec(&msg);
        for cut in 0..encoded.len() {
            prop_assert!(
                decode_from_slice::<ToDriver>(&encoded[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                encoded.len()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------------

#[test]
fn empty_relation_and_empty_tuple_roundtrip() {
    for rel in [
        Relation::new(Schema::empty()),
        Relation::new(Schema::new(["a", "b"])),
        Relation::scalar(42.5),
        Relation::scalar(f64::NAN),
    ] {
        let decoded: Relation = decode_from_slice(&encode_to_vec(&rel)).unwrap();
        assert_eq!(rel.checksum(), decoded.checksum());
        assert_eq!(rel.len(), decoded.len());
    }
}

#[test]
fn negative_zero_and_nan_multiplicities_survive() {
    let mut rel = Relation::new(Schema::new(["k"]));
    rel.add(Tuple(vec![Value::Long(1)]), -0.0_f64.min(-1e-300)); // tiny negative
    rel.add(Tuple(vec![Value::Long(2)]), f64::NAN);
    rel.add(Tuple(vec![Value::Double(-0.0)]), 3.0);
    let decoded: Relation = decode_from_slice(&encode_to_vec(&rel)).unwrap();
    assert_eq!(
        rel.checksum(),
        decoded.checksum(),
        "raw mult bits must survive"
    );
}

#[test]
fn long_strings_roundtrip() {
    // The u32 length prefix must carry strings far beyond any real
    // column value.
    let big = "x".repeat(1 << 20);
    let v = Value::str(&big);
    let decoded: Value = decode_from_slice(&encode_to_vec(&v)).unwrap();
    assert_eq!(v, decoded);

    let mut rel = Relation::new(Schema::new(["s"]));
    rel.add(Tuple(vec![Value::str(&big)]), 1.0);
    let decoded: Relation = decode_from_slice(&encode_to_vec(&rel)).unwrap();
    assert_eq!(rel.checksum(), decoded.checksum());
    // serialized_size reconciliation holds at this scale too.
    let header = 4 + (4 + 1) + 4;
    assert_eq!(
        encode_to_vec(&rel).len(),
        rel.serialized_size() + 1 + header
    );
}

#[test]
fn corrupt_tags_and_bytes_are_rejected() {
    // Unknown enum tag.
    let mut encoded = encode_to_vec(&Value::Long(7));
    encoded[0] = 0xEE;
    assert!(matches!(
        decode_from_slice::<Value>(&encoded),
        Err(DecodeError::BadTag { what: "Value", .. })
    ));

    // Boolean byte out of range.
    let mut encoded = encode_to_vec(&Value::Bool(true));
    encoded[1] = 7;
    assert_eq!(
        decode_from_slice::<Value>(&encoded),
        Err(DecodeError::BadBool(7))
    );

    // Invalid UTF-8 in a string value.
    let mut encoded = encode_to_vec(&Value::str("abcd"));
    encoded[5] = 0xFF; // first content byte
    assert_eq!(
        decode_from_slice::<Value>(&encoded),
        Err(DecodeError::BadUtf8)
    );

    // Trailing garbage after a complete message.
    let mut encoded = encode_to_vec(&Value::Long(7));
    encoded.push(0);
    assert_eq!(
        decode_from_slice::<Value>(&encoded),
        Err(DecodeError::TrailingBytes(1))
    );

    // A corrupt sequence length larger than the buffer must fail with
    // Eof, not allocate or panic.
    let mut encoded = encode_to_vec(&vec![1u64, 2, 3]);
    encoded[0] = 0xFF;
    encoded[1] = 0xFF;
    encoded[2] = 0xFF;
    encoded[3] = 0x7F;
    assert_eq!(
        decode_from_slice::<Vec<u64>>(&encoded),
        Err(DecodeError::UnexpectedEof)
    );
}

#[test]
fn oversized_and_truncated_frames_are_io_errors() {
    use std::io::Cursor;
    // Length prefix beyond MAX_FRAME.
    let mut buf = Vec::new();
    buf.extend_from_slice(&(u32::MAX).to_le_bytes());
    let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // Frame cut off mid-payload.
    let mut buf = Vec::new();
    write_frame(&mut buf, &[1, 2, 3, 4, 5]).unwrap();
    buf.truncate(buf.len() - 2);
    let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn maintenance_plans_roundtrip() {
    use hotdog_algebra::expr::*;
    // A plan with nested aggregates exercises every Expr variant the
    // compiler emits (joins, sums, assignments, comparisons, deltas).
    let nested = sum_total(join(rel("S", ["PK", "C2"]), val_var("C2")));
    let q = sum_total(join_all([
        rel("R", ["PK", "A"]),
        assign_query("X", nested),
        cmp_vars("A", CmpOp::Lt, "X"),
    ]));
    let plan = compile_recursive("Q17ish", &q);
    let decoded: MaintenancePlan = decode_from_slice(&encode_to_vec(&plan)).unwrap();
    // MaintenancePlan has no PartialEq; its pretty rendering covers every
    // field the worker consumes, and index requirements cover the
    // access-pattern analysis the worker's Database is built from.
    assert_eq!(plan.pretty(), decoded.pretty());
    assert_eq!(plan.index_requirements(), decoded.index_requirements());
    assert_eq!(plan.strategy, decoded.strategy);
}

#[test]
fn protocol_messages_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xD06F00D);
    let rel = rand_relation(&mut rng);

    // Request with statements + deltas.
    let plan = compile_recursive(
        "Q",
        &hotdog_algebra::expr::sum(
            ["B"],
            hotdog_algebra::expr::join(
                hotdog_algebra::expr::rel("R", ["A", "B"]),
                hotdog_algebra::expr::rel("S", ["B", "C"]),
            ),
        ),
    );
    let spec = hotdog_distributed::PartitioningSpec::heuristic(&plan, &["A"]);
    let dplan =
        hotdog_distributed::compile_distributed(&plan, &spec, hotdog_distributed::OptLevel::O3);
    let statements: Vec<_> = dplan.programs[0]
        .blocks
        .iter()
        .flat_map(|b| b.statements.clone())
        .collect();
    let mut deltas = std::collections::HashMap::new();
    deltas.insert("R".to_string(), rel.clone());

    let req = ToWorker::Request(WorkerRequest::RunBlock {
        id: 99,
        ctx: hotdog_telemetry::SpanContext {
            trace: 3,
            parent: 0xABCD,
        },
        statements: Arc::new(statements.clone()),
        deltas: Arc::new(deltas),
    });
    let decoded: ToWorker = decode_from_slice(&encode_to_vec(&req)).unwrap();
    match decoded {
        ToWorker::Request(WorkerRequest::RunBlock {
            id,
            ctx,
            statements: st,
            deltas: d,
        }) => {
            assert_eq!(id, 99);
            assert_eq!(ctx.trace, 3);
            assert_eq!(ctx.parent, 0xABCD);
            assert_eq!(st.len(), statements.len());
            assert_eq!(d["R"].checksum(), rel.checksum());
        }
        _ => panic!("wrong variant"),
    }

    // Reply with a relation.
    let rep = ToDriver::Reply(WorkerReply::Rel {
        id: 7,
        rel: rel.clone(),
    });
    match decode_from_slice::<ToDriver>(&encode_to_vec(&rep)).unwrap() {
        ToDriver::Reply(WorkerReply::Rel { id, rel: r }) => {
            assert_eq!(id, 7);
            assert_eq!(r.checksum(), rel.checksum());
        }
        _ => panic!("wrong variant"),
    }
}

/// A seeded random distributed trigger program (statements the driver
/// would broadcast) plus a seeded delta map — the two cacheable segments
/// of a `RunBlock` broadcast.
fn rand_run_block(
    rng: &mut StdRng,
) -> (
    Vec<hotdog_distributed::program::DistStatement>,
    std::collections::HashMap<String, Relation>,
) {
    use hotdog_algebra::expr::{join, rel, sum, sum_total};
    let queries = [
        sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"]))),
        sum_total(join(rel("R", ["A", "B"]), rel("S", ["B", "C"]))),
        sum(["A"], rel("R", ["A", "B"])),
    ];
    let q = &queries[rng.gen_range(0usize..queries.len())];
    let plan = compile_recursive("Q", q);
    let spec = hotdog_distributed::PartitioningSpec::heuristic(&plan, &["A"]);
    let opt = [
        hotdog_distributed::OptLevel::O0,
        hotdog_distributed::OptLevel::O3,
    ][rng.gen_range(0usize..2)];
    let dplan = hotdog_distributed::compile_distributed(&plan, &spec, opt);
    let statements: Vec<_> = dplan.programs[0]
        .blocks
        .iter()
        .flat_map(|b| b.statements.clone())
        .collect();
    let mut deltas = std::collections::HashMap::new();
    for name in ["R", "S"] {
        if rng.gen_range(0usize..3) > 0 {
            deltas.insert(name.to_string(), rand_relation(rng));
        }
    }
    (statements, deltas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The zero-copy broadcast path's contract: a `RunBlock` request wire
    /// message is **exactly** the 26-byte per-worker header
    /// (`[0x41][0x00][id: 8B LE][trace: 8B LE][parent: 8B LE]`) followed
    /// by the statements segment and the deltas segment.  The TCP
    /// transport encodes the two segments once per cluster and writes the
    /// shared bytes to every socket, so this byte-level equality is what
    /// guarantees a cached broadcast is indistinguishable from a freshly
    /// encoded one — and that the trace header never leaks into the
    /// cached segments.
    #[test]
    fn shared_broadcast_segments_match_full_encoding(seed in 1usize..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let (statements, deltas) = rand_run_block(&mut rng);
        let id: u64 = match rng.gen_range(0usize..3) {
            0 => rng.next_u64(),
            1 => 0,
            _ => u64::MAX,
        };
        let ctx = hotdog_telemetry::SpanContext {
            trace: rng.next_u64() % 3,
            parent: rng.next_u64(),
        };

        let stmt_segment = encode_statements_segment(&statements);
        let delta_segment = encode_deltas_segment(&deltas);
        let mut assembled = Vec::with_capacity(26 + stmt_segment.len() + delta_segment.len());
        assembled.push(0x41); // ToWorker::Request
        assembled.push(0x00); // WorkerRequest::RunBlock
        assembled.extend_from_slice(&id.to_le_bytes());
        assembled.extend_from_slice(&ctx.trace.to_le_bytes());
        assembled.extend_from_slice(&ctx.parent.to_le_bytes());
        assembled.extend_from_slice(&stmt_segment);
        assembled.extend_from_slice(&delta_segment);

        let full = encode_to_vec(&ToWorker::Request(WorkerRequest::RunBlock {
            id,
            ctx,
            statements: Arc::new(statements.clone()),
            deltas: Arc::new(deltas.clone()),
        }));
        // Byte equality with the monolithic encoder is the whole contract.
        prop_assert_eq!(&assembled, &full);

        // And the assembled bytes decode back to the same request —
        // a worker cannot tell a cached broadcast from a fresh one.
        match decode_from_slice::<ToWorker>(&assembled)
            .map_err(|e| format!("assembled broadcast failed to decode: {e}"))? {
            ToWorker::Request(WorkerRequest::RunBlock { id: rid, ctx: c, statements: st, deltas: d }) => {
                prop_assert_eq!(rid, id);
                prop_assert_eq!(c, ctx);
                prop_assert_eq!(st.len(), statements.len());
                prop_assert_eq!(d.len(), deltas.len());
                for (name, rel) in deltas.iter() {
                    prop_assert_eq!(d[name].checksum(), rel.checksum());
                }
            }
            _ => panic!("wrong variant"),
        }

        // Segment encoders are pure: identical input, identical bytes —
        // the property that makes Arc-identity caching sound (a cache hit
        // returns bytes no re-encode could differ from).
        prop_assert_eq!(&encode_statements_segment(&statements), &stmt_segment);
        prop_assert_eq!(&encode_deltas_segment(&deltas), &delta_segment);
    }
}

fn rand_snapshot(rng: &mut StdRng) -> hotdog_distributed::WorkerSnapshot {
    use hotdog_distributed::{WorkerSnapshot, WorkerStats};
    let names = ["Q", "part_R", "buf0", "Δbuf", "µ-view"];
    let pick = |rng: &mut StdRng, n: usize| {
        (0..n)
            .map(|i| (names[i % names.len()].to_string(), rand_relation(rng)))
            .collect::<Vec<_>>()
    };
    let views = rng.gen_range(0usize..4);
    let temps = rng.gen_range(0usize..3);
    WorkerSnapshot {
        views: pick(rng, views),
        temps: pick(rng, temps),
        stats: WorkerStats {
            blocks_run: rng.next_u64(),
            statements: rng.next_u64(),
            instructions: rng.next_u64(),
            applies: rng.next_u64(),
            tuples_applied: rng.next_u64(),
        },
    }
}

fn assert_snapshots_bit_equal(
    a: &hotdog_distributed::WorkerSnapshot,
    b: &hotdog_distributed::WorkerSnapshot,
) {
    for (side, (xs, ys)) in [
        ("views", (&a.views, &b.views)),
        ("temps", (&a.temps, &b.temps)),
    ] {
        assert_eq!(xs.len(), ys.len(), "{side} count changed");
        for ((xn, xr), (yn, yr)) in xs.iter().zip(ys) {
            assert_eq!(xn, yn, "{side} name changed");
            assert_eq!(xr.checksum(), yr.checksum(), "{side} {xn} bits changed");
            assert!(xr.schema() == yr.schema(), "{side} {xn} schema changed");
        }
    }
    assert_eq!(a.stats, b.stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fault-tolerance messages (`Ping`/`Pong`, `Checkpoint`,
    /// `Restore`) round-trip bit-exactly — including snapshots whose
    /// relations carry the adversarial floats — preserving request ids
    /// across the full u64 range (transport-private ping ids live at
    /// `1 << 63` and above).
    #[test]
    fn fault_tolerance_messages_roundtrip(seed in 1usize..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let id: u64 = match rng.gen_range(0usize..3) {
            0 => rng.next_u64(),
            1 => (1 << 63) | (rng.next_u64() % (1 << 20)),
            _ => u64::MAX,
        };

        match decode_from_slice::<ToWorker>(&encode_to_vec(
            &ToWorker::Request(WorkerRequest::Ping { id }),
        )).unwrap() {
            ToWorker::Request(WorkerRequest::Ping { id: rid }) => prop_assert_eq!(rid, id),
            _ => panic!("wrong variant for Ping"),
        }
        match decode_from_slice::<ToDriver>(&encode_to_vec(
            &ToDriver::Reply(WorkerReply::Pong { id }),
        )).unwrap() {
            ToDriver::Reply(WorkerReply::Pong { id: rid }) => prop_assert_eq!(rid, id),
            _ => panic!("wrong variant for Pong"),
        }

        let ship = rng.gen_range(0usize..2) == 1;
        match decode_from_slice::<ToWorker>(&encode_to_vec(
            &ToWorker::Request(WorkerRequest::Checkpoint { id, ship }),
        )).unwrap() {
            ToWorker::Request(WorkerRequest::Checkpoint { id: rid, ship: rship }) => {
                prop_assert_eq!(rid, id);
                prop_assert_eq!(rship, ship);
            }
            _ => panic!("wrong variant for Checkpoint"),
        }

        let snapshot = rand_snapshot(&mut rng);
        match decode_from_slice::<ToWorker>(&encode_to_vec(
            &ToWorker::Request(WorkerRequest::Restore {
                id,
                snapshot: Box::new(snapshot.clone()),
            }),
        )).unwrap() {
            ToWorker::Request(WorkerRequest::Restore { id: rid, snapshot: s }) => {
                prop_assert_eq!(rid, id);
                assert_snapshots_bit_equal(&snapshot, &s);
            }
            _ => panic!("wrong variant for Restore"),
        }
        match decode_from_slice::<ToDriver>(&encode_to_vec(
            &ToDriver::Reply(WorkerReply::Checkpoint {
                id,
                snapshot: Box::new(snapshot.clone()),
            }),
        )).unwrap() {
            ToDriver::Reply(WorkerReply::Checkpoint { id: rid, snapshot: s }) => {
                prop_assert_eq!(rid, id);
                assert_snapshots_bit_equal(&snapshot, &s);
            }
            _ => panic!("wrong variant for Checkpoint reply"),
        }

        // The O(1) byte accounting stays an under-approximation inside
        // snapshots too: an encoded Restore can only be larger than the
        // summed relation footprints it carries.
        let encoded = encode_to_vec(&ToWorker::Request(WorkerRequest::Restore {
            id,
            snapshot: Box::new(snapshot.clone()),
        }));
        let footprint: usize = snapshot
            .views
            .iter()
            .chain(&snapshot.temps)
            .map(|(_, r)| r.serialized_size())
            .sum();
        prop_assert!(encoded.len() >= footprint);
    }

    /// Every strict prefix of an encoded `Restore` (the largest
    /// fault-tolerance message) is rejected with an error — never a
    /// panic, never a silent partial snapshot.
    #[test]
    fn truncated_restore_frames_are_rejected(seed in 1usize..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed as u64);
        let msg = ToWorker::Request(WorkerRequest::Restore {
            id: seed as u64,
            snapshot: Box::new(rand_snapshot(&mut rng)),
        });
        let encoded = encode_to_vec(&msg);
        // Bound the sweep: always the layout-sensitive head and tail,
        // plus a seeded sample of interior cuts.
        let cuts: Vec<usize> = (0..encoded.len().min(24))
            .chain((0..24).map(|_| rng.gen_range(0..encoded.len())))
            .chain(encoded.len().saturating_sub(8)..encoded.len())
            .collect();
        for cut in cuts {
            prop_assert!(
                decode_from_slice::<ToWorker>(&encoded[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded successfully",
                encoded.len()
            );
        }
    }
}

#[test]
fn corrupt_snapshot_frames_are_rejected() {
    // An unknown request tag in place of Restore's must fail cleanly.
    let mut encoded = encode_to_vec(&ToWorker::Request(WorkerRequest::Ping { id: 1 }));
    let tag_pos = 1; // ToWorker tag byte, then the WorkerRequest tag
    encoded[tag_pos] = 0xEE;
    assert!(matches!(
        decode_from_slice::<ToWorker>(&encoded),
        Err(DecodeError::BadTag { .. })
    ));
}

#[test]
fn stats_messages_roundtrip() {
    use hotdog_distributed::{WorkerStats, WorkerStatsSnapshot};

    let req = ToWorker::Request(WorkerRequest::Stats { id: 41 });
    match decode_from_slice::<ToWorker>(&encode_to_vec(&req)).unwrap() {
        ToWorker::Request(WorkerRequest::Stats { id }) => assert_eq!(id, 41),
        _ => panic!("wrong variant"),
    }

    let snapshot = WorkerStatsSnapshot {
        stats: WorkerStats {
            blocks_run: 3,
            statements: 17,
            instructions: u64::MAX, // counters must survive the full range
            applies: 5,
            tuples_applied: 1 << 40,
        },
        cardinalities: vec![("Q".to_string(), 12), ("part_R".to_string(), 0)],
    };
    // Piggybacked spans must survive the wire field-for-field, including
    // the structural ids the oracle compares and the raw micros it
    // ignores.
    let spans = vec![
        hotdog_telemetry::SpanRecord {
            trace: 1,
            id: (2u64 << 32) | 1,
            parent: 1,
            name: "worker.run_block".to_string(),
            track: 2,
            start_micros: 10,
            end_micros: u64::MAX,
        },
        hotdog_telemetry::SpanRecord {
            trace: 1,
            id: (2u64 << 32) | 2,
            parent: 1,
            name: "worker.apply".to_string(),
            track: 2,
            start_micros: 0,
            end_micros: 0,
        },
    ];
    let rep = ToDriver::Reply(WorkerReply::Stats {
        id: 42,
        snapshot: snapshot.clone(),
        spans: spans.clone(),
    });
    match decode_from_slice::<ToDriver>(&encode_to_vec(&rep)).unwrap() {
        ToDriver::Reply(WorkerReply::Stats {
            id,
            snapshot: s,
            spans: sp,
        }) => {
            assert_eq!(id, 42);
            assert_eq!(s, snapshot);
            assert_eq!(sp, spans);
        }
        _ => panic!("wrong variant"),
    }
}
