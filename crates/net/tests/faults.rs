//! Fault-tolerance tests of the TCP backend: typed worker-death errors,
//! heartbeat failure detection, and kill → respawn → restore recovery.
//!
//! Thread-spawn mode runs the full wire path (framing, codec, kernel
//! TCP) without subprocesses, so these tests don't depend on the
//! `hotdog-worker` binary; the workspace-level differential fault sweep
//! (`tests/tcp_differential.rs`) exercises subprocess kill/respawn
//! across the query catalog.

use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use hotdog_algebra::expr::*;
use hotdog_algebra::relation::Relation;
use hotdog_algebra::schema::Schema;
use hotdog_algebra::tuple;
use hotdog_distributed::{compile_distributed, DistributedPlan, OptLevel, PartitioningSpec};
use hotdog_ivm::compile_recursive;
use hotdog_net::codec::ToDriver;
use hotdog_net::{send_msg, FaultKind, FaultPlan, Phase, TcpCluster, TcpConfig, WorkerSpawn};
use hotdog_runtime::{FaultConfig, RecoveryMode};

fn example_dplan(opt: OptLevel) -> DistributedPlan {
    let q = sum(
        ["B"],
        join_all([
            rel("R", ["OK", "B"]),
            rel("S", ["B", "CK"]),
            rel("T", ["CK", "D"]),
        ]),
    );
    let plan = compile_recursive("Q", &q);
    let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
    compile_distributed(&plan, &spec, opt)
}

fn batches() -> Vec<(&'static str, Relation)> {
    vec![
        (
            "R",
            Relation::from_pairs(
                Schema::new(["OK", "B"]),
                (0..40i64).map(|i| (tuple![i, i % 5], 1.0 + i as f64 * 0.125)),
            ),
        ),
        (
            "S",
            Relation::from_pairs(
                Schema::new(["B", "CK"]),
                (0..20i64).map(|i| (tuple![i % 5, i], 1.0)),
            ),
        ),
        (
            "T",
            Relation::from_pairs(
                Schema::new(["CK", "D"]),
                (0..20i64).map(|i| (tuple![i, i * 10], 0.5)),
            ),
        ),
        (
            "R",
            Relation::from_pairs(
                Schema::new(["OK", "B"]),
                vec![(tuple![1, 1], -1.125), (tuple![100, 2], 1.0)],
            ),
        ),
    ]
}

fn thread_config(workers: usize) -> TcpConfig {
    TcpConfig::with_workers(workers).with_spawn(WorkerSpawn::Thread)
}

/// Satellite: with no [`FaultConfig`] installed, a worker death is not a
/// panic — it is a clean, typed [`WorkerDead`] naming the slot, and the
/// same error keeps coming back on subsequent operations (the slot is
/// fenced, not retried).
#[test]
fn recovery_disabled_death_is_a_clean_typed_error() {
    let plan = FaultPlan::kill(1, FaultKind::RunBlock, 1, Phase::Before);
    let config = thread_config(2).with_faults(plan);
    let mut tcp = TcpCluster::new(example_dplan(OptLevel::O3), &config).expect("tcp cluster");
    assert!(tcp.fault_config().is_none(), "no recovery configured");

    let mut died = None;
    for (rel, batch) in batches() {
        match tcp.try_apply_batch(rel, &batch) {
            Ok(_) => {}
            Err(dead) => {
                died = Some(dead);
                break;
            }
        }
    }
    let dead = died.expect("kill spec must fire within the stream");
    assert_eq!(dead.index, 1, "typed error must name the killed slot");
    assert!(
        dead.reason.contains("fault injected"),
        "reason should carry the cause: {}",
        dead.reason
    );
    // The slot stays fenced: later operations fail fast with the same
    // typed error instead of hanging or panicking.
    let again = tcp
        .try_flush()
        .and_then(|()| tcp.try_query_result().map(drop))
        .expect_err("dead slot must keep failing");
    assert_eq!(again.index, 1);
}

/// Heartbeat failure detection: an external "worker" that handshakes and
/// then goes silent is probed with `Ping`s and declared dead after the
/// configured number of silent intervals — `recv` returns a typed error
/// instead of blocking forever.
#[test]
fn heartbeat_declares_a_silent_worker_dead() {
    // Reserve a port so the silent peer knows where to connect; the tiny
    // window between drop and rebind is covered by the connect retry loop.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr").port()
    };
    let addr = format!("127.0.0.1:{port}");

    let peer_addr = addr.clone();
    let peer = std::thread::spawn(move || {
        // Retry until the driver's listener is up, handshake as worker 0,
        // then swallow everything (Init, requests, pings) without ever
        // replying — a live TCP peer whose event loop has wedged.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut stream = loop {
            match TcpStream::connect(&peer_addr) {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(5)),
                Err(e) => panic!("silent peer could not connect: {e}"),
            }
        };
        send_msg(&mut stream, &ToDriver::Hello { index: 0 }).expect("hello");
        let mut sink = [0u8; 4096];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    });

    let config = TcpConfig {
        workers: 1,
        bind_addr: addr,
        spawn: WorkerSpawn::External,
        accept_timeout: Duration::from_secs(10),
        ..Default::default()
    }
    .with_heartbeat(Duration::from_millis(40), 3);
    let mut tcp = TcpCluster::new(example_dplan(OptLevel::O0), &config).expect("tcp cluster");

    let (rel, batch) = &batches()[0];
    let dead = tcp
        .try_apply_batch(rel, batch)
        .expect_err("silent worker must be declared dead, not awaited forever");
    assert_eq!(dead.index, 0);
    assert!(
        dead.reason.contains("heartbeat"),
        "death should be attributed to the heartbeat: {}",
        dead.reason
    );
    // The misses were counted (wall-clock valued, hence excluded from the
    // deterministic snapshot — but visible in the raw registry).
    assert!(
        tcp.telemetry()
            .registry()
            .counter_value("worker.heartbeat_missed")
            >= 3
    );
    peer.join().expect("silent peer thread");
}

/// Kill → respawn → restore → replay, in both recovery modes: the final
/// views of a faulted run are bit-identical to an unfaulted run under
/// the same [`FaultConfig`], and the recovery counters record exactly
/// one death, one respawn, one recovery.
#[test]
fn killed_worker_respawns_and_recovers_bit_identically() {
    for mode in [RecoveryMode::Checkpoint, RecoveryMode::Rescatter] {
        let fault_config = FaultConfig::every(1).with_mode(mode);

        // Baseline: same FaultConfig (checkpoint epochs canonicalize
        // storage, so this is the comparable run), no kill.
        let mut clean =
            TcpCluster::new(example_dplan(OptLevel::O3), &thread_config(2)).expect("tcp cluster");
        clean.set_fault_config(Some(fault_config.clone()));
        for (rel, batch) in batches() {
            clean.apply_batch(rel, &batch);
        }
        let expected = clean.query_result().checksum();

        for phase in [Phase::Before, Phase::After] {
            let plan = FaultPlan::kill(1, FaultKind::RunBlock, 2, phase);
            let mut tcp = TcpCluster::new(
                example_dplan(OptLevel::O3),
                &thread_config(2).with_faults(plan),
            )
            .expect("tcp cluster");
            tcp.set_fault_config(Some(fault_config.clone()));
            for (rel, batch) in batches() {
                tcp.apply_batch(rel, &batch); // recovery is internal
            }
            assert_eq!(
                tcp.query_result().checksum(),
                expected,
                "faulted run diverged ({mode:?}, {phase:?})"
            );
            assert_eq!(
                tcp.recoveries(),
                1,
                "exactly one recovery ({mode:?}, {phase:?})"
            );
            let snap = tcp.metrics_snapshot();
            assert_eq!(snap.counter("fault.injected"), 1);
            assert_eq!(snap.counter("worker.declared_dead"), 1);
            assert_eq!(snap.counter("worker.respawned"), 1);
            assert_eq!(snap.counter("recovery.attempts"), 1);
        }
    }
}

/// A seeded `HOTDOG_FAULT`-style plan recovers too — the chaos job's
/// shape, in-process: materialize the plan from a seed, run, and demand
/// the unfaulted checksum.
#[test]
fn seeded_plans_recover_bit_identically() {
    let fault_config = FaultConfig::every(2);
    let mut clean =
        TcpCluster::new(example_dplan(OptLevel::O2), &thread_config(2)).expect("tcp cluster");
    clean.set_fault_config(Some(fault_config.clone()));
    for (rel, batch) in batches() {
        clean.apply_batch(rel, &batch);
    }
    let expected = clean.query_result().checksum();

    for seed in [1u64, 7, 42] {
        let plan = FaultPlan::seeded(seed, 2);
        let mut tcp = TcpCluster::new(
            example_dplan(OptLevel::O2),
            &thread_config(2).with_faults(plan.clone()),
        )
        .expect("tcp cluster");
        tcp.set_fault_config(Some(fault_config.clone()));
        for (rel, batch) in batches() {
            tcp.apply_batch(rel, &batch);
        }
        assert_eq!(
            tcp.query_result().checksum(),
            expected,
            "seed {seed} ({}) diverged",
            plan.kills[0]
        );
        // Small stream: a late ordinal may never fire — that's fine, the
        // run then simply matches as an unfaulted run.  But if it fired,
        // it must have recovered.
        let snap = tcp.metrics_snapshot();
        assert_eq!(
            snap.counter("recovery.attempts") > 0,
            snap.counter("fault.injected") > 0
        );
    }
}
