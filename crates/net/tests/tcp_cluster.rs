//! End-to-end tests of the TCP backend: `TcpCluster` must be
//! bit-identical to `ThreadedCluster` (hence to the simulated cluster,
//! which the runtime suites pin) in every mode — the codec, framing,
//! handshake and reader threads must be completely transparent to view
//! state.
//!
//! Thread-spawn mode runs the full wire path (framing, codec, kernel
//! TCP) without subprocesses, so these tests don't depend on the
//! `hotdog-worker` binary; one subprocess smoke test covers real
//! multi-process operation and is exercised exhaustively by the
//! workspace-level differential oracle.

use hotdog_algebra::expr::*;
use hotdog_algebra::relation::Relation;
use hotdog_algebra::schema::Schema;
use hotdog_algebra::tuple;
use hotdog_distributed::{
    compile_distributed, Backend, DistributedPlan, OptLevel, PartitioningSpec,
};
use hotdog_ivm::compile_recursive;
use hotdog_net::{TcpCluster, TcpConfig, WorkerSpawn};
use hotdog_runtime::{PipelineConfig, ThreadedCluster};

fn example_dplan(opt: OptLevel) -> DistributedPlan {
    let q = sum(
        ["B"],
        join_all([
            rel("R", ["OK", "B"]),
            rel("S", ["B", "CK"]),
            rel("T", ["CK", "D"]),
        ]),
    );
    let plan = compile_recursive("Q", &q);
    let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
    compile_distributed(&plan, &spec, opt)
}

fn batches() -> Vec<(&'static str, Relation)> {
    vec![
        (
            "R",
            Relation::from_pairs(
                Schema::new(["OK", "B"]),
                (0..40i64).map(|i| (tuple![i, i % 5], 1.0 + i as f64 * 0.125)),
            ),
        ),
        (
            "S",
            Relation::from_pairs(
                Schema::new(["B", "CK"]),
                (0..20i64).map(|i| (tuple![i % 5, i], 1.0)),
            ),
        ),
        (
            "T",
            Relation::from_pairs(
                Schema::new(["CK", "D"]),
                (0..20i64).map(|i| (tuple![i, i * 10], 0.5)),
            ),
        ),
        (
            "R",
            Relation::from_pairs(
                Schema::new(["OK", "B"]),
                vec![(tuple![1, 1], -1.125), (tuple![100, 2], 1.0)],
            ),
        ),
    ]
}

fn thread_config(workers: usize) -> TcpConfig {
    TcpConfig::with_workers(workers).with_spawn(WorkerSpawn::Thread)
}

/// Compare every view of two backends bit-for-bit.
fn assert_views_equal<A: Backend, B: Backend>(a: &mut A, b: &mut B, label: &str) {
    let views: Vec<String> = Backend::plan(a)
        .plan
        .views
        .iter()
        .map(|v| v.name.clone())
        .collect();
    for v in views {
        assert_eq!(
            a.view_contents(&v).checksum(),
            b.view_contents(&v).checksum(),
            "view {v} diverged: {label}"
        );
    }
}

#[test]
fn tcp_thread_mode_matches_threaded_bit_for_bit() {
    for opt in [OptLevel::O0, OptLevel::O3] {
        for workers in [1usize, 2, 3] {
            let mut tcp =
                TcpCluster::new(example_dplan(opt), &thread_config(workers)).expect("tcp cluster");
            let mut real = ThreadedCluster::new(example_dplan(opt), workers);
            for (rel, batch) in batches() {
                tcp.apply_batch(rel, &batch);
                real.apply_batch(rel, &batch);
            }
            assert_eq!(
                tcp.query_result().checksum(),
                real.query_result().checksum(),
                "tcp diverged from threaded at {opt:?} x{workers}"
            );
            assert_views_equal(&mut tcp, &mut real, &format!("{opt:?} x{workers}"));
        }
    }
}

#[test]
fn tcp_pipelined_matches_sync_bit_for_bit() {
    // Coalescing disabled: the pipelined TCP schedule (async gathers,
    // ApplyMany batching, in-flight window) must be bit-transparent.
    for config in [
        PipelineConfig {
            coalesce_tuples: 0,
            ..Default::default()
        },
        PipelineConfig {
            coalesce_tuples: 0,
            admit_capacity: 1,
            inflight_blocks: 1,
            ..Default::default()
        },
        PipelineConfig {
            coalesce_tuples: 0,
            ..Default::default()
        }
        .with_shuffled_replies(0xD15C0),
        PipelineConfig {
            coalesce_tuples: 0,
            async_gather: false,
            batch_scatters: false,
            ..Default::default()
        },
    ] {
        let mut tcp = TcpCluster::pipelined(
            example_dplan(OptLevel::O3),
            &thread_config(2),
            config.clone(),
        )
        .expect("tcp cluster");
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 2);
        for (rel, batch) in batches() {
            tcp.apply_batch(rel, &batch);
            sync.apply_batch(rel, &batch);
        }
        tcp.flush();
        assert_eq!(
            tcp.query_result().checksum(),
            sync.query_result().checksum(),
            "pipelined tcp diverged under {config:?}"
        );
        assert_eq!(tcp.outstanding_replies(), 0);
    }
}

#[test]
fn tcp_coalescing_matches_coalesced_threaded_bit_for_bit() {
    // Same coalescing bound on both sides -> same trigger sequence ->
    // bit-identical, even on this float-multiplicity workload.
    let config = PipelineConfig::with_coalesce(64);
    let mut tcp = TcpCluster::pipelined(
        example_dplan(OptLevel::O2),
        &thread_config(2),
        config.clone(),
    )
    .expect("tcp cluster");
    let mut threaded = ThreadedCluster::pipelined(example_dplan(OptLevel::O2), 2, config);
    for (rel, batch) in batches() {
        tcp.apply_batch(rel, &batch);
        threaded.apply_batch(rel, &batch);
    }
    tcp.flush();
    threaded.flush();
    assert_eq!(
        tcp.query_result().checksum(),
        threaded.query_result().checksum(),
        "coalesced tcp diverged from coalesced threaded"
    );
    assert_eq!(
        tcp.pipeline_stats().unwrap().batches_coalesced,
        threaded.pipeline_stats().unwrap().batches_coalesced,
        "coalescing decisions must not depend on the transport"
    );
}

#[test]
fn tcp_subprocess_mode_matches_threaded() {
    // Real worker subprocesses on loopback.  `cargo test` builds the
    // whole workspace (including the hotdog-worker bin) before running
    // any test, so the binary is present next to the test executable's
    // target directory.
    let config = TcpConfig::with_workers(2);
    let mut tcp = TcpCluster::new(example_dplan(OptLevel::O3), &config).expect("spawn tcp cluster");
    let mut real = ThreadedCluster::new(example_dplan(OptLevel::O3), 2);
    for (rel, batch) in batches() {
        tcp.apply_batch(rel, &batch);
        real.apply_batch(rel, &batch);
    }
    assert_eq!(
        tcp.query_result().checksum(),
        real.query_result().checksum(),
        "subprocess tcp diverged from threaded"
    );
    assert_eq!(tcp.backend_name(), "tcp");
    // Shut down explicitly: close() must reap the worker processes.
    let stats = tcp.close();
    assert_eq!(stats.batches_abandoned, 0);
}

#[test]
fn tcp_drop_with_inflight_work_shuts_down() {
    let config = PipelineConfig {
        coalesce_tuples: 0,
        admit_capacity: 2,
        inflight_blocks: 8,
        ..Default::default()
    };
    let mut tcp = TcpCluster::pipelined(example_dplan(OptLevel::O3), &thread_config(3), config)
        .expect("tcp cluster");
    for _ in 0..3 {
        for (rel, batch) in batches() {
            tcp.apply_batch(rel, &batch);
        }
    }
    drop(tcp); // queued + in-flight work abandoned; no hang, no panic
}

#[test]
fn accept_timeout_fails_loudly_without_workers() {
    let config = TcpConfig {
        workers: 1,
        spawn: WorkerSpawn::External,
        accept_timeout: std::time::Duration::from_millis(200),
        ..Default::default()
    };
    let err = TcpCluster::new(example_dplan(OptLevel::O3), &config)
        .err()
        .expect("no worker ever connects: construction must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
}
