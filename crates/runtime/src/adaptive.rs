//! Online self-tuning of the coalescing bound.
//!
//! The paper's central empirical observation (Fig. 7) is that IVM throughput
//! is a *concave* function of batch size: growing the batch amortizes the
//! fixed per-trigger overhead (plan dispatch, scatter setup, channel
//! round-trips) until the marginal per-tuple execution cost — delta joins
//! growing superlinearly in the delta — dominates, so every query has an
//! optimal batch size that depends on the query, the data and the host.
//! A static [`coalesce_tuples`](crate::PipelineConfig::coalesce_tuples)
//! threshold bakes one point of that curve in; [`CoalesceController`]
//! instead *searches* the curve online.
//!
//! The controller is a one-dimensional multiplicative hill climber.  It
//! holds the coalescing bound fixed for a probe window of
//! [`AdaptiveConfig::probe_triggers`] maintenance-program executions,
//! measures the window's aggregate throughput (executed tuples over
//! measured trigger seconds), and compares it against the previous probe
//! window: if throughput improved, the bound keeps moving in the current
//! direction (multiplied or divided by [`AdaptiveConfig::step`]); if it
//! worsened, the direction reverses.  On a concave curve this walks toward
//! the optimum and then oscillates within one step factor of it — which is
//! exactly the behaviour the paper's batch-size sweeps justify, and cheap
//! enough to run between triggers.
//!
//! The controller is deliberately deterministic given its observation
//! sequence (no randomized restarts), so unit tests can drive it with
//! synthetic cost curves and assert convergence.

/// Parameters of the adaptive coalescing policy
/// ([`crate::PipelineConfig::adaptive`]).
#[derive(Clone, Debug)]
pub struct AdaptiveConfig {
    /// Lower clamp of the coalescing bound (tuples).  Must be ≥ 1.
    pub min_tuples: usize,
    /// Upper clamp of the coalescing bound (tuples).
    pub max_tuples: usize,
    /// Starting bound before any measurement exists.
    pub initial_tuples: usize,
    /// Multiplicative step of the hill climber (> 1).
    pub step: f64,
    /// Trigger executions aggregated per probe window.  Larger windows
    /// smooth timing noise at the cost of slower adaptation.
    pub probe_triggers: usize,
    /// Cost attributed to one unit of *worker* interpreter work, in
    /// seconds per instruction.  The pipelined driver only measures its
    /// own issue time — distributed blocks overlap and their cost is
    /// invisible to the driver clock on multi-core hosts — so the
    /// controller folds the workers' lazily reported instruction counts
    /// into the window cost as `instructions × secs_per_instruction`
    /// (ROADMAP "worker-time feedback").  `0.0` disables the term,
    /// restoring the driver-time-only signal.  The default mirrors the
    /// simulator's modelled instruction cost
    /// (`ClusterConfig::secs_per_instruction`).
    pub secs_per_instruction: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_tuples: 16,
            max_tuples: 1 << 20,
            initial_tuples: 256,
            step: 2.0,
            probe_triggers: 3,
            secs_per_instruction: 2.0e-9,
        }
    }
}

/// Hill-climbing search over the paper's concave throughput-vs-batch-size
/// curve (see the module docs).  Fed one observation per maintenance-program
/// execution by the pipelined runtime; queried for the coalescing bound to
/// apply between triggers.
#[derive(Clone, Debug)]
pub struct CoalesceController {
    config: AdaptiveConfig,
    /// Bound currently in force.
    bound: usize,
    /// Whether the next move grows (`true`) or shrinks the bound.
    upward: bool,
    /// Throughput measured over the previous probe window, if any.
    previous_throughput: Option<f64>,
    /// Current probe window accumulator: (triggers, tuples, seconds).
    window_triggers: usize,
    window_tuples: usize,
    window_secs: f64,
    /// Direction reversals: probe windows whose throughput worsened, plus
    /// proposals pinned against a clamp (the search turns around there
    /// without moving the bound).
    pub reversals: usize,
    /// Bound changes actually applied (a proposal pinned against a clamp
    /// counts as a reversal, not an adjustment).
    pub adjustments: usize,
}

impl CoalesceController {
    pub fn new(config: AdaptiveConfig) -> Self {
        assert!(config.min_tuples >= 1, "min_tuples must be >= 1");
        assert!(
            config.max_tuples >= config.min_tuples,
            "max_tuples must be >= min_tuples"
        );
        assert!(config.step > 1.0, "step must be > 1");
        assert!(config.probe_triggers >= 1, "probe_triggers must be >= 1");
        let bound = config
            .initial_tuples
            .clamp(config.min_tuples, config.max_tuples);
        CoalesceController {
            config,
            bound,
            upward: true,
            previous_throughput: None,
            window_triggers: 0,
            window_tuples: 0,
            window_secs: 0.0,
            reversals: 0,
            adjustments: 0,
        }
    }

    /// The coalescing bound (tuples per ring-summed delta) currently in
    /// force.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Record one maintenance-program execution from driver-side timing
    /// alone (no worker-work term); see
    /// [`CoalesceController::observe_with_work`].
    pub fn observe(&mut self, executed_tuples: usize, trigger_secs: f64) {
        self.observe_with_work(executed_tuples, trigger_secs, 0);
    }

    /// Record one maintenance-program execution: the executed delta's tuple
    /// count, its measured driver-side trigger seconds, and the worker
    /// interpreter work (instruction count) settled since the previous
    /// observation.  Closes the probe window and moves the bound once
    /// enough triggers have accumulated.
    ///
    /// The driver clock only sees *issue time*: worker execution of
    /// distributed blocks overlaps and is invisible on multi-core hosts,
    /// except when the in-flight window forces a collect — which charges a
    /// previous trigger's worker cost to the current trigger.  The
    /// instruction term (`instructions ×`
    /// [`AdaptiveConfig::secs_per_instruction`]) restores the
    /// worker-dominated part of the cost; because completions settle
    /// lazily, it too is attributed with bounded lag.  Both signals are
    /// therefore noisy and slightly shifted; the probe-window averaging
    /// (keep [`AdaptiveConfig::probe_triggers`] ≥ the in-flight window)
    /// is what keeps the climb pointed the right way.
    pub fn observe_with_work(
        &mut self,
        executed_tuples: usize,
        trigger_secs: f64,
        worker_instructions: u64,
    ) {
        self.window_triggers += 1;
        self.window_tuples += executed_tuples;
        self.window_secs += trigger_secs.max(0.0)
            + worker_instructions as f64 * self.config.secs_per_instruction.max(0.0);
        if self.window_triggers < self.config.probe_triggers {
            return;
        }
        let throughput = self.window_tuples as f64 / self.window_secs.max(1e-12);
        self.window_triggers = 0;
        self.window_tuples = 0;
        self.window_secs = 0.0;

        if let Some(prev) = self.previous_throughput {
            if throughput < prev {
                self.upward = !self.upward;
                self.reversals += 1;
            }
        }
        self.previous_throughput = Some(throughput);

        let step = self.config.step;
        let proposed = if self.upward {
            (self.bound as f64 * step).round() as usize
        } else {
            (self.bound as f64 / step).floor() as usize
        };
        let next = proposed.clamp(self.config.min_tuples, self.config.max_tuples);
        if next == self.bound {
            // Pinned against a clamp: turn around so the search keeps
            // probing the interior instead of re-measuring the wall.
            self.upward = !self.upward;
            self.reversals += 1;
        } else {
            self.bound = next;
            self.adjustments += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic per-trigger cost with fixed overhead and a superlinear
    /// per-tuple term: `cost(n) = overhead + linear*n + quad*n^2`.
    /// Throughput `n / cost(n)` is concave with its maximum at
    /// `n* = sqrt(overhead / quad)` — the shape of the paper's Fig. 7.
    fn concave_cost(overhead: f64, linear: f64, quad: f64) -> impl Fn(usize) -> f64 {
        move |n: usize| overhead + linear * n as f64 + quad * (n as f64) * (n as f64)
    }

    /// Drive the controller against a cost model: every trigger executes a
    /// delta saturating the current bound.
    fn drive(ctl: &mut CoalesceController, cost: &impl Fn(usize) -> f64, triggers: usize) {
        for _ in 0..triggers {
            let n = ctl.bound();
            ctl.observe(n, cost(n));
        }
    }

    /// The bound after convergence must sit within one step factor of the
    /// analytic optimum and stay there.
    fn assert_converges_near(mut ctl: CoalesceController, cost: impl Fn(usize) -> f64, opt: f64) {
        let step = ctl.config.step;
        drive(&mut ctl, &cost, 400);
        // After the climb, the bound must oscillate around the optimum:
        // track its range over a long tail.
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for _ in 0..100 {
            let n = ctl.bound();
            lo = lo.min(n);
            hi = hi.max(n);
            ctl.observe(n, cost(n));
        }
        let slack = step * step; // one step either side of the optimum
        assert!(
            (hi as f64) >= opt / slack && (lo as f64) <= opt * slack,
            "search range [{lo}, {hi}] does not straddle the optimum {opt:.0}"
        );
        assert!(
            (lo as f64) >= opt / (slack * step) && (hi as f64) <= opt * slack * step,
            "search range [{lo}, {hi}] wandered too far from the optimum {opt:.0}"
        );
        assert!(ctl.reversals > 0, "a concave curve must produce reversals");
    }

    #[test]
    fn converges_to_interior_optimum_from_below() {
        // overhead 1e-3 s, quad 1e-9: optimum at sqrt(1e-3/1e-9) = 1000.
        let cost = concave_cost(1e-3, 1e-7, 1e-9);
        let ctl = CoalesceController::new(AdaptiveConfig {
            initial_tuples: 16,
            ..Default::default()
        });
        assert_converges_near(ctl, cost, 1000.0);
    }

    #[test]
    fn converges_to_interior_optimum_from_above() {
        let cost = concave_cost(1e-3, 1e-7, 1e-9);
        let ctl = CoalesceController::new(AdaptiveConfig {
            initial_tuples: 1 << 18,
            ..Default::default()
        });
        assert_converges_near(ctl, cost, 1000.0);
    }

    #[test]
    fn pure_overhead_curve_climbs_to_the_upper_clamp() {
        // No superlinear term: bigger is always better, the controller must
        // ride the curve up to max_tuples and hold there.
        let cost = concave_cost(1e-3, 1e-7, 0.0);
        let mut ctl = CoalesceController::new(AdaptiveConfig {
            max_tuples: 8192,
            initial_tuples: 32,
            ..Default::default()
        });
        drive(&mut ctl, &cost, 300);
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for _ in 0..60 {
            let n = ctl.bound();
            lo = lo.min(n);
            hi = hi.max(n);
            ctl.observe(n, cost(n));
        }
        assert_eq!(hi, 8192, "must reach the clamp");
        assert!(lo >= 8192 / 4, "must hold near the clamp, got low {lo}");
    }

    #[test]
    fn dominant_per_tuple_cost_descends_to_the_lower_clamp() {
        // Negligible overhead, strong quadratic growth: small batches win.
        let cost = concave_cost(1e-9, 1e-7, 1e-4);
        let mut ctl = CoalesceController::new(AdaptiveConfig {
            min_tuples: 4,
            initial_tuples: 4096,
            ..Default::default()
        });
        drive(&mut ctl, &cost, 300);
        assert!(
            ctl.bound() <= 16,
            "bound {} should fall to the lower clamp region",
            ctl.bound()
        );
    }

    #[test]
    fn retunes_when_the_curve_shifts_mid_run() {
        // Phase 1 favours large batches (high overhead); phase 2 makes the
        // quadratic term dominant so the optimum collapses to ~100.  The
        // controller must follow the shift — the scenario behind the
        // shifting-batch-size stream benchmark.
        let phase1 = concave_cost(1e-2, 1e-7, 1e-10); // opt = 10_000
        let phase2 = concave_cost(1e-5, 1e-7, 1e-9); // opt = 100
        let mut ctl = CoalesceController::new(AdaptiveConfig::default());
        drive(&mut ctl, &phase1, 300);
        let after_phase1 = ctl.bound();
        assert!(
            after_phase1 >= 2500,
            "phase 1 should push the bound up, got {after_phase1}"
        );
        drive(&mut ctl, &phase2, 400);
        assert!(
            ctl.bound() <= 800,
            "phase 2 should pull the bound back down, got {}",
            ctl.bound()
        );
    }

    #[test]
    fn zero_tuple_triggers_do_not_poison_the_search() {
        // Fully-cancelling deltas execute zero tuples; the controller must
        // survive whole windows of them (throughput 0) and keep searching.
        let cost = concave_cost(1e-3, 1e-7, 1e-9);
        let mut ctl = CoalesceController::new(AdaptiveConfig::default());
        for _ in 0..12 {
            ctl.observe(0, 1e-4);
        }
        drive(&mut ctl, &cost, 400);
        let b = ctl.bound() as f64;
        assert!(
            (125.0..=8000.0).contains(&b),
            "bound {b} should recover toward the optimum 1000"
        );
    }

    #[test]
    fn worker_dominated_curve_needs_the_instruction_term() {
        // A worker-dominated workload: the driver-side issue time is a
        // flat, tiny constant (the driver just broadcasts and moves on),
        // while the real cost — fixed per-trigger overhead plus a
        // superlinear per-tuple term — happens on the workers and is only
        // visible as their reported instruction counts.  With the
        // instruction term folded in (secs_per_instruction = 2e-9) the
        // effective cost is `driver + spi*instr(n)`, concave-optimal at
        // n* = 1000.
        let spi = 2.0e-9;
        let instr = move |n: usize| ((1e-3 + 1e-9 * (n as f64) * (n as f64)) / spi) as u64;
        let driver_secs = 1e-6; // flat: carries no batch-size signal

        let mut informed = CoalesceController::new(AdaptiveConfig {
            initial_tuples: 16,
            secs_per_instruction: spi,
            ..Default::default()
        });
        for _ in 0..400 {
            let n = informed.bound();
            informed.observe_with_work(n, driver_secs, instr(n));
        }
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for _ in 0..100 {
            let n = informed.bound();
            lo = lo.min(n);
            hi = hi.max(n);
            informed.observe_with_work(n, driver_secs, instr(n));
        }
        let step = informed.config.step;
        let slack = step * step;
        assert!(
            (hi as f64) >= 1000.0 / slack && (lo as f64) <= 1000.0 * slack,
            "informed search range [{lo}, {hi}] does not straddle the optimum 1000"
        );
        assert!(
            (hi as f64) <= 1000.0 * slack * step,
            "informed search wandered above the optimum: [{lo}, {hi}]"
        );

        // Control: with the instruction term disabled the driver-side
        // signal is pure `n / driver_secs` — monotone increasing — so the
        // blind controller rides the bound to the upper clamp instead of
        // finding the worker-side optimum.
        let mut blind = CoalesceController::new(AdaptiveConfig {
            initial_tuples: 16,
            max_tuples: 1 << 16,
            secs_per_instruction: 0.0,
            ..Default::default()
        });
        for _ in 0..400 {
            let n = blind.bound();
            blind.observe_with_work(n, driver_secs, instr(n));
        }
        assert!(
            blind.bound() >= 1 << 14,
            "without the instruction term the bound should climb to the clamp, got {}",
            blind.bound()
        );
    }

    #[test]
    fn clamps_and_validation() {
        let ctl = CoalesceController::new(AdaptiveConfig {
            min_tuples: 100,
            max_tuples: 200,
            initial_tuples: 5_000,
            ..Default::default()
        });
        assert_eq!(ctl.bound(), 200, "initial bound must clamp into range");
    }
}
