//! # hotdog-runtime
//!
//! The real execution backend for compiled [`DistributedPlan`]s: a
//! thread-per-worker runtime that actually runs the distributed maintenance
//! programs in parallel, in contrast to the single-threaded simulated
//! [`Cluster`](hotdog_distributed::Cluster) which executes the same
//! programs sequentially and *models* time.
//!
//! Architecture (mirroring the paper's driver/worker deployment):
//!
//! * every worker is one OS thread owning a [`WorkerState`] — its
//!   hash-partitioned shard of the distributed views plus per-batch
//!   exchange buffers — and a command channel;
//! * the driver (the caller's thread) owns the driver-resident views and
//!   runs each [`TriggerProgram`]: `Local` blocks execute on the driver,
//!   transformer statements move relations between driver and workers
//!   (scatter / repartition / gather), and every `Distributed` block is
//!   broadcast to all workers — the mpsc channels play the role of the
//!   cluster fabric;
//! * routing reuses the exact `PartitionFn` shard assignment of the
//!   simulator (via [`hotdog_distributed::partition_shards`]), and workers
//!   run statements through the same [`WorkerState`] interpreter, so both
//!   backends produce identical view contents — only the *time* differs:
//!   [`BatchExecution::latency_secs`] here is measured wall-clock, not a
//!   cost model.
//!
//! ## Execution modes
//!
//! [`ThreadedCluster::new`] builds the **epoch-synchronous** runtime: each
//! [`ThreadedCluster::apply_batch`] executes the batch to completion,
//! barriering after every distributed block, exactly one batch in the
//! system at a time.
//!
//! [`ThreadedCluster::pipelined`] builds the **pipelined** runtime for
//! sustained update streams (the workload of the paper's batch-size
//! sweeps).  Three mechanisms amortize per-batch overhead:
//!
//! 1. **Admission queue with delta coalescing** — `apply_batch` only
//!    *admits* a batch.  An admitted batch is ring-summed into the latest
//!    queued delta of the same base relation (up to
//!    [`PipelineConfig::coalesce_tuples`]; batched IVM triggers are exact
//!    for any delta, so same-relation deltas commute past other
//!    relations' batches), so a stream of tiny batches triggers the
//!    maintenance program far fewer times — the paper's batching thesis
//!    applied at the runtime layer.  Coalescing preserves the maintained
//!    state exactly in real arithmetic; it only re-associates float
//!    additions (disable it for bit-identical runs).  The bound is either
//!    a static threshold or chosen online by the self-tuning
//!    [`adaptive::CoalesceController`], which hill-climbs the paper's
//!    concave throughput-vs-batch-size curve (Fig. 7) from measured
//!    per-trigger overhead vs. marginal per-tuple cost.  Admission is
//!    additionally bounded by serialized bytes
//!    ([`PipelineConfig::admit_bytes`]) and by a staleness budget
//!    ([`PipelineConfig::latency_target`]) that forces overdue deltas
//!    through and stops coalescing into half-expired ones — the
//!    streaming latency/throughput tradeoff as a config knob.
//! 2. **Bounded in-flight window over a tagged-reply protocol** — when a
//!    queued batch is executed, the driver broadcasts each distributed
//!    block and moves on *without collecting the workers' completion
//!    replies*.  Every driver→worker instruction carries a **request id**
//!    which the worker echoes in its reply, and the driver keeps a
//!    per-worker completion ledger of pending ids, so replies are matched
//!    by *identity*, never by channel position: a `Gather`/`Repart` fetch
//!    waits only for its own request ids (absorbing block completions that
//!    happen to arrive first into the ledger) instead of draining the
//!    whole in-flight window, and the fetch instructions reach the worker
//!    queues before the driver blocks — workers flow straight from a
//!    batch's distributed blocks into its gather with no idle gap
//!    ([`PipelineStats::gathers_overlapped`] counts fetches issued while
//!    completions were still pending).  Up to
//!    [`PipelineConfig::inflight_blocks`] block completions per worker may
//!    be unsettled; the ledger settles them lazily — at the window bound,
//!    opportunistically whenever replies have already arrived, and at
//!    watermark commits.  Command channels remain FIFO, which is what
//!    keeps every worker's *statement* sequence identical to the
//!    synchronous schedule; only reply accounting is order-free.
//!    Scatters batch: all shards a worker receives between two of its
//!    commands ship as one multi-statement `ApplyMany` message per worker
//!    per batch instead of one message per statement
//!    ([`PipelineStats::scatter_messages_saved`] counts the reduction).
//! 3. **Watermark tracking** — the cluster counts admitted, issued and
//!    committed batches.  Reads ([`ThreadedCluster::view_contents`],
//!    [`ThreadedCluster::query_result`]) first commit the watermark
//!    (settle the request-id ledger and barrier trailing scatters), so
//!    they always
//!    observe a *consistent batch boundary*: every issued batch
//!    completely, no batch partially.  With coalescing disabled, the
//!    issued batches are exactly a prefix of the admitted stream; with
//!    coalescing enabled they form a prefix of a commuted schedule in
//!    which per-relation admission order is preserved but a same-relation
//!    delta may have been ring-summed past later-admitted batches of
//!    *other* relations (the flushed end state is identical either way).
//!    Queued-but-unissued batches become visible after
//!    [`ThreadedCluster::flush`], which drains the admission queue and
//!    finalizes stream timing.
//!
//! [`BatchExecution::latency_secs`]: hotdog_distributed::BatchExecution

#![forbid(unsafe_code)]

pub mod adaptive;

pub use adaptive::{AdaptiveConfig, CoalesceController};
pub use hotdog_distributed::PipelineStats;

use hotdog_algebra::eval::EvalCounters;
use hotdog_algebra::relation::Relation;
use hotdog_distributed::protocol::{
    handle_request, WorkerReply as Reply, WorkerRequest as Request,
};
use hotdog_distributed::{
    assemble_views, partition_shards, Backend, BatchExecution, CaptureBatch, CapturedView,
    ClusterTotals, DeltaCapture, DistStatement, DistStmtKind, DistributedPlan, LocTag, PartitionFn,
    StmtMode, Transform, TriggerProgram, WorkerSnapshot, WorkerState, WorkerStatsSnapshot,
};
use hotdog_exec::relabel;
use hotdog_ivm::StmtOp;
use hotdog_telemetry::{
    ActiveSpan, Counter, CriticalPath, Gauge, Histogram, MetricsSnapshot, SpanContext, SpanRecord,
    Telemetry,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How a [`Driver`] reaches its workers: an in-process `mpsc` channel pair
/// per worker thread ([`ChannelTransport`]), or a TCP stream per worker
/// subprocess (`hotdog-net`'s `TcpTransport`).
///
/// The transport only moves [`WorkerRequest`]/[`WorkerReply`] messages; all
/// scheduling — the admission queue, delta coalescing, the request-id
/// ledger, adaptive tuning, backpressure — lives in the transport-generic
/// [`Driver`], so every real backend shares one pipeline implementation
/// and can only differ in how bytes move.
///
/// Contract (what the driver's ledger accounting relies on):
///
/// * [`Transport::send`] preserves per-worker FIFO command order;
/// * [`Transport::recv`] blocks until one more reply from worker `w`
///   arrives, in arrival order; [`Transport::try_recv`] is its
///   non-blocking form;
/// * a dead worker is a **typed error**, never a panic and never a
///   silent stall: `send`/`recv`/`try_recv` surface [`WorkerDead`] and
///   the driver decides — recover it (when a [`FaultConfig`] is set and
///   the transport can [`Transport::respawn`]) or propagate it;
/// * [`Transport::shutdown`] is idempotent and must not hang on workers
///   that already exited.
///
/// [`WorkerRequest`]: hotdog_distributed::protocol::WorkerRequest
/// [`WorkerReply`]: hotdog_distributed::protocol::WorkerReply
pub trait Transport {
    /// Number of workers this transport reaches.
    fn workers(&self) -> usize;
    /// Enqueue one command to worker `w` (per-worker FIFO).
    fn send(&mut self, w: usize, request: Request) -> Result<(), WorkerDead>;
    /// Block for the next reply from worker `w`.
    fn recv(&mut self, w: usize) -> Result<Reply, WorkerDead>;
    /// The next reply from worker `w` if one has already arrived.
    fn try_recv(&mut self, w: usize) -> Result<Option<Reply>, WorkerDead>;
    /// Replace a dead worker `w` with a fresh, empty one (new process or
    /// thread, re-handshaken, plan re-shipped).  The default refuses:
    /// transports that cannot respawn report the worker as still dead,
    /// and the driver surfaces the typed error instead of recovering.
    fn respawn(&mut self, w: usize) -> Result<(), WorkerDead> {
        Err(WorkerDead {
            index: w,
            reason: "transport cannot respawn workers".to_string(),
        })
    }
    /// Stop all workers (idempotent).
    fn shutdown(&mut self);
    /// Backend names a [`Driver`] over this transport reports, by mode.
    fn names(&self) -> TransportNames;
    /// The transport's own [`Telemetry`] instance, if it keeps one (the
    /// TCP transport counts frames, bytes and codec time).  The driver
    /// *adopts* it, so wire-level and scheduler-level metrics land in one
    /// registry; `None` (the default) makes the driver create a fresh
    /// instance.
    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        None
    }
}

/// The [`Backend::backend_name`] strings of a transport, per execution
/// mode (epoch-synchronous / pipelined tagged / pipelined FIFO-compat).
#[derive(Clone, Copy, Debug)]
pub struct TransportNames {
    pub sync: &'static str,
    pub pipelined: &'static str,
    pub fifo: &'static str,
}

/// A worker failed: its connection closed, its heartbeat deadline
/// elapsed, or its channel endpoint hung up.  This is the typed form of
/// every worker-death path — transports return it instead of panicking,
/// and the driver either recovers (checkpoint restore + replay, see
/// [`FaultConfig`]) or propagates it through the `try_*` API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerDead {
    /// The worker slot that died.
    pub index: usize,
    /// Human-readable cause (I/O error, heartbeat timeout, hung-up
    /// channel, refused respawn).
    pub reason: String,
}

impl std::fmt::Display for WorkerDead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker {} died: {}", self.index, self.reason)
    }
}

impl std::error::Error for WorkerDead {}

/// How the driver rebuilds a consistent cluster state after a worker
/// death (see [`FaultConfig::mode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Each checkpoint ships every worker's full [`WorkerSnapshot`]
    /// (canonical view partitions, exchange buffers, work counters) to
    /// the driver over the bit-preserving codec; recovery sends each
    /// worker its own snapshot back in a `Restore`.  Exact, including
    /// cross-batch exchange-buffer state.
    Checkpoint,
    /// Each checkpoint keeps only the workers' counters (`ship: false`)
    /// and gathers every worker-resident view partition driver-side via
    /// `Snapshot` fetches; recovery re-scatters those partitions.
    /// Exchange buffers are *not* checkpointed (restored empty) — valid
    /// because every trigger program scatters into its buffers before
    /// reading them, which the differential fault sweep holds.
    Rescatter,
}

/// Worker fault tolerance for a [`Driver`]: periodic consistent
/// checkpoints plus a bounded replay log, so a worker death rolls the
/// cluster back to the last checkpoint cut and replays the logged
/// batches — bit-identically (checkpoint epochs canonicalize every
/// node's storage layout, so a restored pool and a surviving pool agree
/// on all scan-order-dependent float arithmetic).
///
/// Configure it with [`Driver::set_fault_config`] **before the first
/// batch**.  Runs with the same `FaultConfig` are bit-identical to each
/// other whether faults fire or not; a run with fault tolerance
/// *disabled* may differ in float ulps from an enabled run, because the
/// checkpoint epochs themselves re-canonicalize storage.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Take a checkpoint every this many issued batches.  `0` never
    /// checkpoints: recovery then restores every node to *empty* and
    /// replays the entire logged stream.
    pub checkpoint_every: u64,
    /// What a checkpoint stores and how restore uses it.
    pub mode: RecoveryMode,
    /// Give up — surface the [`WorkerDead`] — after this many recovery
    /// attempts over the driver's lifetime.
    pub max_recoveries: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            checkpoint_every: 8,
            mode: RecoveryMode::Checkpoint,
            max_recoveries: 8,
        }
    }
}

impl FaultConfig {
    /// Config checkpointing every `n` issued batches.
    pub fn every(n: u64) -> Self {
        FaultConfig {
            checkpoint_every: n,
            ..Default::default()
        }
    }

    /// Builder-style recovery mode.
    pub fn with_mode(mut self, mode: RecoveryMode) -> Self {
        self.mode = mode;
        self
    }
}

/// One consistent cut: everything needed to roll the whole cluster —
/// driver included — back to `issued` batches.
struct CheckpointState {
    /// Value of `Driver::issued` at the cut.
    issued: u64,
    /// Driver-resident state at the cut (canonical).
    driver: WorkerSnapshot,
    /// Per-worker state at the cut: full snapshots shipped by the
    /// workers ([`RecoveryMode::Checkpoint`]) or rebuilt driver-side
    /// from gathered view partitions ([`RecoveryMode::Rescatter`]).
    workers: Vec<WorkerSnapshot>,
}

fn worker_loop(mut state: WorkerState, rx: Receiver<Request>, tx: Sender<Reply>) {
    while let Ok(msg) = rx.recv() {
        if matches!(msg, Request::Shutdown) {
            break;
        }
        if let Some(reply) = handle_request(&mut state, msg) {
            let _ = tx.send(reply);
        }
    }
}

/// The in-process transport: one OS thread per worker, joined by a pair of
/// `mpsc` channels playing the role of the cluster fabric.
pub struct ChannelTransport {
    requests: Vec<Sender<Request>>,
    replies: Vec<Receiver<Reply>>,
    handles: Vec<JoinHandle<()>>,
}

impl ChannelTransport {
    /// Spawn `workers` worker threads, each owning an empty
    /// [`WorkerState`] for the plan.
    pub fn spawn(dplan: &DistributedPlan, workers: usize) -> Self {
        assert!(workers > 0);
        let mut requests = Vec::with_capacity(workers);
        let mut replies = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let mut state = WorkerState::for_plan(&dplan.plan);
            state.set_trace_track(i as u32 + 1);
            let (req_tx, req_rx) = channel();
            let (rep_tx, rep_rx) = channel();
            let handle = thread::Builder::new()
                .name(format!("hotdog-worker-{i}"))
                .spawn(move || worker_loop(state, req_rx, rep_tx))
                .expect("failed to spawn worker thread");
            requests.push(req_tx);
            replies.push(rep_rx);
            handles.push(handle);
        }
        ChannelTransport {
            requests,
            replies,
            handles,
        }
    }
}

impl ChannelTransport {
    fn dead(w: usize) -> WorkerDead {
        WorkerDead {
            index: w,
            reason: "worker thread hung up its channel".to_string(),
        }
    }
}

impl Transport for ChannelTransport {
    fn workers(&self) -> usize {
        self.requests.len()
    }

    fn send(&mut self, w: usize, request: Request) -> Result<(), WorkerDead> {
        self.requests[w].send(request).map_err(|_| Self::dead(w))
    }

    fn recv(&mut self, w: usize) -> Result<Reply, WorkerDead> {
        self.replies[w].recv().map_err(|_| Self::dead(w))
    }

    fn try_recv(&mut self, w: usize) -> Result<Option<Reply>, WorkerDead> {
        match self.replies[w].try_recv() {
            Ok(reply) => Ok(Some(reply)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(Self::dead(w)),
        }
    }

    fn shutdown(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        for tx in &self.requests {
            let _ = tx.send(Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    fn names(&self) -> TransportNames {
        TransportNames {
            sync: "threaded",
            pipelined: "pipelined",
            fifo: "pipelined-fifo",
        }
    }
}

/// A distributed block with its statements shared once, so per-batch
/// broadcasts are an `Arc` bump instead of a deep clone.
struct SharedBlock {
    mode: StmtMode,
    statements: Arc<Vec<DistStatement>>,
    /// Whether any statement of this block references a delta relation.
    /// The distributed compiler rewrites delta references into scattered
    /// temps, so worker-bound blocks normally never read the batch — a
    /// block that doesn't is broadcast with an *empty* deltas map, which
    /// keeps byte-counting transports from shipping the batch N times for
    /// nothing.
    needs_delta: bool,
}

struct SharedProgram {
    relation_schema: hotdog_algebra::schema::Schema,
    blocks: Vec<SharedBlock>,
    stages: usize,
    jobs: usize,
}

fn share_program(p: &TriggerProgram) -> SharedProgram {
    SharedProgram {
        relation_schema: p.relation_schema.clone(),
        blocks: p
            .blocks
            .iter()
            .map(|b| SharedBlock {
                mode: b.mode,
                needs_delta: b.statements.iter().any(|s| match &s.kind {
                    DistStmtKind::Compute(e) => e.has_delta_relations(),
                    DistStmtKind::Transform { .. } => false,
                }),
                statements: Arc::new(b.statements.clone()),
            })
            .collect(),
        stages: p.stages(),
        jobs: p.jobs(),
    }
}

/// Configuration of the pipelined ingestion path
/// ([`ThreadedCluster::pipelined`]).
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Ring-sum each admitted batch into the latest queued delta of the
    /// same relation until that delta would exceed this many tuples.  `0`
    /// disables coalescing (making pipelined execution bit-identical to
    /// the synchronous schedule; with coalescing the state is identical in
    /// real arithmetic but float additions associate differently).
    /// Ignored when [`PipelineConfig::adaptive`] is set: the controller
    /// then chooses the bound online.
    pub coalesce_tuples: usize,
    /// Maximum admitted-but-unissued batches held in the admission queue;
    /// admitting beyond it drives execution of the queue front.
    pub admit_capacity: usize,
    /// Byte-bounded backpressure: maximum serialized footprint of the
    /// admission queue (queued deltas, via the O(1)
    /// [`Relation::serialized_size`] accounting).  Admitting beyond it
    /// drives execution of the queue front until the footprint fits.
    /// `0` disables the bound.
    pub admit_bytes: usize,
    /// Latency-target mode: an upper bound on how stale a queued batch may
    /// get before it is forced through.  Enforced at every admission *and*
    /// at every read: whenever the oldest queued delta has been waiting
    /// longer than this, the queue front is executed (counted in
    /// [`PipelineStats::executions_forced_by_latency`]), and a queued
    /// delta older than *half* the target stops accepting coalesced
    /// merges — trading coalescing throughput for bounded watermark lag
    /// (a read never observes data staler than the target).  There is no
    /// background timer: on a stream that goes fully quiescent (no
    /// admissions, no reads), queued deltas wait until the next
    /// admission, read or [`ThreadedCluster::flush`].  `None` leaves
    /// staleness unbounded (pure-throughput mode).
    pub latency_target: Option<Duration>,
    /// Self-tuning coalescing: measure per-trigger overhead vs. marginal
    /// per-tuple cost online and hill-climb the coalescing bound over the
    /// paper's concave throughput curve (see [`adaptive`]).  Overrides
    /// [`PipelineConfig::coalesce_tuples`].
    pub adaptive: Option<AdaptiveConfig>,
    /// Maximum unsettled distributed-block completions per worker before
    /// the driver must wait for one to settle.
    pub inflight_blocks: usize,
    /// Fully asynchronous gathers (the tagged-reply schedule, default):
    /// `Gather`/`Repart` fetches are issued immediately and wait only for
    /// their own request ids; in-flight block completions settle into the
    /// ledger whenever they arrive.  `false` restores the positional-FIFO
    /// schedule — drain the entire in-flight window before any fetch — as
    /// an A/B comparison arm (the `async_gather` bench section measures
    /// tagged vs. FIFO).
    pub async_gather: bool,
    /// Ship scatters as one multi-statement `ApplyMany` message per worker
    /// per batch (default).  `false` ships one message per scatter
    /// statement, reproducing the positional protocol's channel traffic
    /// for A/B comparison.
    pub batch_scatters: bool,
    /// Chaos/test knob: deterministically shuffle the driver's reply inbox
    /// (seeded) on every arrival, forcing replies to be *consumed* out of
    /// order.  Correctness must not depend on reply order — the ledger
    /// matches by request id — so any seed must leave results and
    /// watermarks bit-identical.  `None` (default) keeps arrival order.
    pub shuffle_replies: Option<u64>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            coalesce_tuples: 4096,
            admit_capacity: 16,
            admit_bytes: 0,
            latency_target: None,
            adaptive: None,
            inflight_blocks: 4,
            async_gather: true,
            batch_scatters: true,
            shuffle_replies: None,
        }
    }
}

impl PipelineConfig {
    /// Config with a specific static coalescing threshold (in tuples).
    pub fn with_coalesce(coalesce_tuples: usize) -> Self {
        PipelineConfig {
            coalesce_tuples,
            ..Default::default()
        }
    }

    /// Config with the default self-tuning coalescing policy.
    pub fn adaptive() -> Self {
        PipelineConfig {
            adaptive: Some(AdaptiveConfig::default()),
            ..Default::default()
        }
    }

    /// Builder-style latency target (see
    /// [`PipelineConfig::latency_target`]).
    pub fn with_latency_target(mut self, target: Duration) -> Self {
        self.latency_target = Some(target);
        self
    }

    /// Builder-style byte bound on the admission queue (see
    /// [`PipelineConfig::admit_bytes`]).
    pub fn with_admit_bytes(mut self, admit_bytes: usize) -> Self {
        self.admit_bytes = admit_bytes;
        self
    }

    /// Positional-FIFO compatibility schedule: drain the full in-flight
    /// window before every gather/repart fetch and ship one scatter
    /// message per statement.  State is bit-identical to the tagged
    /// schedule (same trigger sequence, same per-worker command order);
    /// only reply accounting and channel traffic differ.  Used as the
    /// baseline arm of the `async_gather` benchmark comparison.
    pub fn fifo_compat() -> Self {
        PipelineConfig {
            async_gather: false,
            batch_scatters: false,
            ..Default::default()
        }
    }

    /// Builder-style reply-inbox shuffling (see
    /// [`PipelineConfig::shuffle_replies`]).
    pub fn with_shuffled_replies(mut self, seed: u64) -> Self {
        self.shuffle_replies = Some(seed);
        self
    }
}

/// Cached handles into the driver's metric registry, registered once at
/// construction so every hot-path update is a single relaxed atomic op.
///
/// The `driver.*` counters are deterministic functions of the admission
/// sequence and the (transport-generic) driver schedule: they must be
/// bit-identical across the threaded and TCP backends.  The gauges and
/// the latency-valued histograms are *not* part of that contract (see
/// [`MetricsSnapshot::deterministic`]).
struct DriverMetrics {
    requests_total: Arc<Counter>,
    requests_run_block: Arc<Counter>,
    requests_apply_many: Arc<Counter>,
    requests_fetch: Arc<Counter>,
    requests_snapshot: Arc<Counter>,
    requests_barrier: Arc<Counter>,
    requests_stats: Arc<Counter>,
    requests_ping: Arc<Counter>,
    requests_checkpoint: Arc<Counter>,
    requests_restore: Arc<Counter>,
    requests_set_capture: Arc<Counter>,
    requests_take_captured: Arc<Counter>,
    replies_total: Arc<Counter>,
    worker_respawned: Arc<Counter>,
    worker_declared_dead: Arc<Counter>,
    recovery_attempts: Arc<Counter>,
    recovery_checkpoints: Arc<Counter>,
    recovery_replayed: Arc<Counter>,
    recovery_restored_workers: Arc<Counter>,
    batches_admitted: Arc<Counter>,
    batches_coalesced: Arc<Counter>,
    batches_executed: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    queue_bytes: Arc<Gauge>,
    ledger_outstanding: Arc<Gauge>,
    gather_micros: Arc<Histogram>,
    batch_tuples: Arc<Histogram>,
}

impl DriverMetrics {
    fn register(t: &Telemetry) -> Self {
        DriverMetrics {
            requests_total: t.counter("driver.requests.total"),
            requests_run_block: t.counter("driver.requests.run_block"),
            requests_apply_many: t.counter("driver.requests.apply_many"),
            requests_fetch: t.counter("driver.requests.fetch"),
            requests_snapshot: t.counter("driver.requests.snapshot"),
            requests_barrier: t.counter("driver.requests.barrier"),
            requests_stats: t.counter("driver.requests.stats"),
            requests_ping: t.counter("driver.requests.ping"),
            requests_checkpoint: t.counter("driver.requests.checkpoint"),
            requests_restore: t.counter("driver.requests.restore"),
            requests_set_capture: t.counter("driver.requests.set_capture"),
            requests_take_captured: t.counter("driver.requests.take_captured"),
            replies_total: t.counter("driver.replies.total"),
            // Registered at zero on every backend so the deterministic
            // snapshot keeps key parity: in a fault-free run all of
            // these stay zero everywhere, and under a fault plan their
            // values are a function of the plan, not of the transport.
            // (`worker.heartbeat_missed`, which *is* wall-clock-driven,
            // is registered by the TCP transport and excluded from the
            // deterministic slice by name.)
            worker_respawned: t.counter("worker.respawned"),
            worker_declared_dead: t.counter("worker.declared_dead"),
            recovery_attempts: t.counter("recovery.attempts"),
            recovery_checkpoints: t.counter("recovery.checkpoints"),
            recovery_replayed: t.counter("recovery.replayed_batches"),
            recovery_restored_workers: t.counter("recovery.restored_workers"),
            batches_admitted: t.counter("driver.batches.admitted"),
            batches_coalesced: t.counter("driver.batches.coalesced"),
            batches_executed: t.counter("driver.batches.executed"),
            queue_depth: t.gauge("driver.queue.depth"),
            queue_bytes: t.gauge("driver.queue.bytes"),
            ledger_outstanding: t.gauge("driver.ledger.outstanding"),
            gather_micros: t.histogram("driver.gather_micros"),
            batch_tuples: t.histogram("driver.batch_tuples"),
        }
    }

    fn count_request(&self, request: &Request) {
        self.requests_total.inc();
        match request {
            Request::RunBlock { .. } => self.requests_run_block.inc(),
            Request::ApplyMany { .. } => self.requests_apply_many.inc(),
            Request::Fetch { .. } => self.requests_fetch.inc(),
            Request::Snapshot { .. } => self.requests_snapshot.inc(),
            Request::Barrier { .. } => self.requests_barrier.inc(),
            Request::Stats { .. } => self.requests_stats.inc(),
            // The driver itself never sends Pings — heartbeats are a
            // transport concern, injected below this chokepoint — so the
            // counter deterministically stays zero; the arm exists for
            // protocol completeness.
            Request::Ping { .. } => self.requests_ping.inc(),
            Request::Checkpoint { .. } => self.requests_checkpoint.inc(),
            Request::Restore { .. } => self.requests_restore.inc(),
            Request::SetCapture { .. } => self.requests_set_capture.inc(),
            Request::TakeCaptured { .. } => self.requests_take_captured.inc(),
            // Shutdown travels through `Transport::shutdown`, never here.
            Request::Shutdown => {}
        }
    }
}

/// The deterministic cross-backend telemetry totals: every field is a
/// function of the admission sequence and the shared driver schedule
/// only — never of wall-clock time or of how bytes move — so for the
/// same update stream the threaded and TCP backends must produce
/// **bit-identical** values.  The workspace telemetry oracle asserts
/// exactly that (derived `Eq`).
///
/// Obtained from [`Driver::telemetry_totals`], which flushes the
/// pipeline and gathers every worker's counters over the protocol's
/// `Stats` message.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryTotals {
    /// Messages the driver sent to workers (all kinds except `Shutdown`),
    /// captured after the flush but *before* the `Stats` gather round that
    /// collects the worker counters.
    pub messages_sent: u64,
    /// Replies received from workers, captured at the same instant as
    /// `messages_sent`.
    pub replies_received: u64,
    /// Total worker interpreter work (weighted `EvalCounters` units).
    pub instructions: u64,
    /// Distributed blocks run across all workers (triggers fired).
    pub blocks_run: u64,
    /// `Compute` statements interpreted across all workers.
    pub statements: u64,
    /// Scattered tuples installed across all workers.
    pub tuples_applied: u64,
    /// Per-worker counters and view-partition cardinalities, in worker
    /// order.
    pub per_worker: Vec<WorkerStatsSnapshot>,
}

/// One admitted-but-unissued coalesced delta in the admission queue.
struct QueuedDelta {
    relation: String,
    delta: Relation,
    /// When the *oldest* event folded into this delta was admitted: the
    /// staleness clock the latency target is enforced against.
    admitted_at: Instant,
    /// This batch's root span, opened at admission so queue dwell time is
    /// inside the root window; coalesced admissions record their
    /// `coalesce` child under it, and execution closes it.
    root: ActiveSpan,
}

/// One driver + N workers executing a distributed plan for real, generic
/// over the [`Transport`] that reaches the workers.
///
/// [`ThreadedCluster`] (= `Driver<ChannelTransport>`) is the in-process
/// thread-per-worker backend; `hotdog-net`'s `TcpCluster` runs the *same*
/// driver over worker subprocesses joined by TCP sockets.  Everything
/// above the transport — trigger execution, the admission queue, delta
/// coalescing, the request-id ledger, scatter batching, adaptive tuning,
/// backpressure, watermarks — is shared, so the backends can only differ
/// in how bytes move.
///
/// Public surface matches the simulated
/// [`Cluster`](hotdog_distributed::Cluster) (`apply_batch`,
/// `view_contents`, `query_result`, `plan`, `totals`) so the backends
/// are drop-in interchangeable; [`BatchExecution`] fields that model time in
/// the simulator hold *measured* wall-clock values here.  See the crate
/// docs for the epoch-synchronous vs. pipelined execution modes.
pub struct Driver<T: Transport> {
    /// Number of workers.
    pub workers: usize,
    dplan: DistributedPlan,
    driver: WorkerState,
    programs: HashMap<String, SharedProgram>,
    transport: T,
    /// Monotonic request-id source (shared across workers: ids are globally
    /// unique, which makes ledger mismatches loud).
    next_request_id: u64,
    /// The completion ledger: per worker, the ids of `RunBlock` requests
    /// whose `Ran` replies have not yet settled.
    pending_blocks: Vec<HashSet<u64>>,
    /// Per worker: replies received but not yet consumed (the stash that
    /// makes reply *consumption* independent of arrival order).
    inbox: Vec<Vec<Reply>>,
    /// Per worker: scattered shards buffered on the driver, shipped as one
    /// `ApplyMany` before the worker's next command (or at batch end).
    pending_applies: Vec<Vec<(Arc<DistStatement>, Relation)>>,
    /// Seeded inbox shuffler ([`PipelineConfig::shuffle_replies`]).
    reply_shuffle: Option<StdRng>,
    /// Slowest worker's interpreter work settled during the current
    /// `execute_canonical` call (reported per batch in synchronous mode).
    batch_max_instructions: u64,
    /// Worker interpreter work settled since the adaptive controller last
    /// observed a trigger — the lazily collected cost signal folded into
    /// the hill climber (see [`adaptive`]).
    instructions_since_observe: u64,
    /// Shared empty deltas map broadcast with blocks that never read the
    /// batch (the usual case: the compiler rewrites delta references into
    /// scattered temps).
    empty_deltas: Arc<HashMap<String, Relation>>,
    /// Whether `ApplyMany` messages have been shipped with no barrier
    /// behind them yet (a trailing scatter must be drained before worker
    /// state is read, or before a synchronous batch's wall clock stops).
    applies_in_flight: bool,
    /// `Some` iff this cluster runs the pipelined ingestion path.
    pipeline: Option<PipelineConfig>,
    /// Self-tuning coalescing controller (`Some` iff
    /// [`PipelineConfig::adaptive`] is set).
    controller: Option<CoalesceController>,
    /// Admitted-but-unissued coalesced delta batches.
    queue: VecDeque<QueuedDelta>,
    /// Serialized footprint of `queue` (incrementally maintained; the
    /// byte-bounded backpressure reads it on every admission).
    queue_bytes: usize,
    /// Batches whose execution has been fully issued to driver and workers.
    issued: u64,
    /// Batches guaranteed visible to reads (issued + drained + barriered).
    watermark: u64,
    /// First admission since the last `flush` (stream wall-clock origin).
    stream_start: Option<Instant>,
    /// Worker fault tolerance (`None` disables it: a worker death then
    /// surfaces as a typed [`WorkerDead`] error / panic).
    fault: Option<FaultConfig>,
    /// The last consistent cut (absent until the first checkpoint; an
    /// absent checkpoint restores to *empty* and replays everything).
    ckpt: Option<CheckpointState>,
    /// Canonical-schema deltas issued since the last checkpoint, in
    /// issue order — what recovery replays.  Empty when `fault` is off.
    replay_log: Vec<(String, Relation)>,
    /// Recovery attempts so far (bounded by
    /// [`FaultConfig::max_recoveries`]).
    recoveries: usize,
    /// Views with delta capture enabled (see
    /// [`hotdog_distributed::capture`]); empty = capture off.
    capture_views: Vec<String>,
    /// `recoveries` as of the last capture drain: when they diverge, a
    /// recovery cycle replayed the stream since the subscriber's last
    /// delta, so the next drain must resynchronize from snapshots.
    capture_epoch: usize,
    /// Pipelined-ingestion counters (all zero in epoch-synchronous mode).
    pub stats: PipelineStats,
    /// Accumulated measured totals (same shape as the simulator's).
    pub totals: ClusterTotals,
    /// Shared metrics registry + flight recorder (adopted from the
    /// transport when it keeps one, so wire- and scheduler-level metrics
    /// land together).
    telemetry: Arc<Telemetry>,
    /// Cached metric handles for the driver hot paths.
    metrics: DriverMetrics,
    /// Context of the batch currently executing (during
    /// `execute_canonical`) or most recently executed: the parent for
    /// wire-propagated worker spans, gathers and watermark commits.
    trace_scope: SpanContext,
}

/// The in-process thread-per-worker backend: the transport-generic
/// [`Driver`] over [`ChannelTransport`].
pub type ThreadedCluster = Driver<ChannelTransport>;

impl ThreadedCluster {
    /// Spawn `workers` worker threads with empty view partitions, in
    /// epoch-synchronous mode (one batch in the system at a time).
    pub fn new(dplan: DistributedPlan, workers: usize) -> Self {
        let transport = ChannelTransport::spawn(&dplan, workers);
        Driver::with_transport(dplan, transport, None)
    }

    /// Spawn `workers` worker threads with empty view partitions, in
    /// pipelined mode: `apply_batch` admits into a coalescing queue and
    /// execution overlaps driver and worker work within the configured
    /// in-flight window.  Call [`ThreadedCluster::flush`] (or read a view)
    /// to force admitted batches through.
    pub fn pipelined(dplan: DistributedPlan, workers: usize, config: PipelineConfig) -> Self {
        let transport = ChannelTransport::spawn(&dplan, workers);
        Driver::with_transport(dplan, transport, Some(config))
    }
}

impl<T: Transport> Driver<T> {
    /// Build a driver over an already-connected transport (whose workers
    /// hold empty view partitions for `dplan`), in epoch-synchronous mode
    /// when `pipeline` is `None` and pipelined mode otherwise.  This is
    /// the constructor other transports (e.g. `hotdog-net`'s TCP backend)
    /// use; the thread-channel backend wraps it as
    /// [`ThreadedCluster::new`] / [`ThreadedCluster::pipelined`].
    pub fn with_transport(
        dplan: DistributedPlan,
        transport: T,
        pipeline: Option<PipelineConfig>,
    ) -> Self {
        let workers = transport.workers();
        assert!(workers > 0);
        let controller = pipeline
            .as_ref()
            .and_then(|c| c.adaptive.clone())
            .map(CoalesceController::new);
        let driver = WorkerState::for_plan(&dplan.plan);
        let programs = dplan
            .programs
            .iter()
            .map(|p| (p.relation.clone(), share_program(p)))
            .collect();
        let reply_shuffle = pipeline
            .as_ref()
            .and_then(|c| c.shuffle_replies)
            .map(StdRng::seed_from_u64);
        let telemetry = transport.telemetry().unwrap_or_else(Telemetry::shared);
        telemetry.install_signal_dump();
        let metrics = DriverMetrics::register(&telemetry);
        let mut cluster = Driver {
            workers,
            dplan,
            driver,
            programs,
            transport,
            next_request_id: 0,
            pending_blocks: vec![HashSet::new(); workers],
            inbox: (0..workers).map(|_| Vec::new()).collect(),
            pending_applies: (0..workers).map(|_| Vec::new()).collect(),
            reply_shuffle,
            batch_max_instructions: 0,
            instructions_since_observe: 0,
            empty_deltas: Arc::new(HashMap::new()),
            applies_in_flight: false,
            pipeline,
            controller,
            queue: VecDeque::new(),
            queue_bytes: 0,
            issued: 0,
            watermark: 0,
            stream_start: None,
            fault: None,
            ckpt: None,
            replay_log: Vec::new(),
            recoveries: 0,
            capture_views: Vec::new(),
            capture_epoch: 0,
            stats: PipelineStats::default(),
            totals: ClusterTotals::default(),
            telemetry,
            metrics,
            trace_scope: SpanContext::NONE,
        };
        cluster.stats.coalesce_bound = cluster.effective_coalesce_bound();
        cluster
    }

    /// The compiled distributed plan this cluster runs.
    pub fn plan(&self) -> &DistributedPlan {
        &self.dplan
    }

    /// Whether this cluster runs the pipelined ingestion path.
    pub fn is_pipelined(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Admitted-but-unissued batches currently held in the admission queue
    /// (post-coalescing).  The latency-target mode bounds how long any of
    /// them may wait.
    pub fn queued_batches(&self) -> usize {
        self.queue.len()
    }

    /// Serialized footprint of the admission queue in bytes (what the
    /// `admit_bytes` backpressure bound is enforced against).
    pub fn queued_bytes(&self) -> usize {
        self.queue_bytes
    }

    /// Size of the request-id ledger: block completions issued to workers
    /// but not yet settled, plus replies stashed unconsumed in the
    /// driver's inbox.  [`ThreadedCluster::flush`] (and every read) drains
    /// this to zero — a flushed cluster owes its workers nothing.
    pub fn outstanding_replies(&self) -> usize {
        self.pending_blocks.iter().map(|p| p.len()).sum::<usize>()
            + self.inbox.iter().map(|i| i.len()).sum::<usize>()
    }

    /// Number of batches guaranteed visible to reads: reads observe
    /// exactly this many *issued* batches (post-coalescing), a prefix of
    /// the admitted stream when coalescing is off and of its commuted
    /// schedule otherwise (see [`ThreadedCluster::view_contents`]).
    /// Advanced by reads and by `flush`.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Fresh request id (globally unique across workers).
    fn fresh_request_id(&mut self) -> u64 {
        self.next_request_id += 1;
        self.next_request_id
    }

    /// The single driver→worker send chokepoint: counts the message by
    /// kind, then hands it to the transport.
    fn send_to(&mut self, w: usize, request: Request) -> Result<(), WorkerDead> {
        self.metrics.count_request(&request);
        self.transport.send(w, request)
    }

    /// Stash one received reply in worker `w`'s inbox.  Under the
    /// [`PipelineConfig::shuffle_replies`] chaos knob the inbox is
    /// re-shuffled on every arrival, so consumers can never rely on
    /// position — only on request ids.
    fn stash_reply(&mut self, w: usize, reply: Reply) {
        self.metrics.replies_total.inc();
        self.inbox[w].push(reply);
        if let Some(rng) = self.reply_shuffle.as_mut() {
            let inbox = &mut self.inbox[w];
            for i in (1..inbox.len()).rev() {
                let j = rng.gen_range(0..=i);
                inbox.swap(i, j);
            }
        }
    }

    /// Move every already-arrived reply from worker `w`'s channel into its
    /// inbox without blocking.
    fn pump(&mut self, w: usize) -> Result<(), WorkerDead> {
        while let Some(reply) = self.transport.try_recv(w)? {
            self.stash_reply(w, reply);
        }
        Ok(())
    }

    /// Block for one more reply from worker `w` and stash it.
    fn recv_one(&mut self, w: usize) -> Result<(), WorkerDead> {
        let reply = self.transport.recv(w)?;
        self.stash_reply(w, reply);
        Ok(())
    }

    /// Settle every block completion currently in worker `w`'s inbox
    /// against the ledger, folding the reported interpreter work into the
    /// stats.  Replies awaited by someone else (`Rel`/`Ack`) stay stashed.
    fn settle_completions(&mut self, w: usize) {
        let mut i = 0;
        while i < self.inbox[w].len() {
            if matches!(self.inbox[w][i], Reply::Ran { .. }) {
                let Reply::Ran { id, instructions } = self.inbox[w].swap_remove(i) else {
                    unreachable!()
                };
                assert!(
                    self.pending_blocks[w].remove(&id),
                    "completion for request id {id} not in worker {w}'s ledger"
                );
                self.stats.max_worker_instructions =
                    self.stats.max_worker_instructions.max(instructions);
                self.stats.worker_instructions += instructions;
                self.instructions_since_observe += instructions;
                self.batch_max_instructions = self.batch_max_instructions.max(instructions);
            } else {
                i += 1;
            }
        }
    }

    /// Opportunistically settle whatever completions have already arrived
    /// from worker `w` (non-blocking).
    fn settle_ready(&mut self, w: usize) -> Result<(), WorkerDead> {
        self.pump(w)?;
        self.settle_completions(w);
        Ok(())
    }

    /// Block until at least one of worker `w`'s pending block ids settles.
    fn await_one_completion(&mut self, w: usize) -> Result<(), WorkerDead> {
        let before = self.pending_blocks[w].len();
        debug_assert!(before > 0, "no pending block to await");
        self.settle_ready(w)?;
        while self.pending_blocks[w].len() >= before {
            self.recv_one(w)?;
            self.settle_completions(w);
        }
        Ok(())
    }

    /// Settle every pending block completion (all workers) — the full
    /// ledger drain used by watermark commits and the FIFO-compat
    /// schedule.
    fn drain_pending_blocks(&mut self) -> Result<(), WorkerDead> {
        for w in 0..self.workers {
            while !self.pending_blocks[w].is_empty() {
                self.await_one_completion(w)?;
            }
        }
        Ok(())
    }

    /// Wait for the relation reply tagged `id` from worker `w`, settling
    /// any block completions that arrive (or were shuffled) ahead of it.
    fn await_rel(&mut self, w: usize, id: u64) -> Result<Relation, WorkerDead> {
        loop {
            self.settle_completions(w);
            if let Some(pos) = self.inbox[w]
                .iter()
                .position(|r| matches!(r, Reply::Rel { id: rid, .. } if *rid == id))
            {
                let Reply::Rel { rel, .. } = self.inbox[w].swap_remove(pos) else {
                    unreachable!()
                };
                return Ok(rel);
            }
            self.recv_one(w)?;
        }
    }

    /// Wait for the barrier acknowledgement tagged `id` from worker `w`.
    fn await_ack(&mut self, w: usize, id: u64) -> Result<(), WorkerDead> {
        loop {
            self.settle_completions(w);
            if let Some(pos) = self.inbox[w]
                .iter()
                .position(|r| matches!(r, Reply::Ack { id: rid } if *rid == id))
            {
                self.inbox[w].swap_remove(pos);
                return Ok(());
            }
            self.recv_one(w)?;
        }
    }

    /// Wait for the checkpoint snapshot tagged `id` from worker `w`.
    fn await_checkpoint(&mut self, w: usize, id: u64) -> Result<WorkerSnapshot, WorkerDead> {
        loop {
            self.settle_completions(w);
            if let Some(pos) = self.inbox[w]
                .iter()
                .position(|r| matches!(r, Reply::Checkpoint { id: rid, .. } if *rid == id))
            {
                let Reply::Checkpoint { snapshot, .. } = self.inbox[w].swap_remove(pos) else {
                    unreachable!()
                };
                return Ok(*snapshot);
            }
            self.recv_one(w)?;
        }
    }

    /// Ship worker `w`'s buffered scatter shards as one `ApplyMany`
    /// message.  Must run before any other command is sent to `w`, so the
    /// worker installs the shards first (command channels are FIFO).
    fn ship_applies(&mut self, w: usize) -> Result<(), WorkerDead> {
        if self.pending_applies[w].is_empty() {
            return Ok(());
        }
        let applies = std::mem::take(&mut self.pending_applies[w]);
        self.stats.scatter_messages_sent += 1;
        self.stats.scatter_messages_saved += applies.len() - 1;
        self.telemetry.event(
            "batch.scattered",
            vec![
                ("worker", w.into()),
                ("shards", applies.len().into()),
                (
                    "tuples",
                    applies
                        .iter()
                        .map(|(_, shard)| shard.len() as u64)
                        .sum::<u64>()
                        .into(),
                ),
            ],
        );
        let id = self.fresh_request_id();
        let ctx = self.trace_scope;
        self.send_to(w, Request::ApplyMany { id, ctx, applies })?;
        self.applies_in_flight = true;
        Ok(())
    }

    /// Ship every worker's buffered scatter shards.
    fn ship_all_applies(&mut self) -> Result<(), WorkerDead> {
        for w in 0..self.workers {
            self.ship_applies(w)?;
        }
        Ok(())
    }

    /// Barrier every worker (drains trailing `ApplyMany`s), waiting on the
    /// tagged acknowledgements.
    fn barrier_applies(&mut self) -> Result<(), WorkerDead> {
        let mut ids = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            let id = self.fresh_request_id();
            self.send_to(w, Request::Barrier { id })?;
            ids.push(id);
        }
        for (w, id) in ids.into_iter().enumerate() {
            self.await_ack(w, id)?;
        }
        self.applies_in_flight = false;
        Ok(())
    }

    /// Commit the watermark: after this, every issued batch is fully
    /// applied on every node and safe to read.  Ships any buffered
    /// scatters, settles the whole request-id ledger and barriers trailing
    /// applies.
    fn commit_watermark(&mut self) -> Result<(), WorkerDead> {
        // No-op commits (watermark already current, nothing buffered) are
        // spanless, so read-heavy workloads do not flood the trace with
        // empty "watermark.commit" entries.
        if self.watermark == self.issued && !self.applies_in_flight {
            let trivial = (0..self.workers).all(|w| self.pending_applies[w].is_empty());
            if trivial {
                return Ok(());
            }
        }
        let span = self
            .telemetry
            .begin_span(self.trace_scope, "watermark.commit");
        let result: Result<(), WorkerDead> = (|| {
            self.ship_all_applies()?;
            self.drain_pending_blocks()?;
            if self.applies_in_flight {
                self.barrier_applies()?;
            }
            self.watermark = self.issued;
            Ok(())
        })();
        self.telemetry.finish_span(span);
        result
    }

    /// The coalescing bound currently in force: the adaptive controller's
    /// latest choice, or the static `coalesce_tuples` threshold.
    fn effective_coalesce_bound(&self) -> usize {
        match (&self.controller, &self.pipeline) {
            (Some(ctl), _) => ctl.bound(),
            (None, Some(cfg)) => cfg.coalesce_tuples,
            (None, None) => 0,
        }
    }

    /// Execute every queued delta that has outlived the latency target
    /// (no-op without one).  Runs at every admission and before every
    /// read, so neither the queue nor a reader can outwait the staleness
    /// budget — but there is no background timer, so a fully quiescent
    /// stream holds its queue until the next admission, read or flush.
    fn enforce_latency_target(&mut self) -> Result<(), WorkerDead> {
        let Some(target) = self.pipeline.as_ref().and_then(|c| c.latency_target) else {
            return Ok(());
        };
        // `>=` so a zero budget forces unconditionally, independent of
        // clock resolution (a coarse monotonic clock can report elapsed()
        // == 0 across two admissions).
        while self
            .queue
            .front()
            .is_some_and(|q| q.admitted_at.elapsed() >= target)
        {
            self.telemetry.event(
                "backpressure.latency",
                vec![
                    ("queue_depth", self.queue.len().into()),
                    (
                        "target_micros",
                        (target.as_micros().min(u64::MAX as u128) as u64).into(),
                    ),
                ],
            );
            self.execute_queue_front()?;
            self.stats.executions_forced_by_latency += 1;
        }
        Ok(())
    }

    /// Pop and execute the queue front, feeding the measured trigger back
    /// to the adaptive controller.  A worker death mid-execution leaves
    /// the entry popped: it was logged before any message was issued, so
    /// recovery replays it to completion rather than re-queueing it.
    fn execute_queue_front(&mut self) -> Result<(), WorkerDead> {
        let Some(entry) = self.queue.pop_front() else {
            return Ok(());
        };
        self.queue_bytes -= entry.delta.serialized_size();
        let stats = self.execute_canonical(&entry.relation, entry.delta, true, Some(entry.root))?;
        if let Some(ctl) = self.controller.as_mut() {
            // Fold the worker interpreter work settled since the last
            // observation into the cost signal.  Completions settle
            // lazily, so this attributes a previous trigger's worker cost
            // to the current one — a bounded lag the probe-window
            // averaging absorbs (the window sums both terms).
            let old_bound = ctl.bound();
            let settled = std::mem::take(&mut self.instructions_since_observe);
            ctl.observe_with_work(stats.input_tuples, stats.wall_secs, settled);
            self.stats.coalesce_bound = ctl.bound();
            self.stats.bound_reversals = ctl.reversals;
            self.stats.bound_adjustments = ctl.adjustments;
            if ctl.bound() != old_bound {
                self.telemetry.event(
                    "controller.step",
                    vec![
                        ("old_bound", old_bound.into()),
                        ("new_bound", ctl.bound().into()),
                        ("tuples", stats.input_tuples.into()),
                        ("wall_secs", stats.wall_secs.into()),
                        ("settled_instructions", settled.into()),
                    ],
                );
            }
        }
        Ok(())
    }

    /// Execute every queued batch, commit the watermark and fold the stream
    /// wall-clock into the totals.  After `flush`, reads observe the entire
    /// admitted stream.  No-op in epoch-synchronous mode.
    ///
    /// Recovers worker deaths per the [`FaultConfig`]; panics with the
    /// typed [`WorkerDead`] message when recovery is disabled or
    /// exhausted (use [`Driver::try_flush`] for the fallible form).
    pub fn flush(&mut self) {
        self.try_flush()
            .unwrap_or_else(|dead| panic!("{dead} (recovery unavailable)"));
    }

    /// Fallible [`Driver::flush`]: surfaces an unrecovered worker death
    /// instead of panicking.
    pub fn try_flush(&mut self) -> Result<(), WorkerDead> {
        loop {
            match self.flush_inner() {
                Ok(()) => return Ok(()),
                Err(dead) => self.recover(dead)?,
            }
        }
    }

    fn flush_inner(&mut self) -> Result<(), WorkerDead> {
        while !self.queue.is_empty() {
            self.execute_queue_front()?;
        }
        self.commit_watermark()?;
        if let Some(start) = self.stream_start.take() {
            // Pipelined latency accounting is stream-scoped: the admitted
            // stream's wall-clock (first admission to flush), not a sum of
            // per-batch latencies.
            self.totals.latency_secs += start.elapsed().as_secs_f64();
        }
        Ok(())
    }

    /// Whether gathers run fully asynchronously (the default tagged
    /// schedule) or drain the in-flight window first (FIFO compat).
    fn async_gather(&self) -> bool {
        self.pipeline.as_ref().is_none_or(|c| c.async_gather)
    }

    /// Whether scatters buffer into per-worker `ApplyMany` batches.
    fn batch_scatters(&self) -> bool {
        self.pipeline.as_ref().is_none_or(|c| c.batch_scatters)
    }

    /// Fetch one relation from every worker, in worker order (the merge
    /// order must match the simulator's sequential 0..N loop so float
    /// accumulation is identical).
    ///
    /// Tagged schedule: the fetch requests are issued to *every* worker
    /// immediately and each reply is awaited by its request id; pending
    /// block completions settle into the ledger as their replies arrive
    /// instead of being drained up front, so workers flow from their
    /// in-flight blocks straight into the fetch with the request already
    /// queued.  FIFO-compat schedule (`async_gather = false`): drain the
    /// entire window first, as the positional protocol had to.
    fn fetch_all(&mut self, make: impl Fn(u64) -> Request) -> Result<Vec<Relation>, WorkerDead> {
        let outstanding: usize = self.pending_blocks.iter().map(|p| p.len()).sum();
        if !self.async_gather() {
            self.drain_pending_blocks()?;
        } else if outstanding > 0 {
            self.stats.gathers_overlapped += 1;
        }
        let mut ids = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            self.ship_applies(w)?;
            let id = self.fresh_request_id();
            self.send_to(w, make(id))?;
            ids.push(id);
        }
        let gather_start = Instant::now();
        let mut rels = Vec::with_capacity(self.workers);
        for (w, id) in ids.into_iter().enumerate() {
            rels.push(self.await_rel(w, id)?);
        }
        let micros = gather_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.metrics.gather_micros.record(micros);
        self.telemetry.event(
            "batch.gathered",
            vec![
                ("workers", self.workers.into()),
                ("overlapped", outstanding.into()),
                ("micros", micros.into()),
            ],
        );
        Ok(rels)
    }

    /// Full contents of a view, merged across all nodes holding a piece.
    /// In pipelined mode this commits the watermark first, so the read
    /// observes a consistent batch boundary: every issued batch completely,
    /// no batch partially.  With coalescing disabled the issued batches are
    /// exactly a prefix of the admitted stream; with coalescing enabled
    /// they are a prefix of a *commuted* schedule (same-relation deltas may
    /// have been ring-summed past later-admitted batches of other
    /// relations, preserving per-relation admission order — see the crate
    /// docs).  Admitted-but-queued batches require a
    /// [`ThreadedCluster::flush`] to become visible.
    pub fn view_contents(&mut self, name: &str) -> Relation {
        self.try_view_contents(name)
            .unwrap_or_else(|dead| panic!("{dead} (recovery unavailable)"))
    }

    /// Fallible [`ThreadedCluster::view_contents`]: recovers worker
    /// deaths per the [`FaultConfig`] (reads are idempotent, so the read
    /// is simply retried after recovery) and surfaces the typed error
    /// when recovery is disabled or exhausted.
    pub fn try_view_contents(&mut self, name: &str) -> Result<Relation, WorkerDead> {
        loop {
            match self.view_contents_inner(name) {
                Ok(rel) => return Ok(rel),
                Err(dead) => self.recover(dead)?,
            }
        }
    }

    fn view_contents_inner(&mut self, name: &str) -> Result<Relation, WorkerDead> {
        self.telemetry.poll_dump();
        // Under a latency target, overdue queued deltas are forced through
        // first: a read never observes data staler than the target.
        self.enforce_latency_target()?;
        self.commit_watermark()?;
        let schema = self.dplan.schema_of(name).unwrap_or_default();
        let mut out = Relation::new(schema);
        match self.dplan.location(name) {
            LocTag::Local => out.merge(&self.driver.snapshot(name)),
            LocTag::Replicated => {
                // Every worker holds an identical copy; read one.
                if self.workers > 0 {
                    let id = self.fresh_request_id();
                    self.send_to(
                        0,
                        Request::Snapshot {
                            id,
                            view: name.to_string(),
                        },
                    )?;
                    let r = self.await_rel(0, id)?;
                    out.merge(&r);
                }
            }
            _ => {
                for part in self.fetch_all(|id| Request::Snapshot {
                    id,
                    view: name.to_string(),
                })? {
                    out.merge(&part);
                }
            }
        }
        Ok(out)
    }

    /// Current contents of the top-level query view (watermark-consistent
    /// in pipelined mode, see [`ThreadedCluster::view_contents`]).
    pub fn query_result(&mut self) -> Relation {
        self.view_contents(&self.dplan.plan.top_view.clone())
    }

    /// Fallible [`ThreadedCluster::query_result`].
    pub fn try_query_result(&mut self) -> Result<Relation, WorkerDead> {
        self.try_view_contents(&self.dplan.plan.top_view.clone())
    }

    /// Process one batch of updates to `relation`.
    ///
    /// Epoch-synchronous mode: executes the batch to completion and returns
    /// **measured** execution statistics.  Pipelined mode: *admits* the
    /// batch (possibly ring-summing it into an already-queued delta) and
    /// returns admission statistics; execution overlaps subsequent
    /// admissions and is forced by [`ThreadedCluster::flush`] or any view
    /// read.
    pub fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        self.try_apply_batch(relation, batch)
            .unwrap_or_else(|dead| panic!("{dead} (recovery unavailable)"))
    }

    /// Fallible [`ThreadedCluster::apply_batch`]: recovers worker deaths
    /// per the [`FaultConfig`] and surfaces the typed [`WorkerDead`]
    /// when recovery is disabled or exhausted.  An interrupted batch is
    /// logged *before* any message is issued, so a successful recovery
    /// replays it to completion — the returned stats for a recovered
    /// batch carry only its input size, not measured execution numbers.
    pub fn try_apply_batch(
        &mut self,
        relation: &str,
        batch: &Relation,
    ) -> Result<BatchExecution, WorkerDead> {
        match self.pipeline {
            None => match self.execute_program(relation, batch) {
                Ok(stats) => Ok(stats),
                Err(dead) => {
                    self.recover(dead)?;
                    Ok(BatchExecution {
                        input_tuples: batch.len(),
                        ..Default::default()
                    })
                }
            },
            Some(_) => {
                let stats = self.admit(relation, batch);
                loop {
                    match self.drain_admission_bounds() {
                        Ok(()) => return Ok(stats),
                        Err(dead) => self.recover(dead)?,
                    }
                }
            }
        }
    }

    /// Pipelined admission: coalesce into the queue tail or enqueue.
    /// Driver-only (infallible); [`Driver::drain_admission_bounds`] then
    /// drives execution while the queue exceeds the admission capacity,
    /// the byte bound, or the latency target's staleness budget —
    /// keeping the fallible worker traffic out of the enqueue step so an
    /// admission is never double-counted across a recovery retry.
    ///
    /// Queued deltas are kept in the trigger's canonical schema (`relabel`
    /// is positional, so canonicalizing is one `add` per tuple), which
    /// makes coalescing a plain ring-sum into the tail and lets execution
    /// move the delta straight into the trigger with no further copy — the
    /// admission path costs the same tuple copies as the synchronous path.
    fn admit(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        let config = self.pipeline.clone().expect("admit requires pipeline mode");
        self.stream_start.get_or_insert_with(Instant::now);
        self.telemetry.poll_dump();
        self.stats.batches_admitted += 1;
        self.stats.tuples_admitted += batch.len();
        self.metrics.batches_admitted.inc();
        self.telemetry.event(
            "batch.admitted",
            vec![
                ("relation", relation.into()),
                ("tuples", batch.len().into()),
                ("queue_depth", self.queue.len().into()),
            ],
        );
        let stats = BatchExecution {
            input_tuples: batch.len(),
            ..Default::default()
        };
        // Batches to relations the plan has no trigger for are no-ops; do
        // not let them split a coalescing run.  (The bounds drain still
        // runs after a no-op admission, so already-queued deltas cannot
        // outlive the latency budget.)
        let Some(program) = self.programs.get(relation) else {
            return stats;
        };
        let canonical_schema = program.relation_schema.clone();
        self.totals.tuples += batch.len();

        // Merge into the *latest* queued delta of the same relation (not
        // just the queue tail).  Batched IVM triggers are exact for any
        // delta against any current state, so same-relation deltas commute
        // past other relations' batches: the flushed state is identical in
        // real arithmetic, and interleaved streams (where consecutive
        // same-relation batches are rare) still coalesce well.  Per-relation
        // admission order is preserved.
        let coalesce_bound = self.effective_coalesce_bound();
        self.stats.coalesce_bound = coalesce_bound;
        // Under a latency target, a queued delta that has already burned
        // half its staleness budget stops growing: coalescing into it would
        // keep resetting the work it carries while its oldest event ages.
        let stale_cutoff = config.latency_target.map(|t| t / 2);
        let coalesced = match self.queue.iter_mut().rev().find(|q| q.relation == relation) {
            Some(q)
                if coalesce_bound > 0
                    && q.delta.len() + batch.len() <= coalesce_bound
                    // Strict `<` so a zero budget vetoes coalescing
                    // unconditionally, independent of clock resolution.
                    && stale_cutoff.is_none_or(|cut| q.admitted_at.elapsed() < cut) =>
            {
                // The merged-into delta's root is still open (it closes at
                // execution), so the coalesce lands inside its window.
                let span = self.telemetry.begin_span(q.root.context(), "coalesce");
                let before = q.delta.serialized_size();
                q.delta.merge(batch);
                self.queue_bytes = self.queue_bytes - before + q.delta.serialized_size();
                self.telemetry.finish_span(span);
                true
            }
            _ => false,
        };
        if coalesced {
            self.stats.batches_coalesced += 1;
            self.metrics.batches_coalesced.inc();
            self.telemetry.event(
                "batch.coalesced",
                vec![
                    ("relation", relation.into()),
                    ("tuples", batch.len().into()),
                    ("bound", coalesce_bound.into()),
                ],
            );
        } else {
            // Same canonicalization as the synchronous path, so a
            // non-coalesced pipelined run is bit-identical to it.  The
            // batch root opens here, not at execution, so queue dwell time
            // is part of the batch's wall-clock window.
            let root = self.telemetry.begin_batch_root();
            let admit_span = self.telemetry.begin_span(root.context(), "admit");
            let canonical = relabel(batch, &canonical_schema);
            self.telemetry.finish_span(admit_span);
            self.queue_bytes += canonical.serialized_size();
            self.queue.push_back(QueuedDelta {
                relation: relation.to_string(),
                delta: canonical,
                admitted_at: Instant::now(),
                root,
            });
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        self.stats.max_queue_bytes = self.stats.max_queue_bytes.max(self.queue_bytes);
        self.metrics.queue_depth.set(self.queue.len() as u64);
        self.metrics.queue_bytes.set(self.queue_bytes as u64);
        stats
    }

    /// Enforce the admission bounds after an [`Driver::admit`]: byte
    /// budget, latency target and count capacity, oldest first.  This is
    /// the fallible half of pipelined admission (it issues worker
    /// traffic); retrying it after a recovery is safe because every bound
    /// is re-checked from current queue state.
    ///
    /// The staleness budget is enforced *after* enqueue (the synchronous
    /// order was before); equivalent because the coalescing guard already
    /// vetoes merging into any delta past half its budget, so an overdue
    /// delta can only have been enqueued — and FIFO execution order is
    /// unchanged.
    fn drain_admission_bounds(&mut self) -> Result<(), WorkerDead> {
        let Some(config) = self.pipeline.clone() else {
            return Ok(());
        };
        // Backpressure, oldest first.  Byte bound: shed queued work until
        // the footprint fits (a single oversized delta executes
        // immediately, emptying the queue).
        while config.admit_bytes > 0 && self.queue_bytes > config.admit_bytes {
            self.telemetry.event(
                "backpressure.bytes",
                vec![
                    ("queue_bytes", self.queue_bytes.into()),
                    ("bound", config.admit_bytes.into()),
                ],
            );
            self.execute_queue_front()?;
            self.stats.executions_forced_by_bytes += 1;
        }
        // Latency target: any delta older than the staleness budget is
        // overdue — force it (and anything queued ahead of it already ran).
        self.enforce_latency_target()?;
        // Count capacity, as before.
        while self.queue.len() > config.admit_capacity {
            self.execute_queue_front()?;
        }
        self.metrics.queue_depth.set(self.queue.len() as u64);
        self.metrics.queue_bytes.set(self.queue_bytes as u64);
        Ok(())
    }

    /// Epoch-synchronous execution of one maintenance program over a batch
    /// (canonicalizes the batch's schema, then delegates).
    fn execute_program(
        &mut self,
        relation: &str,
        batch: &Relation,
    ) -> Result<BatchExecution, WorkerDead> {
        let Some(program) = self.programs.get(relation) else {
            return Ok(BatchExecution {
                input_tuples: batch.len(),
                ..Default::default()
            });
        };
        let root = self.telemetry.begin_batch_root();
        let admit_span = self.telemetry.begin_span(root.context(), "admit");
        let canonical = relabel(batch, &program.relation_schema);
        self.telemetry.finish_span(admit_span);
        self.execute_canonical(relation, canonical, false, Some(root))
    }

    /// Run one maintenance program over an owned, canonical-schema delta.
    ///
    /// `pipelined = false` is the epoch-synchronous schedule: every
    /// distributed block is barriered before the next starts and trailing
    /// scatters are drained, so the returned stats carry the batch's full
    /// measured wall-clock latency.  `pipelined = true` issues distributed
    /// blocks without collecting their completions (up to the in-flight
    /// window) and leaves trailing scatters un-barriered; completion is
    /// deferred to the next fetch, watermark commit or window bound.
    fn execute_canonical(
        &mut self,
        relation: &str,
        delta: Relation,
        pipelined: bool,
        root: Option<ActiveSpan>,
    ) -> Result<BatchExecution, WorkerDead> {
        let wall_start = Instant::now();
        let mut stats = BatchExecution {
            input_tuples: delta.len(),
            ..Default::default()
        };
        if !self.programs.contains_key(relation) {
            self.telemetry.finish_span(root);
            return Ok(stats);
        }
        // Replayed batches (recovery) arrive rootless: open a fresh root so
        // the replay gets its own tree rather than grafting onto the
        // interrupted one.
        let root = root.unwrap_or_else(|| self.telemetry.begin_batch_root());
        self.trace_scope = root.context();
        // Log *before* issuing any message: if a worker dies mid-batch,
        // recovery restores the last checkpoint and replays this delta to
        // completion (the log is in canonical schema, so replay re-enters
        // here directly).
        if self.fault.is_some() {
            self.replay_log.push((relation.to_string(), delta.clone()));
        }
        self.metrics.batches_executed.inc();
        self.metrics.batch_tuples.record(stats.input_tuples as u64);
        self.batch_max_instructions = 0;
        let inflight_blocks = self
            .pipeline
            .as_ref()
            .map(|c| c.inflight_blocks)
            .unwrap_or(0);

        let mut deltas = HashMap::new();
        deltas.insert(relation.to_string(), delta);
        let deltas = Arc::new(deltas);
        let delta_name = format!("Δ{relation}");

        let mut driver_counters = EvalCounters::default();
        for block_idx in 0..self.programs[relation].blocks.len() {
            let (mode, statements, needs_delta) = {
                let b = &self.programs[relation].blocks[block_idx];
                (b.mode, b.statements.clone(), b.needs_delta)
            };
            // Blocks that never read the batch (the usual case after the
            // compiler rewrote delta references into scattered temps) are
            // broadcast with a shared empty map, so byte-counting
            // transports don't ship the delta once per worker for nothing.
            let block_deltas = if needs_delta {
                deltas.clone()
            } else {
                self.empty_deltas.clone()
            };
            match mode {
                StmtMode::Local => {
                    for stmt in statements.iter() {
                        match &stmt.kind {
                            DistStmtKind::Compute(_) => {
                                self.driver.run_compute(stmt, &deltas, &mut driver_counters);
                            }
                            DistStmtKind::Transform { kind, source } => {
                                let bytes =
                                    self.run_transform(stmt, kind, source, &delta_name, &deltas)?;
                                stats.bytes_shuffled += bytes;
                            }
                        }
                    }
                }
                StmtMode::Distributed => {
                    if pipelined {
                        // Opportunistically settle completions that have
                        // already arrived, then enforce the in-flight
                        // window — blocking only when a worker's ledger is
                        // genuinely full.
                        for w in 0..self.workers {
                            self.settle_ready(w)?;
                            while self.pending_blocks[w].len() >= inflight_blocks.max(1) {
                                self.await_one_completion(w)?;
                            }
                        }
                        for w in 0..self.workers {
                            self.ship_applies(w)?;
                            let id = self.fresh_request_id();
                            self.send_to(
                                w,
                                Request::RunBlock {
                                    id,
                                    ctx: self.trace_scope,
                                    statements: statements.clone(),
                                    deltas: block_deltas.clone(),
                                },
                            )?;
                            self.pending_blocks[w].insert(id);
                        }
                    } else {
                        // One epoch: broadcast the block, barrier on the
                        // tagged completions.
                        for w in 0..self.workers {
                            self.ship_applies(w)?;
                            let id = self.fresh_request_id();
                            self.send_to(
                                w,
                                Request::RunBlock {
                                    id,
                                    ctx: self.trace_scope,
                                    statements: statements.clone(),
                                    deltas: block_deltas.clone(),
                                },
                            )?;
                            self.pending_blocks[w].insert(id);
                        }
                        self.drain_pending_blocks()?;
                        stats.max_worker_instructions = stats
                            .max_worker_instructions
                            .max(self.batch_max_instructions);
                        // The block barrier also drained any earlier applies.
                        self.applies_in_flight = false;
                    }
                }
            }
        }

        // A program ending in scatter/repart leaves shards buffered: ship
        // them now as the batch's trailing `ApplyMany` per worker.  The
        // synchronous schedule additionally barriers so the measured
        // latency covers shard installation; the pipelined schedule leaves
        // them in flight (command FIFO protects the next batch) and the
        // watermark commit drains them before any read.
        self.ship_all_applies()?;
        if !pipelined && self.applies_in_flight {
            self.barrier_applies()?;
        }

        let program = &self.programs[relation];
        stats.driver_instructions = driver_counters.instructions();
        stats.stages = program.stages;
        stats.jobs = program.jobs;
        stats.bytes_per_worker = stats.bytes_shuffled as f64 / self.workers as f64;
        // Measured, not modelled.  Synchronous mode: the batch's end-to-end
        // wall-clock.  Pipelined mode: the driver-side issue time only (the
        // stream's end-to-end wall-clock is folded into the totals at
        // `flush`).
        stats.wall_secs = wall_start.elapsed().as_secs_f64();
        stats.latency_secs = stats.wall_secs;
        // The root closes here even in pipelined mode (where trailing
        // applies are still in flight): the window is the driver's issue
        // span, and post-close stages (watermark commit, fan-out) record
        // under `trace_scope` as clipped children.
        self.telemetry.finish_span(Some(root));

        self.issued += 1;
        self.metrics
            .ledger_outstanding
            .set(self.pending_blocks.iter().map(|p| p.len() as u64).sum());
        self.telemetry.event(
            "batch.executed",
            vec![
                ("relation", relation.into()),
                ("tuples", stats.input_tuples.into()),
                ("pipelined", u64::from(pipelined).into()),
                ("wall_secs", stats.wall_secs.into()),
            ],
        );
        if pipelined {
            // Stream tuples were counted at admission; stream wall-clock is
            // folded in at `flush`.
            self.stats.batches_executed += 1;
            self.stats.tuples_executed += stats.input_tuples;
        } else {
            self.watermark = self.issued;
            self.totals.latency_secs += stats.latency_secs;
            self.totals.tuples += stats.input_tuples;
        }
        self.totals.batches += 1;
        self.totals.bytes_shuffled += stats.bytes_shuffled;
        self.totals.latencies.push(stats.latency_secs);
        // Checkpoint epoch: every `checkpoint_every` issued batches,
        // canonicalize the whole cluster and store a recovery cut.  Taken
        // *after* the batch's own accounting so a checkpointed batch never
        // rides the replay log past its own checkpoint.
        if self.fault.as_ref().is_some_and(|c| {
            c.checkpoint_every > 0 && self.issued.is_multiple_of(c.checkpoint_every)
        }) {
            self.take_checkpoint()?;
        }
        Ok(stats)
    }

    /// Execute a transformer statement; returns the bytes moved.
    fn run_transform(
        &mut self,
        stmt: &DistStatement,
        kind: &Transform,
        source: &str,
        delta_name: &str,
        deltas: &HashMap<String, Relation>,
    ) -> Result<usize, WorkerDead> {
        match kind {
            Transform::Scatter(pf) => {
                let src: Relation = if source == delta_name {
                    deltas.values().next().cloned().unwrap_or_default()
                } else {
                    self.driver.read(source)
                };
                let src = relabel(&src, &stmt.target_schema);
                self.scatter(pf, &src, stmt)
            }
            Transform::Repart(pf) => {
                let ctx = self.trace_scope;
                let span = self.telemetry.begin_span(ctx, "gather");
                let mut collected = Relation::new(stmt.target_schema.clone());
                for part in self.fetch_all(|id| Request::Fetch {
                    id,
                    ctx,
                    name: source.to_string(),
                })? {
                    collected.merge(&relabel(&part, &stmt.target_schema));
                }
                self.telemetry.finish_span(span);
                let moved = collected.serialized_size();
                self.scatter(pf, &collected, stmt)?;
                Ok(moved + collected.serialized_size())
            }
            Transform::Gather => {
                let ctx = self.trace_scope;
                let span = self.telemetry.begin_span(ctx, "gather");
                let mut collected = Relation::new(stmt.target_schema.clone());
                for part in self.fetch_all(|id| Request::Fetch {
                    id,
                    ctx,
                    name: source.to_string(),
                })? {
                    collected.merge(&relabel(&part, &stmt.target_schema));
                }
                self.telemetry.finish_span(span);
                let bytes = collected.serialized_size();
                self.driver.apply(stmt, collected);
                Ok(bytes)
            }
        }
    }

    /// Buffer per-worker shards of a driver-held relation for shipment.
    /// Empty shards are buffered too: a `SetTo` scatter must clear stale
    /// buffers on workers that receive no rows this batch.  Shards ride in
    /// the worker's next `ApplyMany` (shipped before its next command, or
    /// at batch end); with [`PipelineConfig::batch_scatters`] disabled each
    /// scatter statement ships immediately as its own message, reproducing
    /// the positional protocol's traffic.
    fn scatter(
        &mut self,
        pf: &PartitionFn,
        src: &Relation,
        stmt: &DistStatement,
    ) -> Result<usize, WorkerDead> {
        let span = self
            .telemetry
            .begin_span(self.trace_scope, "scatter.encode");
        let (shards, bytes) = partition_shards(pf, src, stmt, self.workers);
        self.telemetry.finish_span(span);
        let stmt = Arc::new(stmt.clone());
        for (w, shard) in shards.into_iter().enumerate() {
            self.pending_applies[w].push((stmt.clone(), shard));
        }
        if !self.batch_scatters() {
            self.ship_all_applies()?;
        }
        Ok(bytes)
    }

    /// Install (or clear) the fault-tolerance configuration.  Must be set
    /// before the first batch: checkpoints are cuts of the issue counter,
    /// and a config installed mid-stream would have no checkpoint covering
    /// the batches already issued.
    pub fn set_fault_config(&mut self, fault: Option<FaultConfig>) {
        debug_assert_eq!(
            self.issued, 0,
            "fault config must be installed before any batch is issued"
        );
        self.fault = fault;
        self.ckpt = None;
        self.replay_log.clear();
        self.recoveries = 0;
    }

    /// The active fault-tolerance configuration, if any.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.fault.as_ref()
    }

    /// Number of worker-death recoveries performed so far.
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// Take a recovery checkpoint: drain in-flight work to the watermark,
    /// canonicalize every node (the epoch barrier that makes a later
    /// restore bit-identical to the surviving nodes' state — see
    /// `Database::canonicalize`), and store a full cluster cut.
    ///
    /// [`RecoveryMode::Checkpoint`] ships each worker's state back in its
    /// `Checkpoint` reply; [`RecoveryMode::Rescatter`] keeps the round
    /// stats-only and instead gathers each distributed view's partitions
    /// over the read path (temps restore to empty — every program scatters
    /// into its exchange buffers before reading them, so a post-watermark
    /// cut never needs them).
    fn take_checkpoint(&mut self) -> Result<(), WorkerDead> {
        let ship = matches!(
            self.fault.as_ref().map(|c| c.mode),
            Some(RecoveryMode::Checkpoint)
        );
        self.commit_watermark()?;
        self.driver.canonicalize();
        let mut ids = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            self.ship_applies(w)?;
            let id = self.fresh_request_id();
            self.send_to(w, Request::Checkpoint { id, ship })?;
            ids.push(id);
        }
        let mut snaps = Vec::with_capacity(self.workers);
        for (w, id) in ids.into_iter().enumerate() {
            snaps.push(self.await_checkpoint(w, id)?);
        }
        if !ship {
            let mut views: Vec<String> = self
                .dplan
                .plan
                .views
                .iter()
                .map(|v| v.name.clone())
                .filter(|v| !matches!(self.dplan.location(v), LocTag::Local))
                .collect();
            views.sort();
            for v in &views {
                let parts = self.fetch_all(|id| Request::Snapshot {
                    id,
                    view: v.clone(),
                })?;
                for (w, part) in parts.into_iter().enumerate() {
                    snaps[w].views.push((v.clone(), part));
                }
            }
        }
        self.ckpt = Some(CheckpointState {
            issued: self.issued,
            driver: self.driver.snapshot_state(),
            workers: snaps,
        });
        self.replay_log.clear();
        self.metrics.recovery_checkpoints.inc();
        self.telemetry.event(
            "checkpoint.taken",
            vec![
                ("issued", self.issued.into()),
                ("ship", u64::from(ship).into()),
            ],
        );
        Ok(())
    }

    /// Recover from a worker death, or surface it as the typed error when
    /// recovery is disabled (`fault == None`) or the recovery budget is
    /// exhausted.  Loops because a recovery attempt can itself hit another
    /// dead worker (cascading failures): each new death consumes one more
    /// attempt from [`FaultConfig::max_recoveries`].
    fn recover(&mut self, dead: WorkerDead) -> Result<(), WorkerDead> {
        let mut cause = dead;
        loop {
            let Some(cfg) = &self.fault else {
                return Err(cause);
            };
            if self.recoveries >= cfg.max_recoveries {
                return Err(cause);
            }
            self.recoveries += 1;
            self.metrics.recovery_attempts.inc();
            self.metrics.worker_declared_dead.inc();
            self.telemetry.event(
                "worker.dead",
                vec![
                    ("worker", cause.index.into()),
                    ("reason", cause.reason.clone().into()),
                ],
            );
            match self.recover_once(cause.index) {
                Ok(()) => return Ok(()),
                Err(next) => cause = next,
            }
        }
    }

    /// One recovery attempt: respawn the dead worker, reset the driver's
    /// ledgers, restore *every* worker (and the driver node) to the last
    /// checkpoint cut — restoring only the respawned one would leave the
    /// survivors ahead of the cut — and replay the logged deltas.  With no
    /// checkpoint yet, the cut is the empty cluster and the log holds the
    /// whole stream since `set_fault_config`.
    fn recover_once(&mut self, dead_worker: usize) -> Result<(), WorkerDead> {
        self.transport.respawn(dead_worker)?;
        self.metrics.worker_respawned.inc();
        self.telemetry
            .event("worker.respawned", vec![("worker", dead_worker.into())]);

        // Outstanding ids and buffered shards belong to the abandoned
        // epoch: the restore wipes their effects, and replay re-issues
        // them under fresh ids.
        for w in 0..self.workers {
            self.pending_blocks[w].clear();
            self.inbox[w].clear();
            self.pending_applies[w].clear();
        }
        self.applies_in_flight = false;

        let (ckpt_issued, driver_snap, worker_snaps) = match &self.ckpt {
            Some(ckpt) => (ckpt.issued, ckpt.driver.clone(), ckpt.workers.clone()),
            None => (
                0,
                WorkerSnapshot::default(),
                vec![WorkerSnapshot::default(); self.workers],
            ),
        };
        self.driver.restore_state(&driver_snap);
        for (w, snap) in worker_snaps.into_iter().enumerate() {
            let id = self.fresh_request_id();
            self.send_to(
                w,
                Request::Restore {
                    id,
                    snapshot: Box::new(snap),
                },
            )?;
            // Drain whatever stale replies the abandoned epoch left on the
            // wire; command FIFO means the Restore's own Ack is the first
            // reply that post-dates the reset.
            loop {
                match self.transport.recv(w)? {
                    Reply::Ack { id: rid } if rid == id => break,
                    _ => {}
                }
            }
        }
        self.metrics
            .recovery_restored_workers
            .add(self.workers as u64);
        self.issued = ckpt_issued;
        self.watermark = ckpt_issued;

        let log = std::mem::take(&mut self.replay_log);
        self.metrics.recovery_replayed.add(log.len() as u64);
        self.telemetry.event(
            "recovery.replay",
            vec![
                ("worker", dead_worker.into()),
                ("from_issued", ckpt_issued.into()),
                ("batches", log.len().into()),
            ],
        );
        for (rel, delta) in log {
            // Epoch-synchronous replay: re-enters the log (and re-takes
            // checkpoints) exactly as the original schedule did, under a
            // fresh root span per replayed batch.
            self.execute_canonical(&rel, delta, false, None)?;
        }
        Ok(())
    }
}

/// Delta capture (the subscription layer's backend hook): enabling capture
/// broadcasts a `SetCapture` to every worker and arms the driver node's own
/// log; draining commits the watermark first, so a capture batch never
/// precedes its batches' watermark commit, then collects every node's
/// statement log over the `TakeCaptured` protocol round.  Part order
/// mirrors `view_contents` exactly (driver for `Local`, worker 0 for
/// `Replicated`, workers 0..N for distributed views), which is what makes
/// client-side replay bit-identical to a snapshot read.
impl<T: Transport> Driver<T> {
    /// Wait for the `Captured` reply tagged `id` from worker `w` (mirrors
    /// [`Driver::await_checkpoint`]).
    fn await_captured(
        &mut self,
        w: usize,
        id: u64,
    ) -> Result<Vec<(String, StmtOp, Relation)>, WorkerDead> {
        loop {
            self.settle_completions(w);
            if let Some(pos) = self.inbox[w]
                .iter()
                .position(|r| matches!(r, Reply::Captured { id: rid, .. } if *rid == id))
            {
                let Reply::Captured { ops, .. } = self.inbox[w].swap_remove(pos) else {
                    unreachable!()
                };
                return Ok(ops);
            }
            self.recv_one(w)?;
        }
    }

    /// Arm (or re-arm) capture on every node for the current capture set,
    /// discarding any pending logs.
    fn broadcast_set_capture(&mut self) -> Result<(), WorkerDead> {
        let views = self.capture_views.clone();
        self.driver.set_capture(views.iter().cloned());
        let mut ids = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            self.ship_applies(w)?;
            let id = self.fresh_request_id();
            self.send_to(
                w,
                Request::SetCapture {
                    id,
                    views: views.clone(),
                },
            )?;
            ids.push(id);
        }
        for (w, id) in ids.into_iter().enumerate() {
            self.await_ack(w, id)?;
        }
        Ok(())
    }

    fn take_captured_inner(&mut self) -> Result<CaptureBatch, WorkerDead> {
        // Watermark consistency: every queued delta executes and every
        // in-flight apply settles before the logs are drained, so the
        // batch covers exactly the committed prefix.
        while !self.queue.is_empty() {
            self.execute_queue_front()?;
        }
        self.commit_watermark()?;
        let views = self.capture_views.clone();
        if self.capture_epoch != self.recoveries {
            // A recovery cycle replayed the stream since the last drain:
            // the logs hold replayed (duplicate) entries and a respawned
            // worker's log may be missing entirely.  Discard the logs,
            // re-arm capture, and hand subscribers a full-snapshot resync
            // (one `SetTo` per part) — no gaps, no duplicates.
            self.capture_epoch = self.recoveries;
            self.broadcast_set_capture()?;
            let mut assembled = Vec::with_capacity(views.len());
            for name in &views {
                let parts: Vec<Vec<(StmtOp, Relation)>> = match self.dplan.location(name) {
                    LocTag::Local => vec![vec![(StmtOp::SetTo, self.driver.snapshot(name))]],
                    LocTag::Replicated => {
                        let id = self.fresh_request_id();
                        self.send_to(
                            0,
                            Request::Snapshot {
                                id,
                                view: name.clone(),
                            },
                        )?;
                        vec![vec![(StmtOp::SetTo, self.await_rel(0, id)?)]]
                    }
                    _ => self
                        .fetch_all(|id| Request::Snapshot {
                            id,
                            view: name.clone(),
                        })?
                        .into_iter()
                        .map(|part| vec![(StmtOp::SetTo, part)])
                        .collect(),
                };
                assembled.push(CapturedView {
                    name: name.clone(),
                    parts,
                });
            }
            return Ok(CaptureBatch {
                watermark: self.watermark,
                resync: true,
                views: assembled,
            });
        }
        let driver_log = self.driver.take_captured();
        let mut ids = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            let id = self.fresh_request_id();
            self.send_to(w, Request::TakeCaptured { id })?;
            ids.push(id);
        }
        let mut worker_logs = Vec::with_capacity(self.workers);
        for (w, id) in ids.into_iter().enumerate() {
            worker_logs.push(self.await_captured(w, id)?);
        }
        let assembled = assemble_views(
            &views,
            |name| self.dplan.location(name),
            driver_log,
            worker_logs,
        );
        Ok(CaptureBatch {
            watermark: self.watermark,
            resync: false,
            views: assembled,
        })
    }

    /// Fallible [`DeltaCapture::take_captured`]: surfaces an unrecovered
    /// worker death instead of panicking.
    pub fn try_take_captured(&mut self) -> Result<CaptureBatch, WorkerDead> {
        loop {
            match self.take_captured_inner() {
                Ok(batch) => return Ok(batch),
                Err(dead) => self.recover(dead)?,
            }
        }
    }
}

impl<T: Transport> DeltaCapture for Driver<T> {
    fn enable_capture(&mut self, views: &[String]) {
        self.capture_views = views.to_vec();
        self.capture_epoch = self.recoveries;
        loop {
            match self.broadcast_set_capture() {
                Ok(()) => return,
                Err(dead) => {
                    if let Err(dead) = self.recover(dead) {
                        panic!("{dead} (recovery unavailable)");
                    }
                }
            }
        }
    }

    fn take_captured(&mut self) -> CaptureBatch {
        self.try_take_captured()
            .unwrap_or_else(|dead| panic!("{dead} (recovery unavailable)"))
    }
}

impl<T: Transport> Backend for Driver<T> {
    fn backend_name(&self) -> &'static str {
        let names = self.transport.names();
        match &self.pipeline {
            None => names.sync,
            Some(c) if c.async_gather => names.pipelined,
            Some(_) => names.fifo,
        }
    }

    fn plan(&self) -> &DistributedPlan {
        Driver::plan(self)
    }

    fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        Driver::apply_batch(self, relation, batch)
    }

    fn flush(&mut self) {
        Driver::flush(self);
    }

    fn view_contents(&mut self, name: &str) -> Relation {
        Driver::view_contents(self, name)
    }

    fn totals(&self) -> &ClusterTotals {
        &self.totals
    }

    fn pipeline_stats(&self) -> Option<PipelineStats> {
        if self.is_pipelined() {
            Some(self.stats.clone())
        } else {
            None
        }
    }

    fn telemetry(&self) -> Option<Arc<Telemetry>> {
        Some(self.telemetry.clone())
    }

    fn trace_scope(&self) -> SpanContext {
        self.trace_scope
    }
}

impl<T: Transport> Driver<T> {
    /// The telemetry sink this driver records into.  For the TCP backend
    /// this is the transport's own registry (wire counters and scheduler
    /// counters share one namespace); the threaded backend owns a fresh
    /// one.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Wait for the `Stats` reply tagged `id` from worker `w`, settling
    /// any block completions that arrive ahead of it (mirrors
    /// [`Driver::await_rel`]).
    fn await_stats(&mut self, w: usize, id: u64) -> Result<WorkerStatsSnapshot, WorkerDead> {
        loop {
            self.settle_completions(w);
            if let Some(pos) = self.inbox[w]
                .iter()
                .position(|r| matches!(r, Reply::Stats { id: rid, .. } if *rid == id))
            {
                let Reply::Stats {
                    snapshot, spans, ..
                } = self.inbox[w].swap_remove(pos)
                else {
                    unreachable!()
                };
                // Worker spans ride the Stats round; stitch them into the
                // driver's trace store (and stage histograms) on arrival.
                self.telemetry.ingest_spans(spans);
                return Ok(snapshot);
            }
            self.recv_one(w)?;
        }
    }

    /// Gather every worker's counter snapshot over the protocol's `Stats`
    /// message, in worker order (tagged schedule: all requests issued
    /// first, replies awaited by id).
    fn fetch_worker_stats(&mut self) -> Result<Vec<WorkerStatsSnapshot>, WorkerDead> {
        let mut ids = Vec::with_capacity(self.workers);
        for w in 0..self.workers {
            self.ship_applies(w)?;
            let id = self.fresh_request_id();
            self.send_to(w, Request::Stats { id })?;
            ids.push(id);
        }
        let mut snaps = Vec::with_capacity(self.workers);
        for (w, id) in ids.into_iter().enumerate() {
            snaps.push(self.await_stats(w, id)?);
        }
        Ok(snaps)
    }

    /// Flush the pipeline and return the deterministic cross-backend
    /// telemetry totals (see [`TelemetryTotals`]): driver-side message
    /// counts captured *before* the stats gather itself, plus every
    /// worker's counters collected over the protocol.
    pub fn telemetry_totals(&mut self) -> TelemetryTotals {
        self.try_telemetry_totals()
            .unwrap_or_else(|dead| panic!("{dead} (recovery unavailable)"))
    }

    /// Fallible [`Driver::telemetry_totals`]: recovers worker deaths per
    /// the [`FaultConfig`], surfacing [`WorkerDead`] when recovery is
    /// disabled or exhausted.
    pub fn try_telemetry_totals(&mut self) -> Result<TelemetryTotals, WorkerDead> {
        loop {
            match self.telemetry_totals_inner() {
                Ok(totals) => return Ok(totals),
                Err(dead) => self.recover(dead)?,
            }
        }
    }

    fn telemetry_totals_inner(&mut self) -> Result<TelemetryTotals, WorkerDead> {
        self.flush_inner()?;
        // Capture the driver-side counters before the `Stats` round so
        // repeated calls still agree across backends: each call adds
        // exactly `workers` requests and `workers` replies.
        let messages_sent = self.metrics.requests_total.get();
        let replies_received = self.metrics.replies_total.get();
        let per_worker = self.fetch_worker_stats()?;
        let mut totals = TelemetryTotals {
            messages_sent,
            replies_received,
            per_worker,
            ..Default::default()
        };
        for snap in &totals.per_worker {
            totals.instructions += snap.stats.instructions;
            totals.blocks_run += snap.stats.blocks_run;
            totals.statements += snap.stats.statements;
            totals.tuples_applied += snap.stats.tuples_applied;
        }
        Ok(totals)
    }

    /// Flush, gather worker counters, and return a [`MetricsSnapshot`] of
    /// the whole registry with the aggregated `worker.*` counters folded
    /// in as absolute values (idempotent across repeated calls — the
    /// worker counters are cumulative on the worker, not re-summed here).
    pub fn metrics_snapshot(&mut self) -> MetricsSnapshot {
        let totals = self.telemetry_totals();
        let mut snap = self.telemetry.snapshot();
        snap.set_counter("worker.instructions", totals.instructions);
        snap.set_counter("worker.blocks_run", totals.blocks_run);
        snap.set_counter("worker.statements", totals.statements);
        snap.set_counter("worker.tuples_applied", totals.tuples_applied);
        snap
    }

    /// Flush, drain every worker's finished spans over the `Stats` round,
    /// and return the complete span store: one stitched tree per executed
    /// batch (driver track 0, workers on tracks 1..=N).  Structure —
    /// `(trace, track, id, parent, name)` — is a deterministic function of
    /// the admission sequence and identical across transports; durations
    /// are wall-clock.
    pub fn trace_spans(&mut self) -> Vec<SpanRecord> {
        self.telemetry_totals();
        self.telemetry.trace_spans()
    }

    /// Critical-path attribution for the most recent batch's trace (see
    /// [`hotdog_telemetry::critical_path`]): walks the longest dependency
    /// chain through the stitched tree and attributes the root's
    /// wall-clock to stages.  `None` before the first executed batch.
    pub fn critical_path(&mut self) -> Option<CriticalPath> {
        let spans = self.trace_spans();
        let trace = self.telemetry.tracer().latest_trace();
        if trace == 0 {
            return None;
        }
        hotdog_telemetry::critical_path(&spans, trace)
    }

    /// Abandon every admitted-but-unissued batch *without executing it*,
    /// shut the worker threads down, and return the final pipeline stats
    /// (with [`PipelineStats::batches_abandoned`] counting the dropped
    /// queue).  This is the observable form of the `Drop` path; use
    /// [`ThreadedCluster::flush`] first if queued batches must be applied.
    pub fn close(mut self) -> PipelineStats {
        self.abandon_queue();
        self.shutdown_workers();
        self.stats.clone()
    }

    /// Drop queued deltas without executing them (no maintenance program
    /// runs, no worker messages are sent).
    fn abandon_queue(&mut self) {
        self.stats.batches_abandoned += self.queue.len();
        self.queue.clear();
        self.queue_bytes = 0;
    }

    /// Stop the workers via the transport.  Workers only need their
    /// command channels drained; any uncollected block replies are
    /// discarded with the reply channels.  Idempotent.
    fn shutdown_workers(&mut self) {
        self.transport.shutdown();
    }
}

impl<T: Transport> Drop for Driver<T> {
    fn drop(&mut self) {
        // Dropping without a `flush` abandons queued batches — they must
        // never execute from a destructor (a drop during unwinding must not
        // run maintenance programs or block on workers beyond joining).
        self.abandon_queue();
        // Workers may still hold finished spans from batches whose Stats
        // round never ran; drain them (best-effort — a dead worker just
        // loses its spans) so the exported trace file is complete.
        if Telemetry::trace_export_enabled() {
            let _ = self.fetch_worker_stats();
        }
        self.shutdown_workers();
        // After shutdown, so worker-teardown flight events make the flush.
        self.telemetry.flush_on_drop();
        self.telemetry.flush_trace_on_drop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple;
    use hotdog_distributed::{
        compile_distributed, Cluster, ClusterConfig, OptLevel, PartitioningSpec,
    };
    use hotdog_ivm::compile_recursive;

    fn example_query() -> Expr {
        sum(
            ["B"],
            join_all([
                rel("R", ["OK", "B"]),
                rel("S", ["B", "CK"]),
                rel("T", ["CK", "D"]),
            ]),
        )
    }

    fn example_dplan(opt: OptLevel) -> DistributedPlan {
        let plan = compile_recursive("Q", &example_query());
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        compile_distributed(&plan, &spec, opt)
    }

    /// A plan whose top view stays *distributed* (a plain join, no final
    /// aggregate): its triggers end with a `Distributed` block rather than
    /// a gather, so block completions outlive the trigger that issued them
    /// — the shape that exercises the request-id ledger across batches.
    fn join_dplan(opt: OptLevel) -> DistributedPlan {
        let q = join_all([
            rel("R", ["OK", "B"]),
            rel("S", ["B", "CK"]),
            rel("T", ["CK", "D"]),
        ]);
        let plan = compile_recursive("J", &q);
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        compile_distributed(&plan, &spec, opt)
    }

    fn batches() -> Vec<(&'static str, Relation)> {
        vec![
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["OK", "B"]),
                    (0..40i64).map(|i| (tuple![i, i % 5], 1.0)),
                ),
            ),
            (
                "S",
                Relation::from_pairs(
                    Schema::new(["B", "CK"]),
                    (0..20i64).map(|i| (tuple![i % 5, i], 1.0)),
                ),
            ),
            (
                "T",
                Relation::from_pairs(
                    Schema::new(["CK", "D"]),
                    (0..20i64).map(|i| (tuple![i, i * 10], 1.0)),
                ),
            ),
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["OK", "B"]),
                    vec![(tuple![1, 1], -1.0), (tuple![100, 2], 1.0)],
                ),
            ),
        ]
    }

    #[test]
    fn threaded_matches_simulator_at_every_opt_level() {
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            for workers in [1usize, 2, 5] {
                let dplan = example_dplan(opt);
                let mut sim = Cluster::new(dplan.clone(), ClusterConfig::with_workers(workers));
                let mut real = ThreadedCluster::new(dplan, workers);
                for (rel, batch) in batches() {
                    sim.apply_batch(rel, &batch);
                    real.apply_batch(rel, &batch);
                }
                assert_eq!(
                    real.query_result().sorted(),
                    sim.query_result().sorted(),
                    "threaded diverged from simulator at {opt:?} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn pipelined_matches_synchronous_everywhere() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            for workers in [1usize, 2, 5] {
                let mut sync = ThreadedCluster::new(example_dplan(opt), workers);
                let mut piped = ThreadedCluster::pipelined(
                    example_dplan(opt),
                    workers,
                    PipelineConfig::default(),
                );
                for (rel, batch) in batches() {
                    sync.apply_batch(rel, &batch);
                    piped.apply_batch(rel, &batch);
                }
                piped.flush();
                assert_eq!(
                    piped.query_result().checksum(),
                    sync.query_result().checksum(),
                    "pipelined diverged at {opt:?} with {workers} workers"
                );
                let view_names: Vec<String> = sync
                    .plan()
                    .plan
                    .views
                    .iter()
                    .map(|v| v.name.clone())
                    .collect();
                for v in view_names {
                    assert_eq!(
                        piped.view_contents(&v).checksum(),
                        sync.view_contents(&v).checksum(),
                        "view {v} diverged at {opt:?} with {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn coalescing_merges_consecutive_same_relation_batches() {
        let mut piped = ThreadedCluster::pipelined(
            example_dplan(OptLevel::O3),
            2,
            PipelineConfig {
                coalesce_tuples: 1_000,
                admit_capacity: 64,
                ..Default::default()
            },
        );
        // 16 single-tuple R batches then one S batch: the R's coalesce into
        // one queued delta, so only two program executions trigger.
        for i in 0..16i64 {
            piped.apply_batch(
                "R",
                &Relation::from_pairs(Schema::new(["OK", "B"]), vec![(tuple![i, i % 5], 1.0)]),
            );
        }
        piped.apply_batch(
            "S",
            &Relation::from_pairs(Schema::new(["B", "CK"]), vec![(tuple![0, 0], 1.0)]),
        );
        piped.flush();
        assert_eq!(piped.stats.batches_admitted, 17);
        assert_eq!(piped.stats.batches_coalesced, 15);
        assert_eq!(piped.stats.batches_executed, 2);
        assert_eq!(piped.stats.tuples_admitted, 17);
        // Ring-summed delta carries all 16 R tuples in one trigger run.
        assert_eq!(piped.stats.tuples_executed, 17);
    }

    #[test]
    fn coalescing_ring_sum_cancels_opposing_deltas() {
        let mut piped = ThreadedCluster::pipelined(
            example_dplan(OptLevel::O3),
            2,
            PipelineConfig::with_coalesce(1_000),
        );
        piped.apply_batch(
            "R",
            &Relation::from_pairs(Schema::new(["OK", "B"]), vec![(tuple![7, 1], 1.0)]),
        );
        piped.apply_batch(
            "R",
            &Relation::from_pairs(Schema::new(["OK", "B"]), vec![(tuple![7, 1], -1.0)]),
        );
        piped.flush();
        assert_eq!(piped.stats.batches_coalesced, 1);
        // The insert and the delete annihilate before ever triggering.
        assert_eq!(piped.stats.tuples_executed, 0);
        assert!(piped.query_result().is_empty());
    }

    #[test]
    fn watermark_exposes_consistent_prefix_without_flush() {
        let config = PipelineConfig {
            coalesce_tuples: 0, // keep every batch distinct
            admit_capacity: 1,  // force eager execution
            inflight_blocks: 2,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 3, config);
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
        let all = batches();
        for (rel, batch) in &all {
            piped.apply_batch(rel, batch);
            sync.apply_batch(rel, batch);
        }
        // Without a flush the read still observes a consistent batch
        // boundary: `admit_capacity = 1` guarantees at least all but one
        // batch has been issued.
        assert!(piped.watermark() == 0); // not yet committed by any read
        let partial = piped.query_result();
        let committed = piped.watermark();
        assert!(
            committed >= (all.len() as u64 - 1),
            "eager execution should have issued all but the queued tail"
        );
        // Re-running the same prefix synchronously reproduces the read.
        let mut prefix = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
        for (rel, batch) in all.iter().take(committed as usize) {
            prefix.apply_batch(rel, batch);
        }
        assert_eq!(partial.checksum(), prefix.query_result().checksum());
        piped.flush();
        assert_eq!(piped.watermark(), all.len() as u64);
        assert_eq!(
            piped.query_result().checksum(),
            sync.query_result().checksum()
        );
    }

    #[test]
    fn coalesced_reads_observe_commuted_prefix() {
        // Coalescing merges a later same-relation batch into its queued
        // delta, commuting it past other relations' queued batches; a
        // pre-flush read must observe exactly that commuted boundary.
        let config = PipelineConfig {
            coalesce_tuples: 1_000,
            admit_capacity: 2,
            inflight_blocks: 2,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 3, config);
        let all = batches(); // [R1, S1, T1, R2]
        let (r1, s1, t1, r2) = (&all[0].1, &all[1].1, &all[2].1, &all[3].1);
        piped.apply_batch("R", r1); // queue [R1]
        piped.apply_batch("S", s1); // queue [R1, S1]
        piped.apply_batch("R", r2); // merges into R1's entry, ahead of S1
        piped.apply_batch("T", t1); // queue exceeds capacity -> issue R1⊕R2
        assert_eq!(piped.stats.batches_coalesced, 1);
        let read = piped.query_result();
        assert_eq!(piped.watermark(), 1, "exactly the coalesced R delta issued");
        // The committed boundary is the commuted prefix [R1 ⊕ R2]: both R
        // batches visible (R2 admitted *after* S1), S1 and T1 not yet.
        let mut reference = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
        reference.apply_batch("R", &r1.union(r2));
        assert_eq!(read.checksum(), reference.query_result().checksum());
        let view_names: Vec<String> = reference
            .plan()
            .plan
            .views
            .iter()
            .map(|v| v.name.clone())
            .collect();
        for v in &view_names {
            assert_eq!(
                piped.view_contents(v).checksum(),
                reference.view_contents(v).checksum(),
                "view {v} is not at the commuted boundary"
            );
        }
        // After a flush the end state matches the admitted order exactly
        // (integer multiplicities, so coalescing is bit-exact here).
        piped.flush();
        let mut full = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
        for (rel, batch) in &all {
            full.apply_batch(rel, batch);
        }
        for v in &view_names {
            assert_eq!(
                piped.view_contents(v).checksum(),
                full.view_contents(v).checksum(),
                "flushed view {v} diverged"
            );
        }
    }

    #[test]
    fn tiny_inflight_window_still_correct() {
        for inflight in [1usize, 2] {
            let config = PipelineConfig {
                coalesce_tuples: 64,
                admit_capacity: 2,
                inflight_blocks: inflight,
                ..Default::default()
            };
            let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 4, config);
            let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 4);
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
                sync.apply_batch(rel, &batch);
            }
            piped.flush();
            assert_eq!(
                piped.query_result().checksum(),
                sync.query_result().checksum(),
                "inflight window {inflight} diverged"
            );
        }
    }

    #[test]
    fn measured_stats_are_populated() {
        let dplan = example_dplan(OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 3);
        let mut stages = 0;
        for (rel, batch) in batches() {
            let stats = cluster.apply_batch(rel, &batch);
            assert!(stats.latency_secs > 0.0, "latency must be measured");
            assert_eq!(stats.latency_secs, stats.wall_secs);
            stages += stats.stages;
        }
        assert!(stages > 0);
        assert!(cluster.totals.batches == batches().len());
        assert!(cluster.totals.bytes_shuffled > 0);
        assert!(cluster.totals.throughput() > 0.0);
    }

    #[test]
    fn pipelined_totals_report_stream_throughput() {
        let mut piped =
            ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, PipelineConfig::default());
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        piped.flush();
        assert!(piped.totals.latency_secs > 0.0);
        assert!(piped.totals.throughput() > 0.0);
        assert_eq!(
            piped.totals.tuples,
            batches().iter().map(|(_, b)| b.len()).sum::<usize>()
        );
        // Flushing twice must not double-count stream time.
        let t = piped.totals.latency_secs;
        piped.flush();
        assert_eq!(piped.totals.latency_secs, t);
    }

    #[test]
    fn intermediate_view_contents_match_simulator() {
        let dplan = example_dplan(OptLevel::O3);
        let view_names: Vec<String> = dplan.plan.views.iter().map(|v| v.name.clone()).collect();
        let mut sim = Cluster::new(dplan.clone(), ClusterConfig::with_workers(4));
        let mut real = ThreadedCluster::new(dplan, 4);
        for (rel, batch) in batches() {
            sim.apply_batch(rel, &batch);
            real.apply_batch(rel, &batch);
        }
        for v in view_names {
            assert_eq!(
                real.view_contents(&v).sorted(),
                sim.view_contents(&v).sorted(),
                "view {v} diverged"
            );
        }
    }

    #[test]
    fn unknown_relation_batches_are_ignored() {
        let dplan = example_dplan(OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 2);
        let stats = cluster.apply_batch(
            "UNRELATED",
            &Relation::from_pairs(Schema::new(["X"]), vec![(tuple![1], 1.0)]),
        );
        assert_eq!(stats.stages, 0);
        assert!(cluster.query_result().is_empty());
    }

    #[test]
    fn adaptive_mode_matches_synchronous_state() {
        // The controller only re-times trigger boundaries; view state must
        // match the synchronous schedule exactly (integer multiplicities
        // here, so even coalesced runs are bit-exact).
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 2);
        let mut adaptive =
            ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, PipelineConfig::adaptive());
        for (rel, batch) in batches() {
            sync.apply_batch(rel, &batch);
            adaptive.apply_batch(rel, &batch);
        }
        adaptive.flush();
        assert_eq!(
            adaptive.query_result().checksum(),
            sync.query_result().checksum(),
            "adaptive coalescing changed view state"
        );
        assert!(adaptive.stats.coalesce_bound > 0);
    }

    #[test]
    fn adaptive_controller_is_fed_by_the_stream() {
        // Enough triggers to close probe windows: tiny probe window, eager
        // execution so every admission triggers.
        let config = PipelineConfig {
            adaptive: Some(AdaptiveConfig {
                probe_triggers: 1,
                initial_tuples: 64,
                ..Default::default()
            }),
            admit_capacity: 0, // execute every admitted batch immediately
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        for _ in 0..4 {
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
            }
        }
        piped.flush();
        assert!(
            piped.stats.bound_adjustments + piped.stats.bound_reversals > 0,
            "controller never moved: {:?}",
            piped.stats
        );
    }

    #[test]
    fn byte_bound_backpressures_the_admission_queue() {
        let admit_bytes = 600usize;
        let config = PipelineConfig {
            coalesce_tuples: 0, // keep batches distinct so the queue grows
            admit_capacity: 1_000,
            ..Default::default()
        }
        .with_admit_bytes(admit_bytes);
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 2);
        for _ in 0..4 {
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
                sync.apply_batch(rel, &batch);
                assert!(
                    piped.queued_bytes() <= admit_bytes,
                    "queue footprint {} exceeds the byte bound",
                    piped.queued_bytes()
                );
            }
        }
        assert!(
            piped.stats.executions_forced_by_bytes > 0,
            "the byte bound never engaged: {:?}",
            piped.stats
        );
        piped.flush();
        assert_eq!(piped.queued_bytes(), 0);
        assert_eq!(
            piped.query_result().checksum(),
            sync.query_result().checksum(),
            "byte backpressure changed view state"
        );
    }

    #[test]
    fn latency_target_bounds_watermark_lag() {
        // A zero staleness budget makes every queued delta overdue at the
        // next admission: the queue can never hold more than the batch
        // currently being admitted, so reads are never more than one batch
        // stale — the latency end of the latency/throughput tradeoff.
        let config = PipelineConfig {
            coalesce_tuples: 1_000_000,
            admit_capacity: 1_000,
            ..Default::default()
        }
        .with_latency_target(Duration::ZERO);
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
            assert!(
                piped.queued_batches() <= 1,
                "latency target must keep the queue drained"
            );
        }
        assert!(
            piped.stats.executions_forced_by_latency > 0,
            "the latency target never engaged: {:?}",
            piped.stats
        );
        // Zero budget also vetoes coalescing into aged deltas: nothing may
        // ring-sum into a delta that is already overdue.
        assert_eq!(piped.stats.batches_coalesced, 0);
        piped.flush();

        // An unbounded budget must never force executions.
        let lax = PipelineConfig {
            coalesce_tuples: 1_000_000,
            admit_capacity: 1_000,
            ..Default::default()
        }
        .with_latency_target(Duration::from_secs(3_600));
        let mut relaxed = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, lax);
        for (rel, batch) in batches() {
            relaxed.apply_batch(rel, &batch);
        }
        assert_eq!(relaxed.stats.executions_forced_by_latency, 0);
        relaxed.flush();
    }

    #[test]
    fn reads_enforce_the_latency_target() {
        // A finite budget, then a sleep that guarantees anything still
        // queued is overdue: the next *read* must force it through — no
        // flush, no further admissions.  (A scheduler pause may legally
        // force some deltas during admission already, so only the
        // post-read state is asserted exactly.)
        let config = PipelineConfig {
            coalesce_tuples: 0, // keep every batch distinct
            admit_capacity: 1_000,
            ..Default::default()
        }
        .with_latency_target(Duration::from_millis(100));
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        assert!(piped.queued_batches() <= batches().len());
        std::thread::sleep(Duration::from_millis(150));
        let read = piped.query_result();
        assert_eq!(
            piped.queued_batches(),
            0,
            "the read must flush overdue deltas"
        );
        // Every execution was latency-forced, whether the admission loop or
        // the read drove it.
        assert!(piped.stats.executions_forced_by_latency >= 1);
        assert_eq!(
            piped.stats.executions_forced_by_latency,
            piped.stats.batches_executed
        );
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 2);
        for (rel, batch) in batches() {
            sync.apply_batch(rel, &batch);
        }
        assert_eq!(read.checksum(), sync.query_result().checksum());
    }

    #[test]
    fn close_abandons_queued_batches_without_executing() {
        let config = PipelineConfig {
            coalesce_tuples: 0, // keep every admitted batch distinct
            admit_capacity: 1_000,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 4, config);
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        assert_eq!(piped.queued_batches(), batches().len());
        assert_eq!(piped.stats.batches_executed, 0);
        let final_stats = piped.close(); // must not hang, execute, or leak
        assert_eq!(final_stats.batches_abandoned, batches().len());
        assert_eq!(
            final_stats.batches_executed, 0,
            "close() must not execute queued deltas"
        );

        // Same invariant on the plain Drop path, with replies still in
        // flight: issued-but-uncollected block completions plus a queued
        // tail must shut down cleanly.
        let config = PipelineConfig {
            coalesce_tuples: 0,
            admit_capacity: 2, // forces some eager (pipelined) executions
            inflight_blocks: 8,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 4, config);
        for _ in 0..3 {
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
            }
        }
        assert!(piped.queued_batches() > 0);
        drop(piped); // no hang, no panic, queued deltas never execute
    }

    #[test]
    fn fifo_compat_matches_tagged_bit_for_bit() {
        // The FIFO-compat schedule (drain the window before every fetch,
        // one scatter message per statement) and the tagged schedule run
        // the same trigger sequence over the same per-worker command
        // order, so their states must be bit-identical.
        for opt in [OptLevel::O0, OptLevel::O3] {
            let mut tagged = ThreadedCluster::pipelined(
                example_dplan(opt),
                3,
                PipelineConfig::with_coalesce(64),
            );
            let mut fifo = ThreadedCluster::pipelined(
                example_dplan(opt),
                3,
                PipelineConfig {
                    coalesce_tuples: 64,
                    ..PipelineConfig::fifo_compat()
                },
            );
            for (rel, batch) in batches() {
                tagged.apply_batch(rel, &batch);
                fifo.apply_batch(rel, &batch);
            }
            tagged.flush();
            fifo.flush();
            assert_eq!(
                tagged.query_result().checksum(),
                fifo.query_result().checksum(),
                "fifo-compat diverged from tagged at {opt:?}"
            );
            // The FIFO arm never overlaps a gather and never batches.
            assert_eq!(fifo.stats.gathers_overlapped, 0);
            assert_eq!(fifo.stats.scatter_messages_saved, 0);
        }
    }

    #[test]
    fn async_gather_overlaps_inflight_blocks() {
        // Eager per-batch execution with a roomy window: by the time batch
        // k's repart/gather fetches, blocks of earlier batches are still
        // pending, so the tagged schedule must record overlapped gathers.
        let config = PipelineConfig {
            coalesce_tuples: 0,
            admit_capacity: 0,
            inflight_blocks: 8,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        for _ in 0..3 {
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
            }
        }
        piped.flush();
        assert!(
            piped.stats.gathers_overlapped > 0,
            "no gather ever overlapped in-flight blocks: {:?}",
            piped.stats
        );
    }

    #[test]
    fn scatter_batching_reduces_messages() {
        // O0 keeps transformer statements unfused, so consecutive scatters
        // buffer into one ApplyMany per worker and the saved-message
        // counter must engage.
        let mut piped =
            ThreadedCluster::pipelined(example_dplan(OptLevel::O0), 2, PipelineConfig::default());
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        piped.flush();
        assert!(piped.stats.scatter_messages_sent > 0);
        assert!(
            piped.stats.scatter_messages_saved > 0,
            "batching saved no messages: {:?}",
            piped.stats
        );
    }

    #[test]
    fn flush_drains_reply_ledger_before_close() {
        // Eager pipelined execution with a wide window leaves block
        // completions unsettled in the request-id ledger; `flush` must
        // settle all of them (and barrier trailing scatters) so a
        // subsequent close/Drop abandons nothing and owes workers nothing.
        let config = PipelineConfig {
            coalesce_tuples: 0,
            admit_capacity: 1,
            inflight_blocks: 16,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(join_dplan(OptLevel::O3), 4, config);
        for _ in 0..3 {
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
            }
        }
        assert!(
            piped.outstanding_replies() > 0,
            "expected unsettled completions before the flush"
        );
        piped.flush();
        assert_eq!(
            piped.outstanding_replies(),
            0,
            "flush must drain the request-id ledger"
        );
        assert_eq!(piped.queued_batches(), 0);
        let final_stats = piped.close();
        assert_eq!(
            final_stats.batches_abandoned, 0,
            "a flushed pipeline abandons nothing at close"
        );
    }

    #[test]
    fn shuffled_replies_cannot_corrupt_the_watermark() {
        // Chaos arm of the tagged-reply protocol: the driver's inbox is
        // deterministically shuffled on every arrival, so a worker's
        // answer to batch k+1's block can be *consumed* before batch k's
        // gather fetch.  The ledger matches by request id, so watermarks,
        // pre-flush reads and final state must all be unaffected.
        for seed in [1u64, 0xC0FFEE, 977] {
            let config = PipelineConfig {
                coalesce_tuples: 0, // keep every batch a distinct trigger
                admit_capacity: 1,  // eager execution, gathers mid-stream
                inflight_blocks: 4,
                ..Default::default()
            }
            .with_shuffled_replies(seed);
            let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 3, config);
            let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
            let all = batches();
            for (rel, batch) in &all {
                piped.apply_batch(rel, batch);
                sync.apply_batch(rel, batch);
            }
            // Pre-flush read: must still observe a consistent batch
            // boundary, reproducible by re-running the issued prefix.
            let partial = piped.query_result();
            let committed = piped.watermark();
            assert!(
                committed >= all.len() as u64 - 1,
                "eager execution should have issued all but the queued tail"
            );
            let mut prefix = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
            for (rel, batch) in all.iter().take(committed as usize) {
                prefix.apply_batch(rel, batch);
            }
            assert_eq!(
                partial.checksum(),
                prefix.query_result().checksum(),
                "shuffled replies corrupted the pre-flush watermark (seed {seed})"
            );
            piped.flush();
            assert_eq!(piped.watermark(), all.len() as u64);
            assert_eq!(piped.outstanding_replies(), 0);
            assert_eq!(
                piped.query_result().checksum(),
                sync.query_result().checksum(),
                "shuffled replies changed the final state (seed {seed})"
            );
        }
    }

    #[test]
    fn workers_shut_down_cleanly_on_drop() {
        let dplan = example_dplan(OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 8);
        for (rel, batch) in batches() {
            cluster.apply_batch(rel, &batch);
        }
        drop(cluster); // must not hang or panic

        // Pipelined clusters with work still in flight must also shut down.
        let mut piped =
            ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 4, PipelineConfig::default());
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        drop(piped); // queued + in-flight work abandoned, no hang
    }
}
