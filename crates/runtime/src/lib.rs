//! # hotdog-runtime
//!
//! The real execution backend for compiled [`DistributedPlan`]s: a
//! thread-per-worker runtime that actually runs the distributed maintenance
//! programs in parallel, in contrast to the single-threaded simulated
//! [`Cluster`](hotdog_distributed::Cluster) which executes the same
//! programs sequentially and *models* time.
//!
//! Architecture (mirroring the paper's driver/worker deployment):
//!
//! * every worker is one OS thread owning a [`WorkerState`] — its
//!   hash-partitioned shard of the distributed views plus per-batch
//!   exchange buffers — and a command channel;
//! * the driver (the caller's thread) owns the driver-resident views and
//!   runs each [`TriggerProgram`]: `Local` blocks execute on the driver,
//!   transformer statements move relations between driver and workers
//!   (scatter / repartition / gather), and every `Distributed` block is
//!   broadcast to all workers — the mpsc channels play the role of the
//!   cluster fabric;
//! * routing reuses the exact `PartitionFn` shard assignment of the
//!   simulator (via [`hotdog_distributed::partition_shards`]), and workers
//!   run statements through the same [`WorkerState`] interpreter, so both
//!   backends produce identical view contents — only the *time* differs:
//!   [`BatchExecution::latency_secs`] here is measured wall-clock, not a
//!   cost model.
//!
//! ## Execution modes
//!
//! [`ThreadedCluster::new`] builds the **epoch-synchronous** runtime: each
//! [`ThreadedCluster::apply_batch`] executes the batch to completion,
//! barriering after every distributed block, exactly one batch in the
//! system at a time.
//!
//! [`ThreadedCluster::pipelined`] builds the **pipelined** runtime for
//! sustained update streams (the workload of the paper's batch-size
//! sweeps).  Three mechanisms amortize per-batch overhead:
//!
//! 1. **Admission queue with delta coalescing** — `apply_batch` only
//!    *admits* a batch.  An admitted batch is ring-summed into the latest
//!    queued delta of the same base relation (up to
//!    [`PipelineConfig::coalesce_tuples`]; batched IVM triggers are exact
//!    for any delta, so same-relation deltas commute past other
//!    relations' batches), so a stream of tiny batches triggers the
//!    maintenance program far fewer times — the paper's batching thesis
//!    applied at the runtime layer.  Coalescing preserves the maintained
//!    state exactly in real arithmetic; it only re-associates float
//!    additions (disable it for bit-identical runs).  The bound is either
//!    a static threshold or chosen online by the self-tuning
//!    [`adaptive::CoalesceController`], which hill-climbs the paper's
//!    concave throughput-vs-batch-size curve (Fig. 7) from measured
//!    per-trigger overhead vs. marginal per-tuple cost.  Admission is
//!    additionally bounded by serialized bytes
//!    ([`PipelineConfig::admit_bytes`]) and by a staleness budget
//!    ([`PipelineConfig::latency_target`]) that forces overdue deltas
//!    through and stops coalescing into half-expired ones — the
//!    streaming latency/throughput tradeoff as a config knob.
//! 2. **Bounded in-flight window** — when a queued batch is executed, the
//!    driver broadcasts each distributed block and moves on *without
//!    collecting the workers' completion replies*; per-channel FIFO order
//!    keeps every worker's statement sequence identical to the synchronous
//!    schedule.  Up to [`PipelineConfig::inflight_blocks`] block replies
//!    per worker may be uncollected, so the driver runs `Local` blocks (and
//!    scatters) of batch *k+1* while workers still execute the
//!    `Distributed` blocks of batch *k*.  Replies are collected lazily — at
//!    the window bound, before any data is fetched back (repartition /
//!    gather), and at watermark commits.
//! 3. **Watermark tracking** — the cluster counts admitted, issued and
//!    committed batches.  Reads ([`ThreadedCluster::view_contents`],
//!    [`ThreadedCluster::query_result`]) first commit the watermark (drain
//!    outstanding replies and barrier trailing scatters), so they always
//!    observe a *consistent batch boundary*: every issued batch
//!    completely, no batch partially.  With coalescing disabled, the
//!    issued batches are exactly a prefix of the admitted stream; with
//!    coalescing enabled they form a prefix of a commuted schedule in
//!    which per-relation admission order is preserved but a same-relation
//!    delta may have been ring-summed past later-admitted batches of
//!    *other* relations (the flushed end state is identical either way).
//!    Queued-but-unissued batches become visible after
//!    [`ThreadedCluster::flush`], which drains the admission queue and
//!    finalizes stream timing.
//!
//! [`BatchExecution::latency_secs`]: hotdog_distributed::BatchExecution

#![forbid(unsafe_code)]

pub mod adaptive;

pub use adaptive::{AdaptiveConfig, CoalesceController};
pub use hotdog_distributed::PipelineStats;

use hotdog_algebra::eval::EvalCounters;
use hotdog_algebra::relation::Relation;
use hotdog_distributed::{
    partition_shards, Backend, BatchExecution, ClusterTotals, DistStatement, DistStmtKind,
    DistributedPlan, LocTag, PartitionFn, StmtMode, Transform, TriggerProgram, WorkerState,
};
use hotdog_exec::relabel;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Commands the driver sends to a worker thread.  Per-channel FIFO order is
/// the synchronization contract: an `Apply` enqueued before a `RunBlock` is
/// guaranteed to be installed before the block executes, and a `Fetch`
/// enqueued after a `RunBlock` observes the block's writes.
enum Request {
    /// Execute one distributed block over this worker's shard and report
    /// the interpreter work performed.
    RunBlock {
        statements: Arc<Vec<DistStatement>>,
        deltas: Arc<HashMap<String, Relation>>,
    },
    /// Install a scattered shard into the statement's target.
    Apply {
        stmt: Arc<DistStatement>,
        shard: Relation,
    },
    /// Send back an exchange buffer (or this worker's view partition).
    Fetch { name: String },
    /// Send back this worker's partition of a materialized view.
    Snapshot { view: String },
    /// Acknowledge that everything enqueued so far has been processed
    /// (drains trailing `Apply`s so measured batch latency includes them).
    Barrier,
    /// Exit the worker loop.
    Shutdown,
}

/// Worker responses (one per `RunBlock`/`Fetch`/`Snapshot`/`Barrier`
/// request).
enum Reply {
    Ran { instructions: u64 },
    Rel(Relation),
    Ack,
}

fn worker_loop(mut state: WorkerState, rx: Receiver<Request>, tx: Sender<Reply>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Request::RunBlock { statements, deltas } => {
                let mut counters = EvalCounters::default();
                for stmt in statements.iter() {
                    state.run_compute(stmt, &deltas, &mut counters);
                }
                let _ = tx.send(Reply::Ran {
                    instructions: counters.instructions(),
                });
            }
            Request::Apply { stmt, shard } => state.apply(&stmt, shard),
            Request::Fetch { name } => {
                let _ = tx.send(Reply::Rel(state.read(&name)));
            }
            Request::Snapshot { view } => {
                let _ = tx.send(Reply::Rel(state.snapshot(&view)));
            }
            Request::Barrier => {
                let _ = tx.send(Reply::Ack);
            }
            Request::Shutdown => break,
        }
    }
}

/// A distributed block with its statements shared once, so per-batch
/// broadcasts are an `Arc` bump instead of a deep clone.
struct SharedBlock {
    mode: StmtMode,
    statements: Arc<Vec<DistStatement>>,
}

struct SharedProgram {
    relation_schema: hotdog_algebra::schema::Schema,
    blocks: Vec<SharedBlock>,
    stages: usize,
    jobs: usize,
}

fn share_program(p: &TriggerProgram) -> SharedProgram {
    SharedProgram {
        relation_schema: p.relation_schema.clone(),
        blocks: p
            .blocks
            .iter()
            .map(|b| SharedBlock {
                mode: b.mode,
                statements: Arc::new(b.statements.clone()),
            })
            .collect(),
        stages: p.stages(),
        jobs: p.jobs(),
    }
}

/// Configuration of the pipelined ingestion path
/// ([`ThreadedCluster::pipelined`]).
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Ring-sum each admitted batch into the latest queued delta of the
    /// same relation until that delta would exceed this many tuples.  `0`
    /// disables coalescing (making pipelined execution bit-identical to
    /// the synchronous schedule; with coalescing the state is identical in
    /// real arithmetic but float additions associate differently).
    /// Ignored when [`PipelineConfig::adaptive`] is set: the controller
    /// then chooses the bound online.
    pub coalesce_tuples: usize,
    /// Maximum admitted-but-unissued batches held in the admission queue;
    /// admitting beyond it drives execution of the queue front.
    pub admit_capacity: usize,
    /// Byte-bounded backpressure: maximum serialized footprint of the
    /// admission queue (queued deltas, via the O(1)
    /// [`Relation::serialized_size`] accounting).  Admitting beyond it
    /// drives execution of the queue front until the footprint fits.
    /// `0` disables the bound.
    pub admit_bytes: usize,
    /// Latency-target mode: an upper bound on how stale a queued batch may
    /// get before it is forced through.  Enforced at every admission *and*
    /// at every read: whenever the oldest queued delta has been waiting
    /// longer than this, the queue front is executed (counted in
    /// [`PipelineStats::executions_forced_by_latency`]), and a queued
    /// delta older than *half* the target stops accepting coalesced
    /// merges — trading coalescing throughput for bounded watermark lag
    /// (a read never observes data staler than the target).  There is no
    /// background timer: on a stream that goes fully quiescent (no
    /// admissions, no reads), queued deltas wait until the next
    /// admission, read or [`ThreadedCluster::flush`].  `None` leaves
    /// staleness unbounded (pure-throughput mode).
    pub latency_target: Option<Duration>,
    /// Self-tuning coalescing: measure per-trigger overhead vs. marginal
    /// per-tuple cost online and hill-climb the coalescing bound over the
    /// paper's concave throughput curve (see [`adaptive`]).  Overrides
    /// [`PipelineConfig::coalesce_tuples`].
    pub adaptive: Option<AdaptiveConfig>,
    /// Maximum uncollected distributed-block completions per worker before
    /// the driver must collect the oldest one.
    pub inflight_blocks: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            coalesce_tuples: 4096,
            admit_capacity: 16,
            admit_bytes: 0,
            latency_target: None,
            adaptive: None,
            inflight_blocks: 4,
        }
    }
}

impl PipelineConfig {
    /// Config with a specific static coalescing threshold (in tuples).
    pub fn with_coalesce(coalesce_tuples: usize) -> Self {
        PipelineConfig {
            coalesce_tuples,
            ..Default::default()
        }
    }

    /// Config with the default self-tuning coalescing policy.
    pub fn adaptive() -> Self {
        PipelineConfig {
            adaptive: Some(AdaptiveConfig::default()),
            ..Default::default()
        }
    }

    /// Builder-style latency target (see
    /// [`PipelineConfig::latency_target`]).
    pub fn with_latency_target(mut self, target: Duration) -> Self {
        self.latency_target = Some(target);
        self
    }

    /// Builder-style byte bound on the admission queue (see
    /// [`PipelineConfig::admit_bytes`]).
    pub fn with_admit_bytes(mut self, admit_bytes: usize) -> Self {
        self.admit_bytes = admit_bytes;
        self
    }
}

/// One admitted-but-unissued coalesced delta in the admission queue.
struct QueuedDelta {
    relation: String,
    delta: Relation,
    /// When the *oldest* event folded into this delta was admitted: the
    /// staleness clock the latency target is enforced against.
    admitted_at: Instant,
}

/// One driver + N worker threads executing a distributed plan for real.
///
/// Public surface matches the simulated
/// [`Cluster`](hotdog_distributed::Cluster) (`apply_batch`,
/// `view_contents`, `query_result`, `plan`, `totals`) so the two backends
/// are drop-in interchangeable; [`BatchExecution`] fields that model time in
/// the simulator hold *measured* wall-clock values here.  See the crate
/// docs for the epoch-synchronous vs. pipelined execution modes.
pub struct ThreadedCluster {
    /// Number of worker threads.
    pub workers: usize,
    dplan: DistributedPlan,
    driver: WorkerState,
    programs: HashMap<String, SharedProgram>,
    requests: Vec<Sender<Request>>,
    replies: Vec<Receiver<Reply>>,
    handles: Vec<JoinHandle<()>>,
    /// Whether `Apply` messages have been enqueued with no barrier behind
    /// them yet (a trailing scatter must be drained before worker state is
    /// read, or before a synchronous batch's wall clock stops).
    applies_in_flight: bool,
    /// `Some` iff this cluster runs the pipelined ingestion path.
    pipeline: Option<PipelineConfig>,
    /// Self-tuning coalescing controller (`Some` iff
    /// [`PipelineConfig::adaptive`] is set).
    controller: Option<CoalesceController>,
    /// Admitted-but-unissued coalesced delta batches.
    queue: VecDeque<QueuedDelta>,
    /// Serialized footprint of `queue` (incrementally maintained; the
    /// byte-bounded backpressure reads it on every admission).
    queue_bytes: usize,
    /// Per worker: distributed-block completions not yet collected.
    outstanding: Vec<usize>,
    /// Batches whose execution has been fully issued to driver and workers.
    issued: u64,
    /// Batches guaranteed visible to reads (issued + drained + barriered).
    watermark: u64,
    /// First admission since the last `flush` (stream wall-clock origin).
    stream_start: Option<Instant>,
    /// Pipelined-ingestion counters (all zero in epoch-synchronous mode).
    pub stats: PipelineStats,
    /// Accumulated measured totals (same shape as the simulator's).
    pub totals: ClusterTotals,
}

impl ThreadedCluster {
    /// Spawn `workers` worker threads with empty view partitions, in
    /// epoch-synchronous mode (one batch in the system at a time).
    pub fn new(dplan: DistributedPlan, workers: usize) -> Self {
        Self::build(dplan, workers, None)
    }

    /// Spawn `workers` worker threads with empty view partitions, in
    /// pipelined mode: `apply_batch` admits into a coalescing queue and
    /// execution overlaps driver and worker work within the configured
    /// in-flight window.  Call [`ThreadedCluster::flush`] (or read a view)
    /// to force admitted batches through.
    pub fn pipelined(dplan: DistributedPlan, workers: usize, config: PipelineConfig) -> Self {
        Self::build(dplan, workers, Some(config))
    }

    fn build(dplan: DistributedPlan, workers: usize, pipeline: Option<PipelineConfig>) -> Self {
        assert!(workers > 0);
        let controller = pipeline
            .as_ref()
            .and_then(|c| c.adaptive.clone())
            .map(CoalesceController::new);
        let driver = WorkerState::for_plan(&dplan.plan);
        let programs = dplan
            .programs
            .iter()
            .map(|p| (p.relation.clone(), share_program(p)))
            .collect();
        let mut requests = Vec::with_capacity(workers);
        let mut replies = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let state = WorkerState::for_plan(&dplan.plan);
            let (req_tx, req_rx) = channel();
            let (rep_tx, rep_rx) = channel();
            let handle = thread::Builder::new()
                .name(format!("hotdog-worker-{i}"))
                .spawn(move || worker_loop(state, req_rx, rep_tx))
                .expect("failed to spawn worker thread");
            requests.push(req_tx);
            replies.push(rep_rx);
            handles.push(handle);
        }
        let mut cluster = ThreadedCluster {
            workers,
            dplan,
            driver,
            programs,
            requests,
            replies,
            handles,
            applies_in_flight: false,
            pipeline,
            controller,
            queue: VecDeque::new(),
            queue_bytes: 0,
            outstanding: vec![0; workers],
            issued: 0,
            watermark: 0,
            stream_start: None,
            stats: PipelineStats::default(),
            totals: ClusterTotals::default(),
        };
        cluster.stats.coalesce_bound = cluster.effective_coalesce_bound();
        cluster
    }

    /// The compiled distributed plan this cluster runs.
    pub fn plan(&self) -> &DistributedPlan {
        &self.dplan
    }

    /// Whether this cluster runs the pipelined ingestion path.
    pub fn is_pipelined(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Admitted-but-unissued batches currently held in the admission queue
    /// (post-coalescing).  The latency-target mode bounds how long any of
    /// them may wait.
    pub fn queued_batches(&self) -> usize {
        self.queue.len()
    }

    /// Serialized footprint of the admission queue in bytes (what the
    /// `admit_bytes` backpressure bound is enforced against).
    pub fn queued_bytes(&self) -> usize {
        self.queue_bytes
    }

    /// Number of batches guaranteed visible to reads: reads observe
    /// exactly this many *issued* batches (post-coalescing), a prefix of
    /// the admitted stream when coalescing is off and of its commuted
    /// schedule otherwise (see [`ThreadedCluster::view_contents`]).
    /// Advanced by reads and by `flush`.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Collect `n` outstanding block completions from worker `w`, folding
    /// the reported interpreter work into the pipeline stats.
    fn collect_from(&mut self, w: usize, n: usize) {
        for _ in 0..n {
            match self.replies[w].recv().expect("worker thread died") {
                Reply::Ran { instructions } => {
                    self.stats.max_worker_instructions =
                        self.stats.max_worker_instructions.max(instructions);
                }
                _ => unreachable!("expected run reply"),
            }
            self.outstanding[w] -= 1;
        }
    }

    /// Collect every outstanding block completion (all workers).
    fn drain_outstanding(&mut self) {
        for w in 0..self.workers {
            let n = self.outstanding[w];
            self.collect_from(w, n);
        }
    }

    /// Commit the watermark: after this, every issued batch is fully
    /// applied on every node and safe to read.
    fn commit_watermark(&mut self) {
        self.drain_outstanding();
        if self.applies_in_flight {
            for tx in &self.requests {
                tx.send(Request::Barrier).expect("worker thread died");
            }
            for rx in &self.replies {
                match rx.recv().expect("worker thread died") {
                    Reply::Ack => {}
                    _ => unreachable!("expected barrier ack"),
                }
            }
            self.applies_in_flight = false;
        }
        self.watermark = self.issued;
    }

    /// The coalescing bound currently in force: the adaptive controller's
    /// latest choice, or the static `coalesce_tuples` threshold.
    fn effective_coalesce_bound(&self) -> usize {
        match (&self.controller, &self.pipeline) {
            (Some(ctl), _) => ctl.bound(),
            (None, Some(cfg)) => cfg.coalesce_tuples,
            (None, None) => 0,
        }
    }

    /// Execute every queued delta that has outlived the latency target
    /// (no-op without one).  Runs at every admission and before every
    /// read, so neither the queue nor a reader can outwait the staleness
    /// budget — but there is no background timer, so a fully quiescent
    /// stream holds its queue until the next admission, read or flush.
    fn enforce_latency_target(&mut self) {
        let Some(target) = self.pipeline.as_ref().and_then(|c| c.latency_target) else {
            return;
        };
        // `>=` so a zero budget forces unconditionally, independent of
        // clock resolution (a coarse monotonic clock can report elapsed()
        // == 0 across two admissions).
        while self
            .queue
            .front()
            .is_some_and(|q| q.admitted_at.elapsed() >= target)
        {
            self.execute_queue_front();
            self.stats.executions_forced_by_latency += 1;
        }
    }

    /// Pop and execute the queue front, feeding the measured trigger back
    /// to the adaptive controller.
    fn execute_queue_front(&mut self) {
        let Some(entry) = self.queue.pop_front() else {
            return;
        };
        self.queue_bytes -= entry.delta.serialized_size();
        let stats = self.execute_canonical(&entry.relation, entry.delta, true);
        if let Some(ctl) = self.controller.as_mut() {
            ctl.observe(stats.input_tuples, stats.wall_secs);
            self.stats.coalesce_bound = ctl.bound();
            self.stats.bound_reversals = ctl.reversals;
            self.stats.bound_adjustments = ctl.adjustments;
        }
    }

    /// Execute every queued batch, commit the watermark and fold the stream
    /// wall-clock into the totals.  After `flush`, reads observe the entire
    /// admitted stream.  No-op in epoch-synchronous mode.
    pub fn flush(&mut self) {
        while !self.queue.is_empty() {
            self.execute_queue_front();
        }
        self.commit_watermark();
        if let Some(start) = self.stream_start.take() {
            // Pipelined latency accounting is stream-scoped: the admitted
            // stream's wall-clock (first admission to flush), not a sum of
            // per-batch latencies.
            self.totals.latency_secs += start.elapsed().as_secs_f64();
        }
    }

    /// Fetch one relation from every worker, in worker order (the merge
    /// order must match the simulator's sequential 0..N loop so float
    /// accumulation is identical).  Collects outstanding block completions
    /// first: replies are FIFO per channel, so fetched relations can only
    /// be read from behind the pending `Ran` replies.
    fn fetch_all(&mut self, make: impl Fn() -> Request) -> Vec<Relation> {
        self.drain_outstanding();
        for tx in &self.requests {
            tx.send(make()).expect("worker thread died");
        }
        self.replies
            .iter()
            .map(|rx| match rx.recv().expect("worker thread died") {
                Reply::Rel(r) => r,
                _ => unreachable!("expected relation reply"),
            })
            .collect()
    }

    /// Full contents of a view, merged across all nodes holding a piece.
    /// In pipelined mode this commits the watermark first, so the read
    /// observes a consistent batch boundary: every issued batch completely,
    /// no batch partially.  With coalescing disabled the issued batches are
    /// exactly a prefix of the admitted stream; with coalescing enabled
    /// they are a prefix of a *commuted* schedule (same-relation deltas may
    /// have been ring-summed past later-admitted batches of other
    /// relations, preserving per-relation admission order — see the crate
    /// docs).  Admitted-but-queued batches require a
    /// [`ThreadedCluster::flush`] to become visible.
    pub fn view_contents(&mut self, name: &str) -> Relation {
        // Under a latency target, overdue queued deltas are forced through
        // first: a read never observes data staler than the target.
        self.enforce_latency_target();
        self.commit_watermark();
        let schema = self.dplan.schema_of(name).unwrap_or_default();
        let mut out = Relation::new(schema);
        match self.dplan.location(name) {
            LocTag::Local => out.merge(&self.driver.snapshot(name)),
            LocTag::Replicated => {
                // Every worker holds an identical copy; read one.
                if let Some(rx) = self.replies.first() {
                    self.requests[0]
                        .send(Request::Snapshot {
                            view: name.to_string(),
                        })
                        .expect("worker thread died");
                    match rx.recv().expect("worker thread died") {
                        Reply::Rel(r) => out.merge(&r),
                        _ => unreachable!("expected relation reply"),
                    }
                }
            }
            _ => {
                for part in self.fetch_all(|| Request::Snapshot {
                    view: name.to_string(),
                }) {
                    out.merge(&part);
                }
            }
        }
        out
    }

    /// Current contents of the top-level query view (watermark-consistent
    /// in pipelined mode, see [`ThreadedCluster::view_contents`]).
    pub fn query_result(&mut self) -> Relation {
        self.view_contents(&self.dplan.plan.top_view.clone())
    }

    /// Process one batch of updates to `relation`.
    ///
    /// Epoch-synchronous mode: executes the batch to completion and returns
    /// **measured** execution statistics.  Pipelined mode: *admits* the
    /// batch (possibly ring-summing it into an already-queued delta) and
    /// returns admission statistics; execution overlaps subsequent
    /// admissions and is forced by [`ThreadedCluster::flush`] or any view
    /// read.
    pub fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        match self.pipeline {
            None => self.execute_program(relation, batch),
            Some(_) => self.admit(relation, batch),
        }
    }

    /// Pipelined admission: coalesce into the queue tail or enqueue, then
    /// drive execution while the queue exceeds the admission capacity, the
    /// byte bound, or the latency target's staleness budget.
    ///
    /// Queued deltas are kept in the trigger's canonical schema (`relabel`
    /// is positional, so canonicalizing is one `add` per tuple), which
    /// makes coalescing a plain ring-sum into the tail and lets execution
    /// move the delta straight into the trigger with no further copy — the
    /// admission path costs the same tuple copies as the synchronous path.
    fn admit(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        let config = self.pipeline.clone().expect("admit requires pipeline mode");
        self.stream_start.get_or_insert_with(Instant::now);
        self.stats.batches_admitted += 1;
        self.stats.tuples_admitted += batch.len();
        let stats = BatchExecution {
            input_tuples: batch.len(),
            ..Default::default()
        };
        // Staleness first: even an admission that turns out to be a no-op
        // (relation without a trigger) must not let already-queued deltas
        // outlive the latency budget.
        self.enforce_latency_target();
        // Batches to relations the plan has no trigger for are no-ops; do
        // not let them split a coalescing run.
        let Some(program) = self.programs.get(relation) else {
            return stats;
        };
        let canonical_schema = program.relation_schema.clone();
        self.totals.tuples += batch.len();

        // Merge into the *latest* queued delta of the same relation (not
        // just the queue tail).  Batched IVM triggers are exact for any
        // delta against any current state, so same-relation deltas commute
        // past other relations' batches: the flushed state is identical in
        // real arithmetic, and interleaved streams (where consecutive
        // same-relation batches are rare) still coalesce well.  Per-relation
        // admission order is preserved.
        let coalesce_bound = self.effective_coalesce_bound();
        self.stats.coalesce_bound = coalesce_bound;
        // Under a latency target, a queued delta that has already burned
        // half its staleness budget stops growing: coalescing into it would
        // keep resetting the work it carries while its oldest event ages.
        let stale_cutoff = config.latency_target.map(|t| t / 2);
        let coalesced = match self.queue.iter_mut().rev().find(|q| q.relation == relation) {
            Some(q)
                if coalesce_bound > 0
                    && q.delta.len() + batch.len() <= coalesce_bound
                    // Strict `<` so a zero budget vetoes coalescing
                    // unconditionally, independent of clock resolution.
                    && stale_cutoff.is_none_or(|cut| q.admitted_at.elapsed() < cut) =>
            {
                let before = q.delta.serialized_size();
                q.delta.merge(batch);
                self.queue_bytes = self.queue_bytes - before + q.delta.serialized_size();
                true
            }
            _ => false,
        };
        if coalesced {
            self.stats.batches_coalesced += 1;
        } else {
            // Same canonicalization as the synchronous path, so a
            // non-coalesced pipelined run is bit-identical to it.
            let canonical = relabel(batch, &canonical_schema);
            self.queue_bytes += canonical.serialized_size();
            self.queue.push_back(QueuedDelta {
                relation: relation.to_string(),
                delta: canonical,
                admitted_at: Instant::now(),
            });
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        self.stats.max_queue_bytes = self.stats.max_queue_bytes.max(self.queue_bytes);

        // Backpressure, oldest first.  Byte bound: shed queued work until
        // the footprint fits (a single oversized delta executes
        // immediately, emptying the queue).
        while config.admit_bytes > 0 && self.queue_bytes > config.admit_bytes {
            self.execute_queue_front();
            self.stats.executions_forced_by_bytes += 1;
        }
        // Latency target: any delta older than the staleness budget is
        // overdue — force it (and anything queued ahead of it already ran).
        self.enforce_latency_target();
        // Count capacity, as before.
        while self.queue.len() > config.admit_capacity {
            self.execute_queue_front();
        }
        stats
    }

    /// Epoch-synchronous execution of one maintenance program over a batch
    /// (canonicalizes the batch's schema, then delegates).
    fn execute_program(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        let Some(program) = self.programs.get(relation) else {
            return BatchExecution {
                input_tuples: batch.len(),
                ..Default::default()
            };
        };
        let canonical = relabel(batch, &program.relation_schema);
        self.execute_canonical(relation, canonical, false)
    }

    /// Run one maintenance program over an owned, canonical-schema delta.
    ///
    /// `pipelined = false` is the epoch-synchronous schedule: every
    /// distributed block is barriered before the next starts and trailing
    /// scatters are drained, so the returned stats carry the batch's full
    /// measured wall-clock latency.  `pipelined = true` issues distributed
    /// blocks without collecting their completions (up to the in-flight
    /// window) and leaves trailing scatters un-barriered; completion is
    /// deferred to the next fetch, watermark commit or window bound.
    fn execute_canonical(
        &mut self,
        relation: &str,
        delta: Relation,
        pipelined: bool,
    ) -> BatchExecution {
        let wall_start = Instant::now();
        let mut stats = BatchExecution {
            input_tuples: delta.len(),
            ..Default::default()
        };
        if !self.programs.contains_key(relation) {
            return stats;
        }
        let inflight_blocks = self
            .pipeline
            .as_ref()
            .map(|c| c.inflight_blocks)
            .unwrap_or(0);

        let mut deltas = HashMap::new();
        deltas.insert(relation.to_string(), delta);
        let deltas = Arc::new(deltas);
        let delta_name = format!("Δ{relation}");

        let mut driver_counters = EvalCounters::default();
        for block_idx in 0..self.programs[relation].blocks.len() {
            let (mode, statements) = {
                let b = &self.programs[relation].blocks[block_idx];
                (b.mode, b.statements.clone())
            };
            match mode {
                StmtMode::Local => {
                    for stmt in statements.iter() {
                        match &stmt.kind {
                            DistStmtKind::Compute(_) => {
                                self.driver.run_compute(stmt, &deltas, &mut driver_counters);
                            }
                            DistStmtKind::Transform { kind, source } => {
                                let bytes =
                                    self.run_transform(stmt, kind, source, &delta_name, &deltas);
                                stats.bytes_shuffled += bytes;
                            }
                        }
                    }
                }
                StmtMode::Distributed => {
                    if pipelined {
                        // Respect the in-flight window, then issue the block
                        // and move on; completions are collected lazily.
                        for w in 0..self.workers {
                            if self.outstanding[w] >= inflight_blocks.max(1) {
                                let excess = self.outstanding[w] + 1 - inflight_blocks.max(1);
                                self.collect_from(w, excess);
                            }
                        }
                        for (w, tx) in self.requests.iter().enumerate() {
                            tx.send(Request::RunBlock {
                                statements: statements.clone(),
                                deltas: deltas.clone(),
                            })
                            .expect("worker thread died");
                            self.outstanding[w] += 1;
                        }
                    } else {
                        // One epoch: broadcast the block, barrier on
                        // completion.
                        for tx in &self.requests {
                            tx.send(Request::RunBlock {
                                statements: statements.clone(),
                                deltas: deltas.clone(),
                            })
                            .expect("worker thread died");
                        }
                        let mut max_instr = 0u64;
                        for rx in &self.replies {
                            match rx.recv().expect("worker thread died") {
                                Reply::Ran { instructions } => {
                                    max_instr = max_instr.max(instructions)
                                }
                                _ => unreachable!("expected run reply"),
                            }
                        }
                        stats.max_worker_instructions =
                            stats.max_worker_instructions.max(max_instr);
                        // The block barrier also drained any earlier applies.
                        self.applies_in_flight = false;
                    }
                }
            }
        }

        // A program ending in scatter/repart leaves Apply messages queued.
        // The synchronous schedule drains them so the measured latency
        // covers shard installation; the pipelined schedule leaves them in
        // flight (FIFO order protects the next batch) and the watermark
        // commit drains them before any read.
        if !pipelined && self.applies_in_flight {
            for tx in &self.requests {
                tx.send(Request::Barrier).expect("worker thread died");
            }
            for rx in &self.replies {
                match rx.recv().expect("worker thread died") {
                    Reply::Ack => {}
                    _ => unreachable!("expected barrier ack"),
                }
            }
            self.applies_in_flight = false;
        }

        let program = &self.programs[relation];
        stats.driver_instructions = driver_counters.instructions();
        stats.stages = program.stages;
        stats.jobs = program.jobs;
        stats.bytes_per_worker = stats.bytes_shuffled as f64 / self.workers as f64;
        // Measured, not modelled.  Synchronous mode: the batch's end-to-end
        // wall-clock.  Pipelined mode: the driver-side issue time only (the
        // stream's end-to-end wall-clock is folded into the totals at
        // `flush`).
        stats.wall_secs = wall_start.elapsed().as_secs_f64();
        stats.latency_secs = stats.wall_secs;

        self.issued += 1;
        if pipelined {
            // Stream tuples were counted at admission; stream wall-clock is
            // folded in at `flush`.
            self.stats.batches_executed += 1;
            self.stats.tuples_executed += stats.input_tuples;
        } else {
            self.watermark = self.issued;
            self.totals.latency_secs += stats.latency_secs;
            self.totals.tuples += stats.input_tuples;
        }
        self.totals.batches += 1;
        self.totals.bytes_shuffled += stats.bytes_shuffled;
        self.totals.latencies.push(stats.latency_secs);
        stats
    }

    /// Execute a transformer statement; returns the bytes moved.
    fn run_transform(
        &mut self,
        stmt: &DistStatement,
        kind: &Transform,
        source: &str,
        delta_name: &str,
        deltas: &HashMap<String, Relation>,
    ) -> usize {
        match kind {
            Transform::Scatter(pf) => {
                let src: Relation = if source == delta_name {
                    deltas.values().next().cloned().unwrap_or_default()
                } else {
                    self.driver.read(source)
                };
                let src = relabel(&src, &stmt.target_schema);
                self.scatter(pf, &src, stmt)
            }
            Transform::Repart(pf) => {
                let mut collected = Relation::new(stmt.target_schema.clone());
                for part in self.fetch_all(|| Request::Fetch {
                    name: source.to_string(),
                }) {
                    collected.merge(&relabel(&part, &stmt.target_schema));
                }
                let moved = collected.serialized_size();
                self.scatter(pf, &collected, stmt);
                moved + collected.serialized_size()
            }
            Transform::Gather => {
                let mut collected = Relation::new(stmt.target_schema.clone());
                for part in self.fetch_all(|| Request::Fetch {
                    name: source.to_string(),
                }) {
                    collected.merge(&relabel(&part, &stmt.target_schema));
                }
                let bytes = collected.serialized_size();
                self.driver.apply(stmt, collected);
                bytes
            }
        }
    }

    /// Ship per-worker shards of a driver-held relation.  Empty shards are
    /// shipped too: a `SetTo` scatter must clear stale buffers on workers
    /// that receive no rows this batch.
    fn scatter(&mut self, pf: &PartitionFn, src: &Relation, stmt: &DistStatement) -> usize {
        let (shards, bytes) = partition_shards(pf, src, stmt, self.workers);
        let stmt = Arc::new(stmt.clone());
        for (tx, shard) in self.requests.iter().zip(shards) {
            tx.send(Request::Apply {
                stmt: stmt.clone(),
                shard,
            })
            .expect("worker thread died");
        }
        self.applies_in_flight = true;
        bytes
    }
}

impl Backend for ThreadedCluster {
    fn backend_name(&self) -> &'static str {
        if self.is_pipelined() {
            "pipelined"
        } else {
            "threaded"
        }
    }

    fn plan(&self) -> &DistributedPlan {
        ThreadedCluster::plan(self)
    }

    fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        ThreadedCluster::apply_batch(self, relation, batch)
    }

    fn flush(&mut self) {
        ThreadedCluster::flush(self);
    }

    fn view_contents(&mut self, name: &str) -> Relation {
        ThreadedCluster::view_contents(self, name)
    }

    fn totals(&self) -> &ClusterTotals {
        &self.totals
    }

    fn pipeline_stats(&self) -> Option<PipelineStats> {
        if self.is_pipelined() {
            Some(self.stats.clone())
        } else {
            None
        }
    }
}

impl ThreadedCluster {
    /// Abandon every admitted-but-unissued batch *without executing it*,
    /// shut the worker threads down, and return the final pipeline stats
    /// (with [`PipelineStats::batches_abandoned`] counting the dropped
    /// queue).  This is the observable form of the `Drop` path; use
    /// [`ThreadedCluster::flush`] first if queued batches must be applied.
    pub fn close(mut self) -> PipelineStats {
        self.abandon_queue();
        self.shutdown_workers();
        self.stats.clone()
    }

    /// Drop queued deltas without executing them (no maintenance program
    /// runs, no worker messages are sent).
    fn abandon_queue(&mut self) {
        self.stats.batches_abandoned += self.queue.len();
        self.queue.clear();
        self.queue_bytes = 0;
    }

    /// Stop the worker threads.  Workers only need their command channels
    /// drained; any uncollected block replies are discarded with the
    /// reply channels.  Idempotent.
    fn shutdown_workers(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        for tx in &self.requests {
            let _ = tx.send(Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        // Dropping without a `flush` abandons queued batches — they must
        // never execute from a destructor (a drop during unwinding must not
        // run maintenance programs or block on workers beyond joining).
        self.abandon_queue();
        self.shutdown_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple;
    use hotdog_distributed::{
        compile_distributed, Cluster, ClusterConfig, OptLevel, PartitioningSpec,
    };
    use hotdog_ivm::compile_recursive;

    fn example_query() -> Expr {
        sum(
            ["B"],
            join_all([
                rel("R", ["OK", "B"]),
                rel("S", ["B", "CK"]),
                rel("T", ["CK", "D"]),
            ]),
        )
    }

    fn example_dplan(opt: OptLevel) -> DistributedPlan {
        let plan = compile_recursive("Q", &example_query());
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        compile_distributed(&plan, &spec, opt)
    }

    fn batches() -> Vec<(&'static str, Relation)> {
        vec![
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["OK", "B"]),
                    (0..40i64).map(|i| (tuple![i, i % 5], 1.0)),
                ),
            ),
            (
                "S",
                Relation::from_pairs(
                    Schema::new(["B", "CK"]),
                    (0..20i64).map(|i| (tuple![i % 5, i], 1.0)),
                ),
            ),
            (
                "T",
                Relation::from_pairs(
                    Schema::new(["CK", "D"]),
                    (0..20i64).map(|i| (tuple![i, i * 10], 1.0)),
                ),
            ),
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["OK", "B"]),
                    vec![(tuple![1, 1], -1.0), (tuple![100, 2], 1.0)],
                ),
            ),
        ]
    }

    #[test]
    fn threaded_matches_simulator_at_every_opt_level() {
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            for workers in [1usize, 2, 5] {
                let dplan = example_dplan(opt);
                let mut sim = Cluster::new(dplan.clone(), ClusterConfig::with_workers(workers));
                let mut real = ThreadedCluster::new(dplan, workers);
                for (rel, batch) in batches() {
                    sim.apply_batch(rel, &batch);
                    real.apply_batch(rel, &batch);
                }
                assert_eq!(
                    real.query_result().sorted(),
                    sim.query_result().sorted(),
                    "threaded diverged from simulator at {opt:?} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn pipelined_matches_synchronous_everywhere() {
        for opt in [OptLevel::O0, OptLevel::O3] {
            for workers in [1usize, 2, 5] {
                let mut sync = ThreadedCluster::new(example_dplan(opt), workers);
                let mut piped = ThreadedCluster::pipelined(
                    example_dplan(opt),
                    workers,
                    PipelineConfig::default(),
                );
                for (rel, batch) in batches() {
                    sync.apply_batch(rel, &batch);
                    piped.apply_batch(rel, &batch);
                }
                piped.flush();
                assert_eq!(
                    piped.query_result().checksum(),
                    sync.query_result().checksum(),
                    "pipelined diverged at {opt:?} with {workers} workers"
                );
                let view_names: Vec<String> = sync
                    .plan()
                    .plan
                    .views
                    .iter()
                    .map(|v| v.name.clone())
                    .collect();
                for v in view_names {
                    assert_eq!(
                        piped.view_contents(&v).checksum(),
                        sync.view_contents(&v).checksum(),
                        "view {v} diverged at {opt:?} with {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn coalescing_merges_consecutive_same_relation_batches() {
        let mut piped = ThreadedCluster::pipelined(
            example_dplan(OptLevel::O3),
            2,
            PipelineConfig {
                coalesce_tuples: 1_000,
                admit_capacity: 64,
                ..Default::default()
            },
        );
        // 16 single-tuple R batches then one S batch: the R's coalesce into
        // one queued delta, so only two program executions trigger.
        for i in 0..16i64 {
            piped.apply_batch(
                "R",
                &Relation::from_pairs(Schema::new(["OK", "B"]), vec![(tuple![i, i % 5], 1.0)]),
            );
        }
        piped.apply_batch(
            "S",
            &Relation::from_pairs(Schema::new(["B", "CK"]), vec![(tuple![0, 0], 1.0)]),
        );
        piped.flush();
        assert_eq!(piped.stats.batches_admitted, 17);
        assert_eq!(piped.stats.batches_coalesced, 15);
        assert_eq!(piped.stats.batches_executed, 2);
        assert_eq!(piped.stats.tuples_admitted, 17);
        // Ring-summed delta carries all 16 R tuples in one trigger run.
        assert_eq!(piped.stats.tuples_executed, 17);
    }

    #[test]
    fn coalescing_ring_sum_cancels_opposing_deltas() {
        let mut piped = ThreadedCluster::pipelined(
            example_dplan(OptLevel::O3),
            2,
            PipelineConfig::with_coalesce(1_000),
        );
        piped.apply_batch(
            "R",
            &Relation::from_pairs(Schema::new(["OK", "B"]), vec![(tuple![7, 1], 1.0)]),
        );
        piped.apply_batch(
            "R",
            &Relation::from_pairs(Schema::new(["OK", "B"]), vec![(tuple![7, 1], -1.0)]),
        );
        piped.flush();
        assert_eq!(piped.stats.batches_coalesced, 1);
        // The insert and the delete annihilate before ever triggering.
        assert_eq!(piped.stats.tuples_executed, 0);
        assert!(piped.query_result().is_empty());
    }

    #[test]
    fn watermark_exposes_consistent_prefix_without_flush() {
        let config = PipelineConfig {
            coalesce_tuples: 0, // keep every batch distinct
            admit_capacity: 1,  // force eager execution
            inflight_blocks: 2,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 3, config);
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
        let all = batches();
        for (rel, batch) in &all {
            piped.apply_batch(rel, batch);
            sync.apply_batch(rel, batch);
        }
        // Without a flush the read still observes a consistent batch
        // boundary: `admit_capacity = 1` guarantees at least all but one
        // batch has been issued.
        assert!(piped.watermark() == 0); // not yet committed by any read
        let partial = piped.query_result();
        let committed = piped.watermark();
        assert!(
            committed >= (all.len() as u64 - 1),
            "eager execution should have issued all but the queued tail"
        );
        // Re-running the same prefix synchronously reproduces the read.
        let mut prefix = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
        for (rel, batch) in all.iter().take(committed as usize) {
            prefix.apply_batch(rel, batch);
        }
        assert_eq!(partial.checksum(), prefix.query_result().checksum());
        piped.flush();
        assert_eq!(piped.watermark(), all.len() as u64);
        assert_eq!(
            piped.query_result().checksum(),
            sync.query_result().checksum()
        );
    }

    #[test]
    fn coalesced_reads_observe_commuted_prefix() {
        // Coalescing merges a later same-relation batch into its queued
        // delta, commuting it past other relations' queued batches; a
        // pre-flush read must observe exactly that commuted boundary.
        let config = PipelineConfig {
            coalesce_tuples: 1_000,
            admit_capacity: 2,
            inflight_blocks: 2,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 3, config);
        let all = batches(); // [R1, S1, T1, R2]
        let (r1, s1, t1, r2) = (&all[0].1, &all[1].1, &all[2].1, &all[3].1);
        piped.apply_batch("R", r1); // queue [R1]
        piped.apply_batch("S", s1); // queue [R1, S1]
        piped.apply_batch("R", r2); // merges into R1's entry, ahead of S1
        piped.apply_batch("T", t1); // queue exceeds capacity -> issue R1⊕R2
        assert_eq!(piped.stats.batches_coalesced, 1);
        let read = piped.query_result();
        assert_eq!(piped.watermark(), 1, "exactly the coalesced R delta issued");
        // The committed boundary is the commuted prefix [R1 ⊕ R2]: both R
        // batches visible (R2 admitted *after* S1), S1 and T1 not yet.
        let mut reference = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
        reference.apply_batch("R", &r1.union(r2));
        assert_eq!(read.checksum(), reference.query_result().checksum());
        let view_names: Vec<String> = reference
            .plan()
            .plan
            .views
            .iter()
            .map(|v| v.name.clone())
            .collect();
        for v in &view_names {
            assert_eq!(
                piped.view_contents(v).checksum(),
                reference.view_contents(v).checksum(),
                "view {v} is not at the commuted boundary"
            );
        }
        // After a flush the end state matches the admitted order exactly
        // (integer multiplicities, so coalescing is bit-exact here).
        piped.flush();
        let mut full = ThreadedCluster::new(example_dplan(OptLevel::O3), 3);
        for (rel, batch) in &all {
            full.apply_batch(rel, batch);
        }
        for v in &view_names {
            assert_eq!(
                piped.view_contents(v).checksum(),
                full.view_contents(v).checksum(),
                "flushed view {v} diverged"
            );
        }
    }

    #[test]
    fn tiny_inflight_window_still_correct() {
        for inflight in [1usize, 2] {
            let config = PipelineConfig {
                coalesce_tuples: 64,
                admit_capacity: 2,
                inflight_blocks: inflight,
                ..Default::default()
            };
            let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 4, config);
            let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 4);
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
                sync.apply_batch(rel, &batch);
            }
            piped.flush();
            assert_eq!(
                piped.query_result().checksum(),
                sync.query_result().checksum(),
                "inflight window {inflight} diverged"
            );
        }
    }

    #[test]
    fn measured_stats_are_populated() {
        let dplan = example_dplan(OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 3);
        let mut stages = 0;
        for (rel, batch) in batches() {
            let stats = cluster.apply_batch(rel, &batch);
            assert!(stats.latency_secs > 0.0, "latency must be measured");
            assert_eq!(stats.latency_secs, stats.wall_secs);
            stages += stats.stages;
        }
        assert!(stages > 0);
        assert!(cluster.totals.batches == batches().len());
        assert!(cluster.totals.bytes_shuffled > 0);
        assert!(cluster.totals.throughput() > 0.0);
    }

    #[test]
    fn pipelined_totals_report_stream_throughput() {
        let mut piped =
            ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, PipelineConfig::default());
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        piped.flush();
        assert!(piped.totals.latency_secs > 0.0);
        assert!(piped.totals.throughput() > 0.0);
        assert_eq!(
            piped.totals.tuples,
            batches().iter().map(|(_, b)| b.len()).sum::<usize>()
        );
        // Flushing twice must not double-count stream time.
        let t = piped.totals.latency_secs;
        piped.flush();
        assert_eq!(piped.totals.latency_secs, t);
    }

    #[test]
    fn intermediate_view_contents_match_simulator() {
        let dplan = example_dplan(OptLevel::O3);
        let view_names: Vec<String> = dplan.plan.views.iter().map(|v| v.name.clone()).collect();
        let mut sim = Cluster::new(dplan.clone(), ClusterConfig::with_workers(4));
        let mut real = ThreadedCluster::new(dplan, 4);
        for (rel, batch) in batches() {
            sim.apply_batch(rel, &batch);
            real.apply_batch(rel, &batch);
        }
        for v in view_names {
            assert_eq!(
                real.view_contents(&v).sorted(),
                sim.view_contents(&v).sorted(),
                "view {v} diverged"
            );
        }
    }

    #[test]
    fn unknown_relation_batches_are_ignored() {
        let dplan = example_dplan(OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 2);
        let stats = cluster.apply_batch(
            "UNRELATED",
            &Relation::from_pairs(Schema::new(["X"]), vec![(tuple![1], 1.0)]),
        );
        assert_eq!(stats.stages, 0);
        assert!(cluster.query_result().is_empty());
    }

    #[test]
    fn adaptive_mode_matches_synchronous_state() {
        // The controller only re-times trigger boundaries; view state must
        // match the synchronous schedule exactly (integer multiplicities
        // here, so even coalesced runs are bit-exact).
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 2);
        let mut adaptive =
            ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, PipelineConfig::adaptive());
        for (rel, batch) in batches() {
            sync.apply_batch(rel, &batch);
            adaptive.apply_batch(rel, &batch);
        }
        adaptive.flush();
        assert_eq!(
            adaptive.query_result().checksum(),
            sync.query_result().checksum(),
            "adaptive coalescing changed view state"
        );
        assert!(adaptive.stats.coalesce_bound > 0);
    }

    #[test]
    fn adaptive_controller_is_fed_by_the_stream() {
        // Enough triggers to close probe windows: tiny probe window, eager
        // execution so every admission triggers.
        let config = PipelineConfig {
            adaptive: Some(AdaptiveConfig {
                probe_triggers: 1,
                initial_tuples: 64,
                ..Default::default()
            }),
            admit_capacity: 0, // execute every admitted batch immediately
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        for _ in 0..4 {
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
            }
        }
        piped.flush();
        assert!(
            piped.stats.bound_adjustments + piped.stats.bound_reversals > 0,
            "controller never moved: {:?}",
            piped.stats
        );
    }

    #[test]
    fn byte_bound_backpressures_the_admission_queue() {
        let admit_bytes = 600usize;
        let config = PipelineConfig {
            coalesce_tuples: 0, // keep batches distinct so the queue grows
            admit_capacity: 1_000,
            ..Default::default()
        }
        .with_admit_bytes(admit_bytes);
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 2);
        for _ in 0..4 {
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
                sync.apply_batch(rel, &batch);
                assert!(
                    piped.queued_bytes() <= admit_bytes,
                    "queue footprint {} exceeds the byte bound",
                    piped.queued_bytes()
                );
            }
        }
        assert!(
            piped.stats.executions_forced_by_bytes > 0,
            "the byte bound never engaged: {:?}",
            piped.stats
        );
        piped.flush();
        assert_eq!(piped.queued_bytes(), 0);
        assert_eq!(
            piped.query_result().checksum(),
            sync.query_result().checksum(),
            "byte backpressure changed view state"
        );
    }

    #[test]
    fn latency_target_bounds_watermark_lag() {
        // A zero staleness budget makes every queued delta overdue at the
        // next admission: the queue can never hold more than the batch
        // currently being admitted, so reads are never more than one batch
        // stale — the latency end of the latency/throughput tradeoff.
        let config = PipelineConfig {
            coalesce_tuples: 1_000_000,
            admit_capacity: 1_000,
            ..Default::default()
        }
        .with_latency_target(Duration::ZERO);
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
            assert!(
                piped.queued_batches() <= 1,
                "latency target must keep the queue drained"
            );
        }
        assert!(
            piped.stats.executions_forced_by_latency > 0,
            "the latency target never engaged: {:?}",
            piped.stats
        );
        // Zero budget also vetoes coalescing into aged deltas: nothing may
        // ring-sum into a delta that is already overdue.
        assert_eq!(piped.stats.batches_coalesced, 0);
        piped.flush();

        // An unbounded budget must never force executions.
        let lax = PipelineConfig {
            coalesce_tuples: 1_000_000,
            admit_capacity: 1_000,
            ..Default::default()
        }
        .with_latency_target(Duration::from_secs(3_600));
        let mut relaxed = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, lax);
        for (rel, batch) in batches() {
            relaxed.apply_batch(rel, &batch);
        }
        assert_eq!(relaxed.stats.executions_forced_by_latency, 0);
        relaxed.flush();
    }

    #[test]
    fn reads_enforce_the_latency_target() {
        // A finite budget, then a sleep that guarantees anything still
        // queued is overdue: the next *read* must force it through — no
        // flush, no further admissions.  (A scheduler pause may legally
        // force some deltas during admission already, so only the
        // post-read state is asserted exactly.)
        let config = PipelineConfig {
            coalesce_tuples: 0, // keep every batch distinct
            admit_capacity: 1_000,
            ..Default::default()
        }
        .with_latency_target(Duration::from_millis(100));
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 2, config);
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        assert!(piped.queued_batches() <= batches().len());
        std::thread::sleep(Duration::from_millis(150));
        let read = piped.query_result();
        assert_eq!(
            piped.queued_batches(),
            0,
            "the read must flush overdue deltas"
        );
        // Every execution was latency-forced, whether the admission loop or
        // the read drove it.
        assert!(piped.stats.executions_forced_by_latency >= 1);
        assert_eq!(
            piped.stats.executions_forced_by_latency,
            piped.stats.batches_executed
        );
        let mut sync = ThreadedCluster::new(example_dplan(OptLevel::O3), 2);
        for (rel, batch) in batches() {
            sync.apply_batch(rel, &batch);
        }
        assert_eq!(read.checksum(), sync.query_result().checksum());
    }

    #[test]
    fn close_abandons_queued_batches_without_executing() {
        let config = PipelineConfig {
            coalesce_tuples: 0, // keep every admitted batch distinct
            admit_capacity: 1_000,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 4, config);
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        assert_eq!(piped.queued_batches(), batches().len());
        assert_eq!(piped.stats.batches_executed, 0);
        let final_stats = piped.close(); // must not hang, execute, or leak
        assert_eq!(final_stats.batches_abandoned, batches().len());
        assert_eq!(
            final_stats.batches_executed, 0,
            "close() must not execute queued deltas"
        );

        // Same invariant on the plain Drop path, with replies still in
        // flight: issued-but-uncollected block completions plus a queued
        // tail must shut down cleanly.
        let config = PipelineConfig {
            coalesce_tuples: 0,
            admit_capacity: 2, // forces some eager (pipelined) executions
            inflight_blocks: 8,
            ..Default::default()
        };
        let mut piped = ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 4, config);
        for _ in 0..3 {
            for (rel, batch) in batches() {
                piped.apply_batch(rel, &batch);
            }
        }
        assert!(piped.queued_batches() > 0);
        drop(piped); // no hang, no panic, queued deltas never execute
    }

    #[test]
    fn workers_shut_down_cleanly_on_drop() {
        let dplan = example_dplan(OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 8);
        for (rel, batch) in batches() {
            cluster.apply_batch(rel, &batch);
        }
        drop(cluster); // must not hang or panic

        // Pipelined clusters with work still in flight must also shut down.
        let mut piped =
            ThreadedCluster::pipelined(example_dplan(OptLevel::O3), 4, PipelineConfig::default());
        for (rel, batch) in batches() {
            piped.apply_batch(rel, &batch);
        }
        drop(piped); // queued + in-flight work abandoned, no hang
    }
}
