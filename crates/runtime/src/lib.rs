//! # hotdog-runtime
//!
//! The real execution backend for compiled [`DistributedPlan`]s: a
//! thread-per-worker runtime that actually runs the distributed maintenance
//! programs in parallel, in contrast to the single-threaded simulated
//! [`Cluster`](hotdog_distributed::Cluster) which executes the same
//! programs sequentially and *models* time.
//!
//! Architecture (mirroring the paper's driver/worker deployment):
//!
//! * every worker is one OS thread owning a [`WorkerState`] — its
//!   hash-partitioned shard of the distributed views plus per-batch
//!   exchange buffers — and a command channel;
//! * the driver (the caller's thread) owns the driver-resident views and
//!   runs each [`TriggerProgram`] epoch-synchronously: `Local` blocks
//!   execute on the driver, transformer statements move relations between
//!   driver and workers (scatter / repartition / gather), and every
//!   `Distributed` block is broadcast to all workers and barriered before
//!   the next block starts — the mpsc channels play the role of the
//!   cluster fabric;
//! * routing reuses the exact `PartitionFn` shard assignment of the
//!   simulator (via [`hotdog_distributed::partition_shards`]), and workers
//!   run statements through the same [`WorkerState`] interpreter, so both
//!   backends produce identical view contents — only the *time* differs:
//!   [`BatchExecution::latency_secs`] here is measured wall-clock, not a
//!   cost model.
//!
//! [`BatchExecution::latency_secs`]: hotdog_distributed::BatchExecution

#![forbid(unsafe_code)]

use hotdog_algebra::eval::EvalCounters;
use hotdog_algebra::relation::Relation;
use hotdog_distributed::{
    partition_shards, BatchExecution, ClusterTotals, DistStatement, DistStmtKind, DistributedPlan,
    LocTag, PartitionFn, StmtMode, Transform, TriggerProgram, WorkerState,
};
use hotdog_exec::relabel;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Commands the driver sends to a worker thread.  Per-channel FIFO order is
/// the synchronization contract: an `Apply` enqueued before a `RunBlock` is
/// guaranteed to be installed before the block executes.
enum Request {
    /// Execute one distributed block over this worker's shard and report
    /// the interpreter work performed.
    RunBlock {
        statements: Arc<Vec<DistStatement>>,
        deltas: Arc<HashMap<String, Relation>>,
    },
    /// Install a scattered shard into the statement's target.
    Apply {
        stmt: Arc<DistStatement>,
        shard: Relation,
    },
    /// Send back an exchange buffer (or this worker's view partition).
    Fetch { name: String },
    /// Send back this worker's partition of a materialized view.
    Snapshot { view: String },
    /// Acknowledge that everything enqueued so far has been processed
    /// (drains trailing `Apply`s so measured batch latency includes them).
    Barrier,
    /// Exit the worker loop.
    Shutdown,
}

/// Worker responses (one per `RunBlock`/`Fetch`/`Snapshot`/`Barrier`
/// request).
enum Reply {
    Ran { instructions: u64 },
    Rel(Relation),
    Ack,
}

fn worker_loop(mut state: WorkerState, rx: Receiver<Request>, tx: Sender<Reply>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Request::RunBlock { statements, deltas } => {
                let mut counters = EvalCounters::default();
                for stmt in statements.iter() {
                    state.run_compute(stmt, &deltas, &mut counters);
                }
                let _ = tx.send(Reply::Ran {
                    instructions: counters.instructions(),
                });
            }
            Request::Apply { stmt, shard } => state.apply(&stmt, shard),
            Request::Fetch { name } => {
                let _ = tx.send(Reply::Rel(state.read(&name)));
            }
            Request::Snapshot { view } => {
                let _ = tx.send(Reply::Rel(state.snapshot(&view)));
            }
            Request::Barrier => {
                let _ = tx.send(Reply::Ack);
            }
            Request::Shutdown => break,
        }
    }
}

/// A distributed block with its statements shared once, so per-batch
/// broadcasts are an `Arc` bump instead of a deep clone.
struct SharedBlock {
    mode: StmtMode,
    statements: Arc<Vec<DistStatement>>,
}

struct SharedProgram {
    relation_schema: hotdog_algebra::schema::Schema,
    blocks: Vec<SharedBlock>,
    stages: usize,
    jobs: usize,
}

fn share_program(p: &TriggerProgram) -> SharedProgram {
    SharedProgram {
        relation_schema: p.relation_schema.clone(),
        blocks: p
            .blocks
            .iter()
            .map(|b| SharedBlock {
                mode: b.mode,
                statements: Arc::new(b.statements.clone()),
            })
            .collect(),
        stages: p.stages(),
        jobs: p.jobs(),
    }
}

/// One driver + N worker threads executing a distributed plan for real.
///
/// Public surface matches the simulated
/// [`Cluster`](hotdog_distributed::Cluster) (`apply_batch`,
/// `view_contents`, `query_result`, `plan`, `totals`) so the two backends
/// are drop-in interchangeable; [`BatchExecution`] fields that model time in
/// the simulator hold *measured* wall-clock values here.
pub struct ThreadedCluster {
    /// Number of worker threads.
    pub workers: usize,
    dplan: DistributedPlan,
    driver: WorkerState,
    programs: HashMap<String, SharedProgram>,
    requests: Vec<Sender<Request>>,
    replies: Vec<Receiver<Reply>>,
    handles: Vec<JoinHandle<()>>,
    /// Whether `Apply` messages have been enqueued with no barrier behind
    /// them yet (a trailing scatter must be drained before the batch's
    /// wall clock stops, or its cost leaks into the next batch).
    applies_in_flight: bool,
    /// Accumulated measured totals (same shape as the simulator's).
    pub totals: ClusterTotals,
}

impl ThreadedCluster {
    /// Spawn `workers` worker threads with empty view partitions.
    pub fn new(dplan: DistributedPlan, workers: usize) -> Self {
        assert!(workers > 0);
        let driver = WorkerState::for_plan(&dplan.plan);
        let programs = dplan
            .programs
            .iter()
            .map(|p| (p.relation.clone(), share_program(p)))
            .collect();
        let mut requests = Vec::with_capacity(workers);
        let mut replies = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let state = WorkerState::for_plan(&dplan.plan);
            let (req_tx, req_rx) = channel();
            let (rep_tx, rep_rx) = channel();
            let handle = thread::Builder::new()
                .name(format!("hotdog-worker-{i}"))
                .spawn(move || worker_loop(state, req_rx, rep_tx))
                .expect("failed to spawn worker thread");
            requests.push(req_tx);
            replies.push(rep_rx);
            handles.push(handle);
        }
        ThreadedCluster {
            workers,
            dplan,
            driver,
            programs,
            requests,
            replies,
            handles,
            applies_in_flight: false,
            totals: ClusterTotals::default(),
        }
    }

    /// The compiled distributed plan this cluster runs.
    pub fn plan(&self) -> &DistributedPlan {
        &self.dplan
    }

    /// Fetch one relation from every worker, in worker order (the merge
    /// order must match the simulator's sequential 0..N loop so float
    /// accumulation is identical).
    fn fetch_all(&self, make: impl Fn() -> Request) -> Vec<Relation> {
        for tx in &self.requests {
            tx.send(make()).expect("worker thread died");
        }
        self.replies
            .iter()
            .map(|rx| match rx.recv().expect("worker thread died") {
                Reply::Rel(r) => r,
                _ => unreachable!("expected relation reply"),
            })
            .collect()
    }

    /// Full contents of a view, merged across all nodes holding a piece.
    pub fn view_contents(&self, name: &str) -> Relation {
        let schema = self.dplan.schema_of(name).unwrap_or_default();
        let mut out = Relation::new(schema);
        match self.dplan.location(name) {
            LocTag::Local => out.merge(&self.driver.snapshot(name)),
            LocTag::Replicated => {
                // Every worker holds an identical copy; read one.
                if let Some(rx) = self.replies.first() {
                    self.requests[0]
                        .send(Request::Snapshot {
                            view: name.to_string(),
                        })
                        .expect("worker thread died");
                    match rx.recv().expect("worker thread died") {
                        Reply::Rel(r) => out.merge(&r),
                        _ => unreachable!("expected relation reply"),
                    }
                }
            }
            _ => {
                for part in self.fetch_all(|| Request::Snapshot {
                    view: name.to_string(),
                }) {
                    out.merge(&part);
                }
            }
        }
        out
    }

    /// Current contents of the top-level query view.
    pub fn query_result(&self) -> Relation {
        self.view_contents(&self.dplan.plan.top_view)
    }

    /// Process one batch of updates to `relation`, returning **measured**
    /// execution statistics.
    pub fn apply_batch(&mut self, relation: &str, batch: &Relation) -> BatchExecution {
        let wall_start = Instant::now();
        let mut stats = BatchExecution {
            input_tuples: batch.len(),
            ..Default::default()
        };
        let Some(program) = self.programs.get(relation) else {
            return stats;
        };

        let canonical = relabel(batch, &program.relation_schema);
        let mut deltas = HashMap::new();
        deltas.insert(relation.to_string(), canonical);
        let deltas = Arc::new(deltas);
        let delta_name = format!("Δ{relation}");

        let mut driver_counters = EvalCounters::default();
        for block_idx in 0..self.programs[relation].blocks.len() {
            let (mode, statements) = {
                let b = &self.programs[relation].blocks[block_idx];
                (b.mode, b.statements.clone())
            };
            match mode {
                StmtMode::Local => {
                    for stmt in statements.iter() {
                        match &stmt.kind {
                            DistStmtKind::Compute(_) => {
                                self.driver.run_compute(stmt, &deltas, &mut driver_counters);
                            }
                            DistStmtKind::Transform { kind, source } => {
                                let bytes =
                                    self.run_transform(stmt, kind, source, &delta_name, &deltas);
                                stats.bytes_shuffled += bytes;
                            }
                        }
                    }
                }
                StmtMode::Distributed => {
                    // One epoch: broadcast the block, barrier on completion.
                    for tx in &self.requests {
                        tx.send(Request::RunBlock {
                            statements: statements.clone(),
                            deltas: deltas.clone(),
                        })
                        .expect("worker thread died");
                    }
                    let mut max_instr = 0u64;
                    for rx in &self.replies {
                        match rx.recv().expect("worker thread died") {
                            Reply::Ran { instructions } => max_instr = max_instr.max(instructions),
                            _ => unreachable!("expected run reply"),
                        }
                    }
                    stats.max_worker_instructions = stats.max_worker_instructions.max(max_instr);
                    // The block barrier also drained any earlier applies.
                    self.applies_in_flight = false;
                }
            }
        }

        // A program ending in scatter/repart leaves Apply messages queued;
        // drain them so the measured latency covers shard installation
        // instead of leaking it into the next batch.
        if self.applies_in_flight {
            for tx in &self.requests {
                tx.send(Request::Barrier).expect("worker thread died");
            }
            for rx in &self.replies {
                match rx.recv().expect("worker thread died") {
                    Reply::Ack => {}
                    _ => unreachable!("expected barrier ack"),
                }
            }
            self.applies_in_flight = false;
        }

        let program = &self.programs[relation];
        stats.driver_instructions = driver_counters.instructions();
        stats.stages = program.stages;
        stats.jobs = program.jobs;
        stats.bytes_per_worker = stats.bytes_shuffled as f64 / self.workers as f64;
        // Measured, not modelled: the batch's wall-clock time is its latency.
        stats.wall_secs = wall_start.elapsed().as_secs_f64();
        stats.latency_secs = stats.wall_secs;

        self.totals.batches += 1;
        self.totals.tuples += stats.input_tuples;
        self.totals.latency_secs += stats.latency_secs;
        self.totals.bytes_shuffled += stats.bytes_shuffled;
        self.totals.latencies.push(stats.latency_secs);
        stats
    }

    /// Execute a transformer statement; returns the bytes moved.
    fn run_transform(
        &mut self,
        stmt: &DistStatement,
        kind: &Transform,
        source: &str,
        delta_name: &str,
        deltas: &HashMap<String, Relation>,
    ) -> usize {
        match kind {
            Transform::Scatter(pf) => {
                let src: Relation = if source == delta_name {
                    deltas.values().next().cloned().unwrap_or_default()
                } else {
                    self.driver.read(source)
                };
                let src = relabel(&src, &stmt.target_schema);
                self.scatter(pf, &src, stmt)
            }
            Transform::Repart(pf) => {
                let mut collected = Relation::new(stmt.target_schema.clone());
                for part in self.fetch_all(|| Request::Fetch {
                    name: source.to_string(),
                }) {
                    collected.merge(&relabel(&part, &stmt.target_schema));
                }
                let moved = collected.serialized_size();
                self.scatter(pf, &collected, stmt);
                moved + collected.serialized_size()
            }
            Transform::Gather => {
                let mut collected = Relation::new(stmt.target_schema.clone());
                for part in self.fetch_all(|| Request::Fetch {
                    name: source.to_string(),
                }) {
                    collected.merge(&relabel(&part, &stmt.target_schema));
                }
                let bytes = collected.serialized_size();
                self.driver.apply(stmt, collected);
                bytes
            }
        }
    }

    /// Ship per-worker shards of a driver-held relation.  Empty shards are
    /// shipped too: a `SetTo` scatter must clear stale buffers on workers
    /// that receive no rows this batch.
    fn scatter(&mut self, pf: &PartitionFn, src: &Relation, stmt: &DistStatement) -> usize {
        let (shards, bytes) = partition_shards(pf, src, stmt, self.workers);
        let stmt = Arc::new(stmt.clone());
        for (tx, shard) in self.requests.iter().zip(shards) {
            tx.send(Request::Apply {
                stmt: stmt.clone(),
                shard,
            })
            .expect("worker thread died");
        }
        self.applies_in_flight = true;
        bytes
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        for tx in &self.requests {
            let _ = tx.send(Request::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::*;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple;
    use hotdog_distributed::{
        compile_distributed, Cluster, ClusterConfig, OptLevel, PartitioningSpec,
    };
    use hotdog_ivm::compile_recursive;

    fn example_query() -> Expr {
        sum(
            ["B"],
            join_all([
                rel("R", ["OK", "B"]),
                rel("S", ["B", "CK"]),
                rel("T", ["CK", "D"]),
            ]),
        )
    }

    fn batches() -> Vec<(&'static str, Relation)> {
        vec![
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["OK", "B"]),
                    (0..40i64).map(|i| (tuple![i, i % 5], 1.0)),
                ),
            ),
            (
                "S",
                Relation::from_pairs(
                    Schema::new(["B", "CK"]),
                    (0..20i64).map(|i| (tuple![i % 5, i], 1.0)),
                ),
            ),
            (
                "T",
                Relation::from_pairs(
                    Schema::new(["CK", "D"]),
                    (0..20i64).map(|i| (tuple![i, i * 10], 1.0)),
                ),
            ),
            (
                "R",
                Relation::from_pairs(
                    Schema::new(["OK", "B"]),
                    vec![(tuple![1, 1], -1.0), (tuple![100, 2], 1.0)],
                ),
            ),
        ]
    }

    #[test]
    fn threaded_matches_simulator_at_every_opt_level() {
        let plan = compile_recursive("Q", &example_query());
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            for workers in [1usize, 2, 5] {
                let dplan = compile_distributed(&plan, &spec, opt);
                let mut sim = Cluster::new(dplan.clone(), ClusterConfig::with_workers(workers));
                let mut real = ThreadedCluster::new(dplan, workers);
                for (rel, batch) in batches() {
                    sim.apply_batch(rel, &batch);
                    real.apply_batch(rel, &batch);
                }
                assert_eq!(
                    real.query_result().sorted(),
                    sim.query_result().sorted(),
                    "threaded diverged from simulator at {opt:?} with {workers} workers"
                );
            }
        }
    }

    #[test]
    fn measured_stats_are_populated() {
        let plan = compile_recursive("Q", &example_query());
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        let dplan = compile_distributed(&plan, &spec, OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 3);
        let mut stages = 0;
        for (rel, batch) in batches() {
            let stats = cluster.apply_batch(rel, &batch);
            assert!(stats.latency_secs > 0.0, "latency must be measured");
            assert_eq!(stats.latency_secs, stats.wall_secs);
            stages += stats.stages;
        }
        assert!(stages > 0);
        assert!(cluster.totals.batches == batches().len());
        assert!(cluster.totals.bytes_shuffled > 0);
        assert!(cluster.totals.throughput() > 0.0);
    }

    #[test]
    fn intermediate_view_contents_match_simulator() {
        let plan = compile_recursive("Q", &example_query());
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        let dplan = compile_distributed(&plan, &spec, OptLevel::O3);
        let view_names: Vec<String> = dplan.plan.views.iter().map(|v| v.name.clone()).collect();
        let mut sim = Cluster::new(dplan.clone(), ClusterConfig::with_workers(4));
        let mut real = ThreadedCluster::new(dplan, 4);
        for (rel, batch) in batches() {
            sim.apply_batch(rel, &batch);
            real.apply_batch(rel, &batch);
        }
        for v in view_names {
            assert_eq!(
                real.view_contents(&v).sorted(),
                sim.view_contents(&v).sorted(),
                "view {v} diverged"
            );
        }
    }

    #[test]
    fn unknown_relation_batches_are_ignored() {
        let plan = compile_recursive("Q", &example_query());
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        let dplan = compile_distributed(&plan, &spec, OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 2);
        let stats = cluster.apply_batch(
            "UNRELATED",
            &Relation::from_pairs(Schema::new(["X"]), vec![(tuple![1], 1.0)]),
        );
        assert_eq!(stats.stages, 0);
        assert!(cluster.query_result().is_empty());
    }

    #[test]
    fn workers_shut_down_cleanly_on_drop() {
        let plan = compile_recursive("Q", &example_query());
        let spec = PartitioningSpec::heuristic(&plan, &["OK", "CK"]);
        let dplan = compile_distributed(&plan, &spec, OptLevel::O3);
        let mut cluster = ThreadedCluster::new(dplan, 8);
        for (rel, batch) in batches() {
            cluster.apply_batch(rel, &batch);
        }
        drop(cluster); // must not hang or panic
    }
}
