//! # hotdog-serve
//!
//! Multi-tenant standing-query subscriptions with **shared-plan fan-out**:
//! many clients register parameterized standing queries over the shared
//! base relations and receive *pushed incremental view updates* — deltas,
//! not snapshots — after each committed batch.
//!
//! The scale lever is shared-plan maintenance (the DBToaster view-reuse
//! argument applied at the serving layer): all subscribers to one *query
//! shape* are backed by a **single trigger program** on one backend.  The
//! per-subscriber work is a cheap post-trigger delta-split — a parameter
//! filter over the captured view delta — so N subscribers cost one
//! maintenance pass plus O(delta × N) row filtering, not N maintenance
//! passes.
//!
//! ## Life of a delta
//!
//! 1. A batch is admitted to the shape's backend
//!    ([`SubscriptionHub::apply_batch`]) and executes under the normal
//!    trigger program.
//! 2. Every statement applied to a captured view partition is recorded in
//!    the node's **capture log**
//!    ([`hotdog_distributed::capture`]) in exact application order.
//! 3. [`SubscriptionHub::pump`] commits the watermark, drains the logs
//!    over the `TakeCaptured` protocol round, and splits the captured
//!    statement stream per subscriber through its [`ParamFilter`].
//! 4. Each subscriber replays its [`ViewDelta`]s into a
//!    [`SubscriberView`]; because the log preserves the statement stream
//!    (ops, order, and per-node part boundaries), the reconstruction is
//!    **bit-for-bit** identical to a fresh `view_contents` read of the
//!    parameterized view — the subscription differential oracle asserts
//!    exactly that across all three backends.
//!
//! Fault recovery breaks capture continuity (replay would duplicate
//! entries); the driver detects the recovery epoch change and emits a
//! `resync` batch — full snapshot parts as `SetTo` ops — so subscribers
//! reset instead of accumulating: no gaps, no duplicates.
//!
//! The TCP protocol extension (`Subscribe`/`Unsubscribe`/`ViewDelta`
//! frames over the bit-preserving codec) lives in [`net`].

#![forbid(unsafe_code)]

pub mod net;

pub use net::{serve_connection, serve_subscriptions, ClientMsg, ServerMsg, SubscribeClient};

use hotdog_algebra::expr::Expr;
use hotdog_algebra::relation::Relation;
use hotdog_algebra::schema::Schema;
use hotdog_algebra::value::Value;
use hotdog_distributed::{
    compile_distributed, Backend, CaptureBatch, DeltaCapture, DistributedPlan, OptLevel,
    PartitioningSpec, ViewAccumulator,
};
use hotdog_ivm::{compile_recursive, StmtOp};
use std::collections::HashMap;

/// A registered query shape: the query all its subscribers share, plus
/// what the compiler needs to build the one trigger program backing them.
#[derive(Clone, Debug)]
pub struct QueryShape {
    /// Shape key: subscribers naming the same shape share one program.
    pub name: String,
    /// The standing query.
    pub query: Expr,
    /// Candidate partitioning columns, decreasing cardinality.
    pub partition_keys: Vec<String>,
    /// Distributed-compiler optimization level.
    pub opt: OptLevel,
}

impl QueryShape {
    pub fn new(
        name: impl Into<String>,
        query: Expr,
        partition_keys: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        QueryShape {
            name: name.into(),
            query,
            partition_keys: partition_keys.into_iter().map(Into::into).collect(),
            opt: OptLevel::O3,
        }
    }

    /// Compile this shape's single shared trigger program.
    pub fn compile(&self) -> DistributedPlan {
        let plan = compile_recursive(&self.name, &self.query);
        let keys: Vec<&str> = self.partition_keys.iter().map(String::as_str).collect();
        let spec = PartitioningSpec::heuristic(&plan, &keys);
        compile_distributed(&plan, &spec, self.opt)
    }
}

/// A subscriber's parameter binding over the shared view: either the whole
/// view, or the rows whose `column` equals a constant.  Filtering selects
/// whole rows (never rewrites multiplicities), so a filtered replay is
/// bit-identical to filtering the fully replayed view.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamFilter {
    binding: Option<(String, Value)>,
}

impl ParamFilter {
    /// Subscribe to the entire view.
    pub fn all() -> Self {
        ParamFilter { binding: None }
    }

    /// Subscribe to the rows where `column == value`.
    pub fn equals(column: impl Into<String>, value: Value) -> Self {
        ParamFilter {
            binding: Some((column.into(), value)),
        }
    }

    /// The binding, if any.
    pub fn binding(&self) -> Option<(&str, &Value)> {
        self.binding.as_ref().map(|(c, v)| (c.as_str(), v))
    }

    /// Restrict a relation to the matching rows.  Surviving rows keep
    /// their exact multiplicity bits.
    pub fn apply(&self, schema: &Schema, rel: &Relation) -> Relation {
        let Some((column, value)) = &self.binding else {
            return rel.clone();
        };
        let Some(pos) = schema.position(column) else {
            // A binding over a column the view doesn't expose matches
            // nothing (loudly empty beats silently unfiltered).
            return Relation::new(schema.clone());
        };
        let mut out = Relation::new(schema.clone());
        for (t, m) in rel.iter() {
            if t.get(pos) == value {
                out.add(t.clone(), m);
            }
        }
        out
    }

    /// Restrict one captured part's op stream.  `SetTo` snapshots filter
    /// to filtered snapshots; `AddTo` deltas to filtered deltas — empty
    /// `AddTo`s are dropped (a no-op for replay), empty `SetTo`s kept
    /// (they still clear the part).
    fn split_ops(&self, schema: &Schema, ops: &[(StmtOp, Relation)]) -> Vec<(StmtOp, Relation)> {
        ops.iter()
            .filter_map(|(op, rel)| {
                let filtered = self.apply(schema, rel);
                match op {
                    StmtOp::AddTo if filtered.is_empty() => None,
                    _ => Some((*op, filtered)),
                }
            })
            .collect()
    }
}

/// Unique handle of one subscription within a hub.
pub type SubscriptionId = u64;

/// One pushed incremental update for one subscriber: the parameter-filtered
/// captured statement stream of its view, split per node part, stamped
/// with the watermark it brings the subscriber up to.
#[derive(Clone, Debug)]
pub struct ViewDelta {
    pub subscription: SubscriptionId,
    pub view: String,
    /// Committed batches this delta brings the subscriber up to; a delta
    /// is only ever emitted after its batches' watermark commit.
    pub watermark: u64,
    /// When set, the subscriber must reset its accumulator and rebuild
    /// from the `SetTo` snapshot parts (initial subscription, or capture
    /// continuity broken by fault recovery).
    pub resync: bool,
    /// Per-part `(op, relation)` entries in application order.
    pub parts: Vec<Vec<(StmtOp, Relation)>>,
}

/// Client-side accumulator: replays [`ViewDelta`]s into per-part
/// relations whose ordered merge reconstructs the parameterized view
/// bit-for-bit.
#[derive(Clone, Debug)]
pub struct SubscriberView {
    schema: Schema,
    parts: Vec<Relation>,
    watermark: u64,
    deltas_applied: u64,
}

impl SubscriberView {
    pub fn new(schema: Schema) -> Self {
        SubscriberView {
            schema,
            parts: Vec::new(),
            watermark: 0,
            deltas_applied: 0,
        }
    }

    /// Replay one pushed delta.
    pub fn apply(&mut self, delta: &ViewDelta) {
        if delta.resync {
            self.parts.clear();
        }
        if self.parts.len() < delta.parts.len() {
            self.parts
                .resize_with(delta.parts.len(), || Relation::new(self.schema.clone()));
        }
        for (part, ops) in self.parts.iter_mut().zip(&delta.parts) {
            for (op, rel) in ops {
                match op {
                    StmtOp::AddTo => part.merge(rel),
                    StmtOp::SetTo => *part = rel.clone(),
                }
            }
        }
        self.watermark = self.watermark.max(delta.watermark);
        self.deltas_applied += 1;
    }

    /// The reconstructed parameterized view (parts merged in node order).
    pub fn contents(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for part in &self.parts {
            out.merge(part);
        }
        out
    }

    /// Committed batches this view reflects.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Deltas replayed so far.
    pub fn deltas_applied(&self) -> u64 {
        self.deltas_applied
    }
}

/// One shape's shared backend plus its subscriber table.
struct ShapeEntry<B> {
    backend: B,
    view: String,
    schema: Schema,
    subscribers: HashMap<SubscriptionId, ParamFilter>,
    /// Hub-side full-view accumulator, advanced at every pump: the cut a
    /// mid-stream subscriber's initial snapshot is taken from.
    acc: ViewAccumulator,
    /// Watermark as of the last pump (what `acc` reflects).
    watermark: u64,
}

/// The serving front-end: routes subscriptions onto shared per-shape
/// backends and fans captured deltas out to subscribers.
///
/// Generic over the backend so the same hub runs on the simulated cluster,
/// the threaded runtime, or TCP worker processes; `make_backend` builds
/// one backend per *shape* (not per subscriber) from the shape's compiled
/// plan.
pub struct SubscriptionHub<B, F>
where
    B: Backend + DeltaCapture,
    F: FnMut(&QueryShape, DistributedPlan) -> B,
{
    make_backend: F,
    shapes: HashMap<String, ShapeEntry<B>>,
    /// `subscription id -> shape name` (ids are hub-unique).
    routes: HashMap<SubscriptionId, String>,
    next_id: SubscriptionId,
}

impl<B, F> SubscriptionHub<B, F>
where
    B: Backend + DeltaCapture,
    F: FnMut(&QueryShape, DistributedPlan) -> B,
{
    pub fn new(make_backend: F) -> Self {
        SubscriptionHub {
            make_backend,
            shapes: HashMap::new(),
            routes: HashMap::new(),
            next_id: 1,
        }
    }

    /// Number of live trigger programs (== number of distinct subscribed
    /// shapes; the shared-plan invariant the unit tests pin).
    pub fn active_programs(&self) -> usize {
        self.shapes.len()
    }

    /// Number of live subscriptions across all shapes.
    pub fn subscriber_count(&self) -> usize {
        self.shapes.values().map(|e| e.subscribers.len()).sum()
    }

    /// Register a subscriber.  The first subscriber to a shape compiles
    /// the shape and spins up its backend (with capture armed); later
    /// subscribers reuse the same program.  Returns the subscription id
    /// and the initial `resync` delta cutting the subscriber in at the
    /// shape's current watermark.
    pub fn subscribe(
        &mut self,
        shape: &QueryShape,
        filter: ParamFilter,
    ) -> (SubscriptionId, ViewDelta) {
        if !self.shapes.contains_key(&shape.name) {
            let dplan = shape.compile();
            let view = dplan.plan.top_view.clone();
            let schema = dplan.schema_of(&view).unwrap_or_default();
            let mut backend = (self.make_backend)(shape, dplan);
            backend.enable_capture(std::slice::from_ref(&view));
            self.shapes.insert(
                shape.name.clone(),
                ShapeEntry {
                    backend,
                    view,
                    schema: schema.clone(),
                    subscribers: HashMap::new(),
                    acc: ViewAccumulator::new(schema),
                    watermark: 0,
                },
            );
        }
        let entry = self.shapes.get_mut(&shape.name).expect("just inserted");
        let id = self.next_id;
        self.next_id += 1;
        // Initial state: a resync delta with one filtered SetTo snapshot
        // per part, cut from the hub accumulator (== the view as of the
        // last pump, exactly what subsequent deltas continue from).
        let parts = entry
            .acc
            .parts()
            .iter()
            .map(|part| vec![(StmtOp::SetTo, filter.apply(&entry.schema, part))])
            .collect();
        let initial = ViewDelta {
            subscription: id,
            view: entry.view.clone(),
            watermark: entry.watermark,
            resync: true,
            parts,
        };
        entry.subscribers.insert(id, filter);
        self.routes.insert(id, shape.name.clone());
        if let Some(t) = entry.backend.telemetry() {
            t.gauge("serve.subscribers")
                .set(entry.subscribers.len() as u64);
        }
        (id, initial)
    }

    /// Drop a subscription.  The last subscriber of a shape retires its
    /// trigger program (the backend is torn down).  Returns whether the id
    /// was live.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let Some(shape) = self.routes.remove(&id) else {
            return false;
        };
        let Some(entry) = self.shapes.get_mut(&shape) else {
            return false;
        };
        entry.subscribers.remove(&id);
        if let Some(t) = entry.backend.telemetry() {
            t.gauge("serve.subscribers")
                .set(entry.subscribers.len() as u64);
        }
        if entry.subscribers.is_empty() {
            self.shapes.remove(&shape);
        }
        true
    }

    /// The schema of a subscription's view.
    pub fn schema_of(&self, id: SubscriptionId) -> Option<&Schema> {
        let shape = self.routes.get(&id)?;
        self.shapes.get(shape).map(|e| &e.schema)
    }

    /// Admit one batch of updates to every shape's backend (shapes over
    /// the same base relations each maintain their own view of it).
    pub fn apply_batch(&mut self, relation: &str, batch: &Relation) {
        for entry in self.shapes.values_mut() {
            entry.backend.apply_batch(relation, batch);
        }
    }

    /// Commit and fan out: for every shape, flush the backend, drain the
    /// capture logs (watermark-consistent), advance the hub accumulator,
    /// and split the captured stream per subscriber.  Returns the deltas
    /// to push, in deterministic (shape name, subscription id) order.
    pub fn pump(&mut self) -> Vec<ViewDelta> {
        let mut out = Vec::new();
        let mut names: Vec<String> = self.shapes.keys().cloned().collect();
        names.sort();
        for name in names {
            let entry = self.shapes.get_mut(&name).expect("shape present");
            entry.backend.flush();
            let captured: CaptureBatch = entry.backend.take_captured();
            entry.watermark = captured.watermark;
            let telemetry = entry.backend.telemetry();
            if let Some(t) = &telemetry {
                t.counter("serve.pump_rounds").inc();
            }
            let Some(view) = captured.views.iter().find(|v| v.name == entry.view) else {
                continue;
            };
            entry.acc.apply(view, captured.resync);
            let mut ids: Vec<SubscriptionId> = entry.subscribers.keys().copied().collect();
            ids.sort_unstable();
            // The per-subscriber split is the serving layer's contribution
            // to the batch's span tree: a "fanout.split" child under the
            // most recent batch root (absent for backends without tracing,
            // or before the first batch).
            let span = telemetry
                .as_ref()
                .and_then(|t| t.begin_span(entry.backend.trace_scope(), "fanout.split"));
            let mut pushed = 0u64;
            for id in ids {
                let filter = &entry.subscribers[&id];
                let parts: Vec<Vec<(StmtOp, Relation)>> = view
                    .parts
                    .iter()
                    .map(|ops| filter.split_ops(&entry.schema, ops))
                    .collect();
                // Quiet windows push nothing (a resync must always land,
                // even when the snapshot is empty).
                if !captured.resync && parts.iter().all(Vec::is_empty) {
                    continue;
                }
                pushed += 1;
                out.push(ViewDelta {
                    subscription: id,
                    view: entry.view.clone(),
                    watermark: captured.watermark,
                    resync: captured.resync,
                    parts,
                });
            }
            if let Some(t) = &telemetry {
                t.finish_span(span);
                t.counter("serve.deltas_pushed").add(pushed);
            }
        }
        out
    }

    /// Mutable access to a shape's shared backend (oracle assertions and
    /// fault injection reach through here).
    pub fn backend(&mut self, shape: &str) -> Option<&mut B> {
        self.shapes.get_mut(shape).map(|e| &mut e.backend)
    }

    /// Direct read of a shape's full view (the oracle's reference path).
    pub fn view_contents(&mut self, shape: &str) -> Option<Relation> {
        let entry = self.shapes.get_mut(shape)?;
        Some(entry.backend.view_contents(&entry.view.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::expr::{join, rel, sum};
    use hotdog_algebra::tuple;
    use hotdog_distributed::{Cluster, ClusterConfig};
    use hotdog_ivm::StmtOp;

    fn shape(name: &str) -> QueryShape {
        QueryShape::new(
            name,
            sum(["B"], join(rel("R", ["A", "B"]), rel("S", ["B", "C"]))),
            ["A"],
        )
    }

    fn hub() -> SubscriptionHub<Cluster, impl FnMut(&QueryShape, DistributedPlan) -> Cluster> {
        SubscriptionHub::new(|_shape: &QueryShape, dplan: DistributedPlan| {
            Cluster::new(dplan, ClusterConfig::with_workers(3))
        })
    }

    fn feed(
        hub: &mut SubscriptionHub<Cluster, impl FnMut(&QueryShape, DistributedPlan) -> Cluster>,
    ) {
        hub.apply_batch(
            "R",
            &Relation::from_pairs(
                Schema::new(["A", "B"]),
                (0..20i64).map(|i| (tuple![i, i % 4], 1.0)),
            ),
        );
        hub.apply_batch(
            "S",
            &Relation::from_pairs(
                Schema::new(["B", "C"]),
                (0..8i64).map(|i| (tuple![i % 4, i], 1.0)),
            ),
        );
    }

    #[test]
    fn k_subscribers_same_shape_share_one_program() {
        let mut h = hub();
        let s = shape("Q");
        let mut ids = Vec::new();
        for k in 0..5i64 {
            let (id, initial) = h.subscribe(&s, ParamFilter::equals("B", Value::from(k)));
            assert!(initial.resync);
            ids.push(id);
        }
        assert_eq!(h.active_programs(), 1, "K subscribers, one trigger program");
        assert_eq!(h.subscriber_count(), 5);
        // A distinct shape gets its own program.
        let (other, _) = h.subscribe(&shape("Q2"), ParamFilter::all());
        assert_eq!(h.active_programs(), 2);

        // Unsubscribing all but one keeps the program; the last retires it.
        for id in &ids[..4] {
            assert!(h.unsubscribe(*id));
        }
        assert_eq!(h.active_programs(), 2);
        assert!(h.unsubscribe(ids[4]));
        assert_eq!(
            h.active_programs(),
            1,
            "last unsubscribe retires the program"
        );
        assert!(h.unsubscribe(other));
        assert_eq!(h.active_programs(), 0);
        assert!(!h.unsubscribe(ids[0]), "double unsubscribe is a no-op");
    }

    #[test]
    fn pushed_deltas_reconstruct_the_filtered_view_bit_for_bit() {
        let mut h = hub();
        let s = shape("Q");
        let (full_id, init_full) = h.subscribe(&s, ParamFilter::all());
        let (one_id, init_one) = h.subscribe(&s, ParamFilter::equals("B", Value::from(2i64)));
        let schema = h.schema_of(full_id).unwrap().clone();
        let mut full = SubscriberView::new(schema.clone());
        let mut one = SubscriberView::new(schema.clone());
        full.apply(&init_full);
        one.apply(&init_one);
        for _ in 0..3 {
            feed(&mut h);
            for delta in h.pump() {
                if delta.subscription == full_id {
                    full.apply(&delta);
                } else if delta.subscription == one_id {
                    one.apply(&delta);
                }
            }
        }
        let reference = h.view_contents("Q").unwrap();
        assert_eq!(
            full.contents().checksum(),
            reference.checksum(),
            "unfiltered subscriber must reconstruct the view bit-for-bit"
        );
        let filtered = ParamFilter::equals("B", Value::from(2i64)).apply(&schema, &reference);
        assert_eq!(
            one.contents().checksum(),
            filtered.checksum(),
            "filtered subscriber must reconstruct the filtered view bit-for-bit"
        );
    }

    #[test]
    fn no_delta_precedes_its_batch_watermark_commit() {
        let mut h = hub();
        let s = shape("Q");
        let (_id, initial) = h.subscribe(&s, ParamFilter::all());
        assert_eq!(initial.watermark, 0, "nothing committed yet");
        feed(&mut h); // two batches
        let deltas = h.pump();
        assert!(!deltas.is_empty());
        for d in &deltas {
            assert_eq!(
                d.watermark, 2,
                "a delta's watermark must cover every batch whose effects it carries"
            );
        }
        // A pump with nothing new pushes nothing (and commits nothing).
        assert!(h.pump().is_empty());
    }

    #[test]
    fn mid_stream_subscriber_joins_at_the_current_cut() {
        let mut h = hub();
        let s = shape("Q");
        let (early_id, init_early) = h.subscribe(&s, ParamFilter::all());
        let schema = h.schema_of(early_id).unwrap().clone();
        let mut early = SubscriberView::new(schema.clone());
        early.apply(&init_early);
        feed(&mut h);
        for d in h.pump() {
            early.apply(&d);
        }
        // Joins after two committed batches: the initial snapshot must be
        // the current cut, and later deltas continue from it.
        let (late_id, init_late) = h.subscribe(&s, ParamFilter::all());
        assert!(init_late.resync);
        assert_eq!(init_late.watermark, 2);
        let mut late = SubscriberView::new(schema);
        late.apply(&init_late);
        feed(&mut h);
        for d in h.pump() {
            if d.subscription == early_id {
                early.apply(&d);
            } else if d.subscription == late_id {
                late.apply(&d);
            }
        }
        let reference = h.view_contents("Q").unwrap();
        assert_eq!(early.contents().checksum(), reference.checksum());
        assert_eq!(late.contents().checksum(), reference.checksum());
    }

    #[test]
    fn param_filter_drops_empty_addto_but_keeps_setto() {
        let schema = Schema::new(["B"]);
        let f = ParamFilter::equals("B", Value::from(7i64));
        let miss = Relation::from_pairs(schema.clone(), vec![(tuple![1], 1.0)]);
        let ops = vec![(StmtOp::AddTo, miss.clone()), (StmtOp::SetTo, miss)];
        let split = f.split_ops(&schema, &ops);
        assert_eq!(split.len(), 1);
        assert!(matches!(split[0].0, StmtOp::SetTo));
        assert!(split[0].1.is_empty());
    }
}
