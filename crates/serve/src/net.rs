//! The TCP subscription protocol: `Subscribe`/`Unsubscribe`/`ViewDelta`
//! frames over `hotdog-net`'s bit-preserving codec.
//!
//! The wire format reuses the length-prefixed framing and the [`Wire`]
//! encoding of the driver↔worker protocol (floats as raw IEEE-754 bits,
//! relations in canonical sorted order), so a delta decoded by a remote
//! client replays to the **bit-identical** view a local subscriber
//! reconstructs.
//!
//! One request/response conversation per client frame:
//!
//! | client → server | server → client |
//! |---|---|
//! | `Subscribe { shape, binding }` | `SubAck { id, schema, error }`, then `Delta` (initial resync) |
//! | `Unsubscribe { id }` | `Ack { ok }` |
//! | `Publish { relation, batch }` | `Ack { ok: true }` |
//! | `Pump` | `Delta`* then `PumpDone { watermark, deltas }` |
//! | `Close` | (connection ends) |

use crate::{ParamFilter, QueryShape, SubscriptionHub, ViewDelta};
use hotdog_algebra::relation::Relation;
use hotdog_algebra::schema::Schema;
use hotdog_algebra::value::Value;
use hotdog_distributed::{Backend, DeltaCapture, DistributedPlan};
use hotdog_ivm::StmtOp;
use hotdog_net::{recv_msg, send_msg, DecodeError, Reader, Wire};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

/// Client → server subscription-protocol messages.
#[derive(Debug)]
pub enum ClientMsg {
    /// Register a standing query: a server-side shape name plus this
    /// subscriber's parameter binding (`None` = the whole view).
    Subscribe {
        shape: String,
        binding: Option<(String, Value)>,
    },
    Unsubscribe {
        id: u64,
    },
    /// Admit one update batch to the shared base relations (the demo/e2e
    /// ingestion path; production ingestion normally rides its own pipe).
    Publish {
        relation: String,
        batch: Relation,
    },
    /// Commit and fan out: the server pushes every pending delta.
    Pump,
    Close,
}

/// Server → client subscription-protocol messages.
#[derive(Debug)]
pub enum ServerMsg {
    SubAck {
        id: u64,
        schema: Schema,
        error: Option<String>,
    },
    Ack {
        ok: bool,
    },
    Delta(ViewDelta),
    PumpDone {
        deltas: u32,
    },
}

impl Wire for ViewDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.subscription.encode(out);
        self.view.encode(out);
        self.watermark.encode(out);
        self.resync.encode(out);
        self.parts.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ViewDelta {
            subscription: u64::decode(r)?,
            view: String::decode(r)?,
            watermark: u64::decode(r)?,
            resync: bool::decode(r)?,
            parts: Vec::<Vec<(StmtOp, Relation)>>::decode(r)?,
        })
    }
}

impl Wire for ClientMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ClientMsg::Subscribe { shape, binding } => {
                out.push(0);
                shape.encode(out);
                binding.encode(out);
            }
            ClientMsg::Unsubscribe { id } => {
                out.push(1);
                id.encode(out);
            }
            ClientMsg::Publish { relation, batch } => {
                out.push(2);
                relation.encode(out);
                batch.encode(out);
            }
            ClientMsg::Pump => out.push(3),
            ClientMsg::Close => out.push(4),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(ClientMsg::Subscribe {
                shape: String::decode(r)?,
                binding: Option::decode(r)?,
            }),
            1 => Ok(ClientMsg::Unsubscribe {
                id: u64::decode(r)?,
            }),
            2 => Ok(ClientMsg::Publish {
                relation: String::decode(r)?,
                batch: Relation::decode(r)?,
            }),
            3 => Ok(ClientMsg::Pump),
            4 => Ok(ClientMsg::Close),
            tag => Err(DecodeError::BadTag {
                what: "ClientMsg",
                tag,
            }),
        }
    }
}

impl Wire for ServerMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ServerMsg::SubAck { id, schema, error } => {
                out.push(0);
                id.encode(out);
                schema.encode(out);
                error.encode(out);
            }
            ServerMsg::Ack { ok } => {
                out.push(1);
                ok.encode(out);
            }
            ServerMsg::Delta(delta) => {
                out.push(2);
                delta.encode(out);
            }
            ServerMsg::PumpDone { deltas } => {
                out.push(3);
                deltas.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(ServerMsg::SubAck {
                id: u64::decode(r)?,
                schema: Schema::decode(r)?,
                error: Option::decode(r)?,
            }),
            1 => Ok(ServerMsg::Ack {
                ok: bool::decode(r)?,
            }),
            2 => Ok(ServerMsg::Delta(ViewDelta::decode(r)?)),
            3 => Ok(ServerMsg::PumpDone {
                deltas: u32::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                what: "ServerMsg",
                tag,
            }),
        }
    }
}

/// Serve the subscription protocol to one connected client until it sends
/// `Close` (or hangs up).  `shapes` is the server's registered shape
/// catalog; clients subscribe by shape name and bind parameters.
pub fn serve_connection<B, F>(
    stream: TcpStream,
    hub: &mut SubscriptionHub<B, F>,
    shapes: &[QueryShape],
) -> io::Result<()>
where
    B: Backend + DeltaCapture,
    F: FnMut(&QueryShape, DistributedPlan) -> B,
{
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let msg: ClientMsg = match recv_msg(&mut reader) {
            Ok(msg) => msg,
            // Clean hangup between frames ends the session.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match msg {
            ClientMsg::Subscribe { shape, binding } => {
                match shapes.iter().find(|s| s.name == shape) {
                    Some(s) => {
                        let filter = match binding {
                            Some((col, val)) => ParamFilter::equals(col, val),
                            None => ParamFilter::all(),
                        };
                        let (id, initial) = hub.subscribe(s, filter);
                        let schema = hub.schema_of(id).cloned().unwrap_or_default();
                        send_msg(
                            &mut writer,
                            &ServerMsg::SubAck {
                                id,
                                schema,
                                error: None,
                            },
                        )?;
                        send_msg(&mut writer, &ServerMsg::Delta(initial))?;
                    }
                    None => send_msg(
                        &mut writer,
                        &ServerMsg::SubAck {
                            id: 0,
                            schema: Schema::empty(),
                            error: Some(format!("unknown shape {shape:?}")),
                        },
                    )?,
                }
            }
            ClientMsg::Unsubscribe { id } => {
                let ok = hub.unsubscribe(id);
                send_msg(&mut writer, &ServerMsg::Ack { ok })?;
            }
            ClientMsg::Publish { relation, batch } => {
                hub.apply_batch(&relation, &batch);
                send_msg(&mut writer, &ServerMsg::Ack { ok: true })?;
            }
            ClientMsg::Pump => {
                let deltas = hub.pump();
                let n = deltas.len() as u32;
                for delta in deltas {
                    send_msg(&mut writer, &ServerMsg::Delta(delta))?;
                }
                send_msg(&mut writer, &ServerMsg::PumpDone { deltas: n })?;
            }
            ClientMsg::Close => {
                writer.flush()?;
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

/// Accept clients on `listener` one at a time, serving each to completion
/// (the single-tenant demo server; a production front-end would multiplex).
pub fn serve_subscriptions<B, F>(
    listener: TcpListener,
    hub: &mut SubscriptionHub<B, F>,
    shapes: &[QueryShape],
    max_clients: usize,
) -> io::Result<()>
where
    B: Backend + DeltaCapture,
    F: FnMut(&QueryShape, DistributedPlan) -> B,
{
    for _ in 0..max_clients {
        let (stream, _addr) = listener.accept()?;
        serve_connection(stream, hub, shapes)?;
    }
    Ok(())
}

/// A blocking subscription client: one TCP connection speaking the
/// request/response conversation above.
pub struct SubscribeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl SubscribeClient {
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(SubscribeClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn send(&mut self, msg: &ClientMsg) -> io::Result<()> {
        send_msg(&mut self.writer, msg)?;
        self.writer.flush()
    }

    /// Register a standing query; returns the subscription id, the view
    /// schema, and the initial resync delta.
    pub fn subscribe(
        &mut self,
        shape: &str,
        binding: Option<(String, Value)>,
    ) -> io::Result<(u64, Schema, ViewDelta)> {
        self.send(&ClientMsg::Subscribe {
            shape: shape.to_string(),
            binding,
        })?;
        match recv_msg(&mut self.reader)? {
            ServerMsg::SubAck {
                error: Some(err), ..
            } => Err(io::Error::new(io::ErrorKind::InvalidInput, err)),
            ServerMsg::SubAck { id, schema, .. } => match recv_msg(&mut self.reader)? {
                ServerMsg::Delta(initial) => Ok((id, schema, initial)),
                other => Err(unexpected(&other)),
            },
            other => Err(unexpected(&other)),
        }
    }

    pub fn unsubscribe(&mut self, id: u64) -> io::Result<bool> {
        self.send(&ClientMsg::Unsubscribe { id })?;
        match recv_msg(&mut self.reader)? {
            ServerMsg::Ack { ok } => Ok(ok),
            other => Err(unexpected(&other)),
        }
    }

    /// Admit one update batch to the server's base relations.
    pub fn publish(&mut self, relation: &str, batch: &Relation) -> io::Result<()> {
        self.send(&ClientMsg::Publish {
            relation: relation.to_string(),
            batch: batch.clone(),
        })?;
        match recv_msg(&mut self.reader)? {
            ServerMsg::Ack { ok: true } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to commit and push; returns every delta it fanned
    /// out (across all of this connection's subscriptions).
    pub fn pump(&mut self) -> io::Result<Vec<ViewDelta>> {
        self.send(&ClientMsg::Pump)?;
        let mut deltas = Vec::new();
        loop {
            match recv_msg(&mut self.reader)? {
                ServerMsg::Delta(d) => deltas.push(d),
                ServerMsg::PumpDone { deltas: n } => {
                    debug_assert_eq!(n as usize, deltas.len());
                    return Ok(deltas);
                }
                other => return Err(unexpected(&other)),
            }
        }
    }

    pub fn close(mut self) -> io::Result<()> {
        self.send(&ClientMsg::Close)
    }
}

fn unexpected(msg: &ServerMsg) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected server message: {msg:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_net::{decode_from_slice, encode_to_vec};

    #[test]
    fn subscription_messages_round_trip() {
        let delta = ViewDelta {
            subscription: 7,
            view: "Q".into(),
            watermark: 3,
            resync: true,
            parts: vec![
                vec![(
                    StmtOp::SetTo,
                    Relation::from_pairs(
                        Schema::new(["B"]),
                        vec![(hotdog_algebra::tuple![1], 2.5)],
                    ),
                )],
                vec![],
            ],
        };
        let bytes = encode_to_vec(&ServerMsg::Delta(delta.clone()));
        let decoded: ServerMsg = decode_from_slice(&bytes).unwrap();
        let ServerMsg::Delta(d) = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(d.subscription, delta.subscription);
        assert_eq!(d.view, delta.view);
        assert_eq!(d.watermark, delta.watermark);
        assert_eq!(d.resync, delta.resync);
        assert_eq!(d.parts.len(), 2);
        assert_eq!(d.parts[0][0].1.checksum(), delta.parts[0][0].1.checksum());

        let sub = ClientMsg::Subscribe {
            shape: "Q6".into(),
            binding: Some(("B".into(), Value::from(3i64))),
        };
        let bytes = encode_to_vec(&sub);
        let decoded: ClientMsg = decode_from_slice(&bytes).unwrap();
        match decoded {
            ClientMsg::Subscribe { shape, binding } => {
                assert_eq!(shape, "Q6");
                assert_eq!(binding, Some(("B".into(), Value::from(3i64))));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }
}
