//! Column-oriented batches and vectorized selection kernels (Section 5.2.2).
//!
//! Input update batches and shuffle buffers are kept in a columnar layout:
//! filtering on simple static predicates touches only the referenced columns
//! (better locality), and serialization for the network writes contiguous
//! per-column arrays.  The batched trigger path first *filters* the batch on
//! the query's static conditions, then *pre-aggregates* it onto the columns
//! actually used by the maintenance code (Section 3.3, "Preprocessing
//! batches"), and only then runs the maintenance statements.
//!
//! The free functions at the bottom ([`compact_column`], [`compact_mults`],
//! [`gather_column`]) are the *kernels* of the vectorized trigger
//! interpreter (`hotdog-exec`'s `vectorized` module): a filter predicate is
//! evaluated once over a column slice into a keep-mask and every live column
//! is compacted through it in one pass; a join probe produces a gather index
//! (which input row each output row fans out from) and every live column is
//! gathered through it in one pass.  One dispatch per operator per batch,
//! instead of one environment walk per tuple.

use hotdog_algebra::relation::Relation;
use hotdog_algebra::ring::Mult;
use hotdog_algebra::schema::Schema;
use hotdog_algebra::tuple::Tuple;
use hotdog_algebra::value::Value;
use std::collections::HashMap;

/// A batch of updates in columnar layout: one `Vec<Value>` per column plus a
/// multiplicity column (positive = insert, negative = delete).
///
/// ```
/// use hotdog_algebra::schema::Schema;
/// use hotdog_algebra::tuple::Tuple;
/// use hotdog_algebra::value::Value;
/// use hotdog_storage::columnar::ColumnarBatch;
///
/// let batch = ColumnarBatch::from_rows(
///     Schema::new(["a", "b"]),
///     vec![
///         (Tuple(vec![Value::Long(1), Value::Long(10)]), 1.0),
///         (Tuple(vec![Value::Long(2), Value::Long(10)]), -1.0),
///     ],
/// );
/// assert_eq!(batch.len(), 2);
/// // Columns are contiguous: predicates touch only the referenced column.
/// assert_eq!(batch.column("b").unwrap(), &[Value::Long(10), Value::Long(10)]);
/// let kept = batch.filter_column("a", |v| v == &Value::Long(1));
/// assert_eq!(kept.len(), 1);
/// assert_eq!(kept.multiplicities(), &[1.0]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ColumnarBatch {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    mults: Vec<Mult>,
}

impl ColumnarBatch {
    /// Empty batch over a schema.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.len()).map(|_| Vec::new()).collect();
        ColumnarBatch {
            schema,
            columns,
            mults: Vec::new(),
        }
    }

    /// Build from row-oriented (tuple, multiplicity) pairs.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = (Tuple, Mult)>) -> Self {
        let mut batch = ColumnarBatch::new(schema);
        for (t, m) in rows {
            batch.push(&t, m);
        }
        batch
    }

    /// Convert a [`Relation`] into a columnar batch.
    pub fn from_relation(rel: &Relation) -> Self {
        ColumnarBatch::from_rows(
            rel.schema().clone(),
            rel.iter().map(|(t, m)| (t.clone(), m)),
        )
    }

    /// Append one row.
    pub fn push(&mut self, tuple: &Tuple, mult: Mult) {
        debug_assert_eq!(tuple.arity(), self.schema.len());
        for (col, v) in self.columns.iter_mut().zip(tuple.0.iter()) {
            col.push(v.clone());
        }
        self.mults.push(mult);
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.mults.len()
    }

    pub fn is_empty(&self) -> bool {
        self.mults.is_empty()
    }

    /// Row accessor (materializes a tuple).
    pub fn row(&self, i: usize) -> (Tuple, Mult) {
        (
            Tuple(self.columns.iter().map(|c| c[i].clone()).collect()),
            self.mults[i],
        )
    }

    /// Iterate rows as (tuple, multiplicity).
    pub fn rows(&self) -> impl Iterator<Item = (Tuple, Mult)> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Column accessor by name.
    pub fn column(&self, name: &str) -> Option<&[Value]> {
        self.schema
            .position(name)
            .map(|i| self.columns[i].as_slice())
    }

    /// Multiplicity column.
    pub fn multiplicities(&self) -> &[Mult] {
        &self.mults
    }

    /// Keep only rows satisfying `pred`, which receives the values of the
    /// named column.  Operating column-at-a-time mirrors the generated
    /// columnar filtering code of the paper.
    pub fn filter_column(&self, name: &str, pred: impl Fn(&Value) -> bool) -> ColumnarBatch {
        let idx = self
            .schema
            .position(name)
            .unwrap_or_else(|| panic!("column {name} not in batch schema"));
        let keep: Vec<bool> = self.columns[idx].iter().map(pred).collect();
        self.retain_rows(&keep)
    }

    fn retain_rows(&self, keep: &[bool]) -> ColumnarBatch {
        let mut out = ColumnarBatch::new(self.schema.clone());
        for (ci, col) in self.columns.iter().enumerate() {
            out.columns[ci] = col
                .iter()
                .zip(keep)
                .filter(|(_, &k)| k)
                .map(|(v, _)| v.clone())
                .collect();
        }
        out.mults = self
            .mults
            .iter()
            .zip(keep)
            .filter(|(_, &k)| k)
            .map(|(m, _)| *m)
            .collect();
        out
    }

    /// Project onto a subset of columns and sum multiplicities of equal
    /// projected rows — the batch pre-aggregation of Section 3.3.  Returns a
    /// (typically much smaller) row-oriented relation.
    pub fn pre_aggregate(&self, columns: &Schema) -> Relation {
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .position(c)
                    .unwrap_or_else(|| panic!("column {c} not in batch schema"))
            })
            .collect();
        let mut acc: HashMap<Tuple, Mult> = HashMap::new();
        for i in 0..self.len() {
            let key = Tuple(
                positions
                    .iter()
                    .map(|&p| self.columns[p][i].clone())
                    .collect(),
            );
            *acc.entry(key).or_insert(0.0) += self.mults[i];
        }
        Relation::from_pairs(columns.clone(), acc)
    }

    /// Convert back to a row-oriented relation (merging duplicate rows).
    pub fn to_relation(&self) -> Relation {
        Relation::from_pairs(self.schema.clone(), self.rows())
    }

    /// Approximate wire size in bytes of the columnar encoding.
    pub fn serialized_size(&self) -> usize {
        let data: usize = self
            .columns
            .iter()
            .map(|c| c.iter().map(Value::serialized_size).sum::<usize>())
            .sum();
        data + self.mults.len() * 8 + self.schema.len() * 16
    }

    /// Split the batch into `n` chunks of near-equal row counts (used to
    /// spread a batch over workers).
    pub fn split(&self, n: usize) -> Vec<ColumnarBatch> {
        assert!(n > 0);
        let mut out: Vec<ColumnarBatch> = (0..n)
            .map(|_| ColumnarBatch::new(self.schema.clone()))
            .collect();
        for i in 0..self.len() {
            let (t, m) = self.row(i);
            out[i % n].push(&t, m);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Vectorized selection kernels
// ---------------------------------------------------------------------------

/// Keep the values of `src` whose position is `true` in `keep`, in order —
/// the column-at-a-time half of a vectorized filter.  The predicate is
/// evaluated once into a mask, then every live column is compacted through
/// the same mask in one tight pass.
///
/// ```
/// use hotdog_algebra::value::Value;
/// use hotdog_storage::columnar::compact_column;
///
/// let col = vec![Value::Long(1), Value::Long(2), Value::Long(3)];
/// let keep = [true, false, true];
/// assert_eq!(
///     compact_column(&col, &keep),
///     vec![Value::Long(1), Value::Long(3)]
/// );
/// ```
pub fn compact_column(src: &[Value], keep: &[bool]) -> Vec<Value> {
    debug_assert_eq!(src.len(), keep.len());
    src.iter()
        .zip(keep)
        .filter(|(_, &k)| k)
        .map(|(v, _)| v.clone())
        .collect()
}

/// [`compact_column`] for the multiplicity column (plain `f64`s).
///
/// ```
/// use hotdog_storage::columnar::compact_mults;
///
/// assert_eq!(compact_mults(&[1.0, -2.0, 3.0], &[true, false, true]), vec![1.0, 3.0]);
/// ```
pub fn compact_mults(src: &[Mult], keep: &[bool]) -> Vec<Mult> {
    debug_assert_eq!(src.len(), keep.len());
    src.iter()
        .zip(keep)
        .filter(|(_, &k)| k)
        .map(|(m, _)| *m)
        .collect()
}

/// Gather `src[idx[j]]` for each output row `j` — the column-at-a-time half
/// of a join probe's fan-out.  The probe loop records, per output row, which
/// input row it fans out from; every previously bound column is then gathered
/// through that index vector in one pass instead of being re-materialized
/// tuple by tuple.
///
/// ```
/// use hotdog_algebra::value::Value;
/// use hotdog_storage::columnar::gather_column;
///
/// let col = vec![Value::Long(10), Value::Long(20)];
/// // Row 0 matched twice, row 1 once.
/// assert_eq!(
///     gather_column(&col, &[0, 0, 1]),
///     vec![Value::Long(10), Value::Long(10), Value::Long(20)]
/// );
/// ```
pub fn gather_column(src: &[Value], idx: &[u32]) -> Vec<Value> {
    idx.iter().map(|&i| src[i as usize].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::tuple;

    fn sample() -> ColumnarBatch {
        ColumnarBatch::from_rows(
            Schema::new(["a", "b"]),
            vec![
                (tuple![1, 10], 1.0),
                (tuple![2, 10], 1.0),
                (tuple![3, 20], -1.0),
                (tuple![1, 10], 2.0),
            ],
        )
    }

    #[test]
    fn push_and_row_round_trip() {
        let b = sample();
        assert_eq!(b.len(), 4);
        assert_eq!(b.row(2), (tuple![3, 20], -1.0));
    }

    #[test]
    fn filter_column_keeps_matching_rows() {
        let b = sample().filter_column("b", |v| v == &Value::Long(10));
        assert_eq!(b.len(), 3);
        assert!(b.rows().all(|(t, _)| t.get(1) == &Value::Long(10)));
    }

    #[test]
    fn pre_aggregate_merges_duplicates() {
        let r = sample().pre_aggregate(&Schema::new(["b"]));
        assert_eq!(r.get(&tuple![10]), 4.0);
        assert_eq!(r.get(&tuple![20]), -1.0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn pre_aggregate_can_cancel_out() {
        let b = ColumnarBatch::from_rows(
            Schema::new(["a"]),
            vec![(tuple![1], 1.0), (tuple![1], -1.0)],
        );
        assert!(b.pre_aggregate(&Schema::new(["a"])).is_empty());
    }

    #[test]
    fn to_relation_merges_rows() {
        let r = sample().to_relation();
        assert_eq!(r.get(&tuple![1, 10]), 3.0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn split_partitions_all_rows() {
        let parts = sample().split(3);
        assert_eq!(parts.iter().map(ColumnarBatch::len).sum::<usize>(), 4);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn serialized_size_positive() {
        assert!(sample().serialized_size() > 0);
        assert!(ColumnarBatch::new(Schema::new(["a"])).serialized_size() > 0);
    }

    #[test]
    fn column_accessor_by_name() {
        let b = sample();
        assert_eq!(b.column("a").unwrap().len(), 4);
        assert!(b.column("zzz").is_none());
    }
}
