//! # hotdog-storage
//!
//! Specialized data structures for materialized views and update batches
//! (Section 5.2 of the paper):
//!
//! * [`pool::RecordPool`] — the multi-indexed record pool used for dynamic
//!   materialized views, with a unique hash index over the full key and
//!   non-unique hash indexes for `slice` access patterns;
//! * [`columnar::ColumnarBatch`] — column-oriented update batches supporting
//!   static-predicate filtering and batch pre-aggregation.
//!
//! The [`columnar`] module also exports the **vectorized kernels**
//! ([`columnar::compact_column`], [`columnar::compact_mults`],
//! [`columnar::gather_column`]) that the trigger interpreter's columnar
//! fast path (`hotdog_exec::vectorized`) applies to whole column slices —
//! one dispatch per operator per batch instead of one per tuple.  They are
//! plain functions over `&[Value]` so both the batch admission path and
//! the trigger executor share one implementation.
//!
//! Everything here is layout, not policy: which index a plan probes, or
//! whether a statement runs row-at-a-time or vectorized, is decided in
//! `hotdog-exec`; this crate guarantees the two access paths observe the
//! same bytes in the same order.

#![forbid(unsafe_code)]

pub mod columnar;
pub mod pool;

pub use columnar::ColumnarBatch;
pub use pool::{PoolCounters, RecordPool};

#[cfg(test)]
mod proptests {
    use crate::pool::RecordPool;
    use hotdog_algebra::relation::Relation;
    use hotdog_algebra::schema::Schema;
    use hotdog_algebra::tuple::Tuple;
    use hotdog_algebra::value::Value;
    use proptest::prelude::*;

    /// Arbitrary update sequences over a small key domain.
    fn ops_strategy() -> impl Strategy<Value = Vec<(i64, i64, f64)>> {
        prop::collection::vec((0i64..20, 0i64..5, -3.0f64..3.0), 0..200)
    }

    proptest! {
        /// A record pool must behave exactly like the reference hash-map
        /// relation under an arbitrary sequence of `update` operations.
        #[test]
        fn pool_matches_reference_relation(ops in ops_strategy()) {
            let mut pool = RecordPool::with_secondary_indexes(2, &[vec![1]]);
            let mut reference = Relation::new(Schema::new(["a", "b"]));
            for (a, b, m) in ops {
                let t = Tuple(vec![Value::Long(a), Value::Long(b)]);
                pool.update(t.clone(), m);
                reference.add(t, m);
            }
            prop_assert_eq!(pool.len(), reference.len());
            for (t, m) in reference.iter() {
                prop_assert!((pool.get(t) - m).abs() < 1e-6);
            }
            // Slices through the secondary index agree with a filtered scan
            // of the reference.
            for b in 0i64..5 {
                let mut got = 0.0;
                pool.slice(&[1], &[Value::Long(b)], &mut |_, m| got += m);
                let want: f64 = reference
                    .iter()
                    .filter(|(t, _)| t.get(1) == &Value::Long(b))
                    .map(|(_, m)| m)
                    .sum();
                prop_assert!((got - want).abs() < 1e-6);
            }
        }

        /// Columnar pre-aggregation preserves per-group totals.
        #[test]
        fn pre_aggregation_preserves_group_totals(
            rows in prop::collection::vec((0i64..10, 0i64..10, -2.0f64..2.0), 0..100)
        ) {
            use crate::columnar::ColumnarBatch;
            let schema = Schema::new(["a", "b"]);
            let batch = ColumnarBatch::from_rows(
                schema,
                rows.iter().map(|(a, b, m)| {
                    (Tuple(vec![Value::Long(*a), Value::Long(*b)]), *m)
                }),
            );
            let agg = batch.pre_aggregate(&Schema::new(["b"]));
            for b in 0i64..10 {
                let want: f64 = rows.iter().filter(|(_, rb, _)| *rb == b).map(|(_, _, m)| m).sum();
                let got = agg.get(&Tuple(vec![Value::Long(b)]));
                prop_assert!((got - want).abs() < 1e-6);
            }
        }
    }
}
