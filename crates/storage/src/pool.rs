//! Record pools: the multi-indexed in-memory structure the paper uses for
//! dynamic materialized views (Section 5.2, Figure 6).
//!
//! A record pool stores fixed-format records (key tuple + aggregate value)
//! in a slab that recycles free slots, with
//!
//! * a **unique hash index** over the full key supporting `get`, `update`,
//!   `insert` and `delete`, and
//! * any number of **non-unique hash indexes** over column subsets supporting
//!   `slice` (iterate all records matching a partial key).
//!
//! Which secondary indexes exist is decided at compile time by the access
//! pattern analysis in `hotdog-ivm` (case (3) of Section 5.1: relational
//! terms with some-but-not-all columns bound become `slice` operations).

use hotdog_algebra::ring::{Mult, MULT_EPSILON};
use hotdog_algebra::tuple::Tuple;
use hotdog_algebra::value::Value;
use std::cell::Cell;
use std::collections::HashMap;

/// A record: the key tuple plus its multiplicity (aggregate value).
#[derive(Clone, Debug)]
struct Record {
    key: Tuple,
    value: Mult,
}

/// A non-unique hash index over a projection of the key columns.
#[derive(Clone, Debug, Default)]
struct SecondaryIndex {
    /// Positions (within the key tuple) this index is built on.
    positions: Vec<usize>,
    /// Projected key -> slots of matching records.
    buckets: HashMap<Tuple, Vec<usize>>,
}

impl SecondaryIndex {
    fn project(&self, key: &Tuple) -> Tuple {
        key.project(&self.positions)
    }

    fn insert(&mut self, key: &Tuple, slot: usize) {
        self.buckets
            .entry(self.project(key))
            .or_default()
            .push(slot);
    }

    fn remove(&mut self, key: &Tuple, slot: usize) {
        let pk = self.project(key);
        if let Some(v) = self.buckets.get_mut(&pk) {
            if let Some(pos) = v.iter().position(|&s| s == slot) {
                v.swap_remove(pos);
            }
            if v.is_empty() {
                self.buckets.remove(&pk);
            }
        }
    }
}

/// Operation counters for a pool; these stand in for the hardware counters
/// of the paper's cache-locality experiment (Table 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    pub lookups: u64,
    pub slices: u64,
    pub scans: u64,
    pub inserts: u64,
    pub updates: u64,
    pub deletes: u64,
    pub slots_touched: u64,
}

impl PoolCounters {
    pub fn add(&mut self, o: &PoolCounters) {
        self.lookups += o.lookups;
        self.slices += o.slices;
        self.scans += o.scans;
        self.inserts += o.inserts;
        self.updates += o.updates;
        self.deletes += o.deletes;
        self.slots_touched += o.slots_touched;
    }

    /// Total index probe count — a proxy for last-level-cache references.
    pub fn probes(&self) -> u64 {
        self.lookups + self.slices + self.inserts + self.updates + self.deletes
    }
}

/// A multi-indexed record pool storing one materialized view.
#[derive(Clone, Debug, Default)]
pub struct RecordPool {
    arity: usize,
    slots: Vec<Option<Record>>,
    free: Vec<usize>,
    primary: HashMap<Tuple, usize>,
    secondary: Vec<SecondaryIndex>,
    counters: Cell<PoolCounters>,
}

impl RecordPool {
    /// Create an empty pool for records of the given arity.
    pub fn new(arity: usize) -> Self {
        RecordPool {
            arity,
            ..Default::default()
        }
    }

    /// Create a pool and declare the secondary (non-unique) indexes it should
    /// maintain, each given as the key-column positions it covers.
    pub fn with_secondary_indexes(arity: usize, indexes: &[Vec<usize>]) -> Self {
        let mut pool = RecordPool::new(arity);
        for positions in indexes {
            pool.add_secondary_index(positions.clone());
        }
        pool
    }

    /// Add a non-unique index over the given key positions.  Existing records
    /// are indexed immediately.
    pub fn add_secondary_index(&mut self, positions: Vec<usize>) {
        // Avoid duplicate indexes over the same positions.
        if self.secondary.iter().any(|ix| ix.positions == positions) {
            return;
        }
        let mut ix = SecondaryIndex {
            positions,
            buckets: HashMap::new(),
        };
        for (slot, rec) in self.slots.iter().enumerate() {
            if let Some(rec) = rec {
                ix.insert(&rec.key, slot);
            }
        }
        self.secondary.push(ix);
    }

    /// Positions covered by each secondary index (for introspection/tests).
    pub fn secondary_index_specs(&self) -> Vec<Vec<usize>> {
        self.secondary
            .iter()
            .map(|ix| ix.positions.clone())
            .collect()
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.primary.len()
    }

    pub fn is_empty(&self) -> bool {
        self.primary.is_empty()
    }

    /// Capacity of the underlying slab (live + free slots).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn bump(&self, f: impl FnOnce(&mut PoolCounters)) {
        let mut c = self.counters.get();
        f(&mut c);
        self.counters.set(c);
    }

    /// Snapshot of the operation counters.
    pub fn counters(&self) -> PoolCounters {
        self.counters.get()
    }

    /// Reset the operation counters.
    pub fn reset_counters(&self) {
        self.counters.set(PoolCounters::default());
    }

    /// Multiplicity stored for `key` (0 when absent).
    pub fn get(&self, key: &Tuple) -> Mult {
        self.bump(|c| {
            c.lookups += 1;
            c.slots_touched += 1;
        });
        self.primary
            .get(key)
            .and_then(|&slot| self.slots[slot].as_ref())
            .map(|r| r.value)
            .unwrap_or(0.0)
    }

    /// Whether a record for `key` exists.
    pub fn contains(&self, key: &Tuple) -> bool {
        self.primary.contains_key(key)
    }

    /// Add `delta` to the multiplicity of `key`, inserting a fresh record or
    /// deleting one whose multiplicity reaches zero.  This is the `+=` of the
    /// maintenance triggers.
    pub fn update(&mut self, key: Tuple, delta: Mult) {
        debug_assert_eq!(key.arity(), self.arity, "key arity mismatch");
        if delta == 0.0 {
            return;
        }
        self.bump(|c| c.updates += 1);
        if let Some(&slot) = self.primary.get(&key) {
            let remove = {
                let rec = self.slots[slot].as_mut().expect("dangling primary entry");
                rec.value += delta;
                rec.value.abs() < MULT_EPSILON
            };
            if remove {
                self.delete(&key);
            }
        } else {
            self.insert(key, delta);
        }
    }

    /// Set the multiplicity of `key` to exactly `value` (the `:=` of local
    /// delta views), removing the record when the value is zero.
    pub fn set(&mut self, key: Tuple, value: Mult) {
        if value.abs() < MULT_EPSILON {
            self.delete(&key);
        } else if let Some(&slot) = self.primary.get(&key) {
            self.bump(|c| c.updates += 1);
            self.slots[slot]
                .as_mut()
                .expect("dangling primary entry")
                .value = value;
        } else {
            self.insert(key, value);
        }
    }

    fn insert(&mut self, key: Tuple, value: Mult) {
        self.bump(|c| {
            c.inserts += 1;
            c.slots_touched += 1;
        });
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        for ix in &mut self.secondary {
            ix.insert(&key, slot);
        }
        self.primary.insert(key.clone(), slot);
        self.slots[slot] = Some(Record { key, value });
    }

    /// Remove the record for `key` (no-op when absent).
    pub fn delete(&mut self, key: &Tuple) {
        if let Some(slot) = self.primary.remove(key) {
            self.bump(|c| {
                c.deletes += 1;
                c.slots_touched += 1;
            });
            for ix in &mut self.secondary {
                ix.remove(key, slot);
            }
            self.slots[slot] = None;
            self.free.push(slot);
        }
    }

    /// Remove every record but keep allocated capacity and indexes.
    pub fn clear(&mut self) {
        self.primary.clear();
        for ix in &mut self.secondary {
            ix.buckets.clear();
        }
        self.free.clear();
        for (i, s) in self.slots.iter_mut().enumerate() {
            *s = None;
            self.free.push(i);
        }
    }

    /// Iterate over all live records.
    pub fn foreach(&self, f: &mut dyn FnMut(&Tuple, Mult)) {
        self.bump(|c| {
            c.scans += 1;
            c.slots_touched += self.primary.len() as u64;
        });
        for rec in self.slots.iter().flatten() {
            f(&rec.key, rec.value);
        }
    }

    /// Iterate over records whose key columns at `positions` equal
    /// `key_vals`.  Uses a matching secondary index when available and falls
    /// back to a filtered scan otherwise.
    pub fn slice(&self, positions: &[usize], key_vals: &[Value], f: &mut dyn FnMut(&Tuple, Mult)) {
        if let Some(ix) = self.secondary.iter().find(|ix| ix.positions == positions) {
            self.bump(|c| c.slices += 1);
            let probe = Tuple(key_vals.to_vec());
            if let Some(slots) = ix.buckets.get(&probe) {
                self.bump(|c| c.slots_touched += slots.len() as u64);
                for &slot in slots {
                    if let Some(rec) = &self.slots[slot] {
                        f(&rec.key, rec.value);
                    }
                }
            }
        } else {
            // Unindexed slice: filtered scan.
            self.bump(|c| {
                c.slices += 1;
                c.slots_touched += self.primary.len() as u64;
            });
            for rec in self.slots.iter().flatten() {
                if positions
                    .iter()
                    .zip(key_vals)
                    .all(|(&p, v)| rec.key.get(p) == v)
                {
                    f(&rec.key, rec.value);
                }
            }
        }
    }

    /// Whether a secondary index over exactly these positions exists.
    pub fn has_secondary_index(&self, positions: &[usize]) -> bool {
        self.secondary.iter().any(|ix| ix.positions == positions)
    }

    /// Deterministically ordered contents (tests, debugging, result output).
    pub fn sorted(&self) -> Vec<(Tuple, Mult)> {
        let mut v: Vec<(Tuple, Mult)> = self
            .slots
            .iter()
            .flatten()
            .map(|r| (r.key.clone(), r.value))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Total approximate memory footprint in bytes of the live records.
    pub fn payload_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|r| r.key.serialized_size() + 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotdog_algebra::tuple;

    #[test]
    fn update_inserts_accumulates_and_deletes() {
        let mut p = RecordPool::new(2);
        p.update(tuple![1, 2], 1.0);
        p.update(tuple![1, 2], 2.0);
        assert_eq!(p.get(&tuple![1, 2]), 3.0);
        assert_eq!(p.len(), 1);
        p.update(tuple![1, 2], -3.0);
        assert_eq!(p.len(), 0);
        assert_eq!(p.get(&tuple![1, 2]), 0.0);
    }

    #[test]
    fn free_slots_are_recycled() {
        let mut p = RecordPool::new(1);
        p.update(tuple![1], 1.0);
        p.update(tuple![2], 1.0);
        p.delete(&tuple![1]);
        let cap = p.capacity();
        p.update(tuple![3], 1.0);
        assert_eq!(p.capacity(), cap, "deleted slot should be reused");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn secondary_index_slices() {
        let mut p = RecordPool::with_secondary_indexes(2, &[vec![1]]);
        p.update(tuple![1, 10], 1.0);
        p.update(tuple![2, 10], 2.0);
        p.update(tuple![3, 20], 3.0);
        let mut seen = Vec::new();
        p.slice(&[1], &[Value::Long(10)], &mut |t, m| {
            seen.push((t.clone(), m));
        });
        seen.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1 + seen[1].1, 3.0);
        // slice through the index must not scan all slots
        assert!(p.counters().slots_touched < 10);
    }

    #[test]
    fn unindexed_slice_falls_back_to_scan() {
        let mut p = RecordPool::new(2);
        p.update(tuple![1, 10], 1.0);
        p.update(tuple![2, 20], 1.0);
        let mut count = 0;
        p.slice(&[0], &[Value::Long(2)], &mut |_, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn secondary_index_stays_consistent_under_deletes() {
        let mut p = RecordPool::with_secondary_indexes(2, &[vec![1]]);
        for i in 0..100i64 {
            p.update(tuple![i, i % 5], 1.0);
        }
        for i in (0..100i64).step_by(2) {
            p.update(tuple![i, i % 5], -1.0);
        }
        let mut count = 0;
        p.slice(&[1], &[Value::Long(3)], &mut |_, _| count += 1);
        // keys with i % 5 == 3 and i odd: 3, 13, 23, ..., 93 -> 10
        assert_eq!(count, 10);
        assert_eq!(p.len(), 50);
    }

    #[test]
    fn set_overwrites_value() {
        let mut p = RecordPool::new(1);
        p.set(tuple![1], 5.0);
        p.set(tuple![1], 2.0);
        assert_eq!(p.get(&tuple![1]), 2.0);
        p.set(tuple![1], 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn foreach_visits_all_live_records() {
        let mut p = RecordPool::new(1);
        for i in 0..10i64 {
            p.update(tuple![i], 1.0);
        }
        p.delete(&tuple![4]);
        let mut n = 0;
        p.foreach(&mut |_, _| n += 1);
        assert_eq!(n, 9);
    }

    #[test]
    fn adding_index_indexes_existing_records() {
        let mut p = RecordPool::new(2);
        p.update(tuple![1, 7], 1.0);
        p.update(tuple![2, 7], 1.0);
        p.add_secondary_index(vec![1]);
        assert!(p.has_secondary_index(&[1]));
        let mut n = 0;
        p.slice(&[1], &[Value::Long(7)], &mut |_, _| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn duplicate_index_specs_are_ignored() {
        let mut p = RecordPool::new(2);
        p.add_secondary_index(vec![0]);
        p.add_secondary_index(vec![0]);
        assert_eq!(p.secondary_index_specs().len(), 1);
    }

    #[test]
    fn counters_track_operations() {
        let mut p = RecordPool::new(1);
        p.update(tuple![1], 1.0);
        p.get(&tuple![1]);
        p.foreach(&mut |_, _| {});
        let c = p.counters();
        assert_eq!(c.inserts, 1);
        assert_eq!(c.lookups, 1);
        assert_eq!(c.scans, 1);
        assert!(c.probes() >= 2);
        p.reset_counters();
        assert_eq!(p.counters(), PoolCounters::default());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut p = RecordPool::new(1);
        for i in 0..16i64 {
            p.update(tuple![i], 1.0);
        }
        let cap = p.capacity();
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.capacity(), cap);
        p.update(tuple![1], 1.0);
        assert_eq!(p.len(), 1);
    }
}
