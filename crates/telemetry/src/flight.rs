//! The flight recorder: a bounded in-memory ring of structured events.
//!
//! Instrumented code records *what the system decided* (batch admitted /
//! coalesced / executed, controller step, backpressure engaged, worker
//! spawned / killed) as typed key-value events.  The ring keeps the last
//! [`FlightRecorder::capacity`] events and counts what it dropped, so a
//! long run costs bounded memory and a post-mortem still sees the recent
//! history — the black-box model, not the log-file model.
//!
//! Two escape hatches, both environment-driven:
//!
//! * `HOTDOG_LOG=1` mirrors every event to stderr as it happens (the
//!   structured replacement for the ad-hoc `eprintln!`s the net crate
//!   used to carry);
//! * `HOTDOG_TELEMETRY=<path>` makes [`crate::Telemetry`] flush the ring
//!   as JSON lines to `<path>` (appending) when the owning cluster is
//!   dropped.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity (events kept).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded event: a monotone sequence number, microseconds since the
/// recorder was created, an event kind and its fields.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    pub seq: u64,
    pub micros: u64,
    pub kind: &'static str,
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Render as one JSON object (the flight-recorder JSONL line format).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_us\":{},\"event\":\"{}\"",
            self.seq,
            self.micros,
            escape(self.kind)
        );
        for (k, v) in &self.fields {
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, ",\"{}\":{n}", escape(k));
                }
                FieldValue::I64(n) => {
                    let _ = write!(out, ",\"{}\":{n}", escape(k));
                }
                FieldValue::F64(x) => {
                    if x.is_finite() {
                        let _ = write!(out, ",\"{}\":{x}", escape(k));
                    } else {
                        let _ = write!(out, ",\"{}\":\"{x}\"", escape(k));
                    }
                }
                FieldValue::Str(s) => {
                    let _ = write!(out, ",\"{}\":\"{}\"", escape(k), escape(s));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Ring {
    events: VecDeque<Event>,
    seq: u64,
}

/// Bounded in-memory event recorder (see the module docs).
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
    dropped: AtomicU64,
    mirror: bool,
    origin: Instant,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Recorder keeping the last `capacity` events; the stderr mirror is
    /// taken from `HOTDOG_LOG` (`1` enables it).
    pub fn with_capacity(capacity: usize) -> Self {
        let mirror = std::env::var("HOTDOG_LOG").is_ok_and(|v| v == "1");
        FlightRecorder {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                seq: 0,
            }),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            mirror,
            origin: Instant::now(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event (dropping the oldest at capacity).
    pub fn record(&self, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        let micros = self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        ring.seq += 1;
        let event = Event {
            seq: ring.seq,
            micros,
            kind,
            fields,
        };
        if self.mirror {
            eprintln!("hotdog: {}", event.to_json());
        }
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.events.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events of one kind currently held, oldest first.
    pub fn events_of(&self, kind: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect()
    }

    /// How many events were evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Render the held events as JSON lines.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts_it() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.record("tick", vec![("i", i.into())]);
        }
        let events = fr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 3); // 1 and 2 evicted
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.events_of("tick").len(), 3);
        assert_eq!(fr.events_of("other").len(), 0);
    }

    #[test]
    fn jsonl_escapes_and_types_fields() {
        let fr = FlightRecorder::with_capacity(8);
        fr.record(
            "kill",
            vec![
                ("worker", 3u64.into()),
                ("reason", "say \"why\"\n".into()),
                ("delta", (-2i64).into()),
                ("ratio", 0.5f64.into()),
            ],
        );
        let line = fr.events()[0].to_json();
        assert!(line.starts_with("{\"seq\":1,"));
        assert!(line.contains("\"event\":\"kill\""));
        assert!(line.contains("\"worker\":3"));
        assert!(line.contains("\"reason\":\"say \\\"why\\\"\\n\""));
        assert!(line.contains("\"delta\":-2"));
        assert!(line.contains("\"ratio\":0.5"));
        assert!(line.ends_with('}'));
    }
}
