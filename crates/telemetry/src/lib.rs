//! # hotdog-telemetry
//!
//! The observability substrate of the distributed runtime: a lock-cheap
//! [metrics registry](metrics) (counters, gauges, fixed log2-bucket
//! histograms — no external deps, matching the vendored-offline policy)
//! plus a bounded in-memory [flight recorder](flight) of structured
//! events, bundled as one [`Telemetry`] handle that driver, transport and
//! benches share through an `Arc`.
//!
//! Three read paths:
//!
//! * **[`MetricsSnapshot`]** — frozen maps with derived equality.  Its
//!   [`MetricsSnapshot::deterministic`] subset (`driver.*` / `worker.*`
//!   counters) must be bit-identical across the threaded and TCP
//!   backends; the workspace telemetry oracle asserts it.
//! * **`SIGUSR1` / drop dumps** — [`Telemetry::install_signal_dump`]
//!   arms a flag-only signal handler; instrumented code polls
//!   [`Telemetry::poll_dump`] at safe points and prints
//!   [`Telemetry::dump_text`] to stderr.  With `HOTDOG_TELEMETRY=<path>`
//!   set, dropping the owning cluster appends the flight ring as JSON
//!   lines (plus one final `metrics.snapshot` line) to `<path>`.
//! * **bench embedding** — `hotdog-bench` folds key counters (messages,
//!   bytes, instructions) into `BENCH_runtime.json` per run.
//!
//! `HOTDOG_LOG=1` additionally mirrors every flight event to stderr as
//! it happens.

#![deny(unsafe_code)]

pub mod flight;
pub mod metrics;
pub mod signal;
pub mod trace;

pub use flight::{Event, FieldValue, FlightRecorder};
pub use metrics::{
    bucket_floor, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry, HISTOGRAM_BUCKETS,
};
pub use trace::{
    chrome_trace_json, critical_path, structure as trace_structure, ActiveSpan, CriticalPath,
    SpanContext, SpanRecord, SpanStructure, Tracer, WorkerTracer, TRACE_ENV,
};

use std::io::Write as _;
use std::sync::Arc;

/// Environment variable naming the JSONL flush path for drop-time dumps.
pub const TELEMETRY_ENV: &str = "HOTDOG_TELEMETRY";

/// One shared telemetry handle: a [`Registry`] plus a [`FlightRecorder`].
///
/// The driver creates one per cluster (or adopts the transport's, so the
/// wire-level and scheduler-level metrics land in the same registry) and
/// shares it via `Arc` with reader threads and callers.
#[derive(Default)]
pub struct Telemetry {
    registry: Registry,
    flight: FlightRecorder,
    tracer: Tracer,
}

impl Telemetry {
    /// Fresh telemetry with the default flight-ring capacity.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Fresh telemetry behind an `Arc`, ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(Telemetry::new())
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The span tracer (driver-side span store; see [`trace`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Open the root span of a new batch trace (track 0).
    pub fn begin_batch_root(&self) -> ActiveSpan {
        self.tracer.begin_root("batch")
    }

    /// Open a driver-side span (track 0) under `ctx`; `None` when the
    /// context carries no trace.
    pub fn begin_span(&self, ctx: SpanContext, name: &'static str) -> Option<ActiveSpan> {
        self.tracer.begin(ctx, name, 0)
    }

    /// Open a span on an explicit track (the simulated cluster records
    /// its per-worker trigger spans driver-side).
    pub fn begin_span_on(
        &self,
        ctx: SpanContext,
        name: &'static str,
        track: u32,
    ) -> Option<ActiveSpan> {
        self.tracer.begin(ctx, name, track)
    }

    /// Close a driver-side span, folding its duration into the matching
    /// `trace.*` stage histogram.  No-op for `None` (the untraced case).
    pub fn finish_span(&self, span: Option<ActiveSpan>) {
        if let Some(span) = span {
            let rec = self.tracer.finish(span);
            trace::fold_span_histogram(&self.registry, &rec);
        }
    }

    /// Ingest worker-reported span records (the `Stats` piggyback),
    /// folding each duration into its `trace.*` stage histogram.
    pub fn ingest_spans(&self, spans: Vec<SpanRecord>) {
        for rec in &spans {
            trace::fold_span_histogram(&self.registry, rec);
        }
        self.tracer.record_all(spans);
    }

    /// Every span recorded so far (driver plus ingested worker records).
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.tracer.spans()
    }

    /// Get or register a counter (see [`Registry::counter`]).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Get or register a gauge (see [`Registry::gauge`]).
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// Get or register a histogram (see [`Registry::histogram`]).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// Record one flight event.
    pub fn event(&self, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        self.flight.record(kind, fields);
    }

    /// Freeze the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Arm the `SIGUSR1` handler for this process (idempotent).  Pair
    /// with [`Telemetry::poll_dump`] at safe points.
    pub fn install_signal_dump(&self) {
        signal::install();
    }

    /// If a `SIGUSR1` arrived since the last poll, print the
    /// human-readable dump to stderr.  One relaxed atomic read when idle.
    pub fn poll_dump(&self) {
        if signal::take_pending() {
            eprintln!("{}", self.dump_text());
        }
    }

    /// Human-readable dump: every metric, then the most recent flight
    /// events.
    pub fn dump_text(&self) -> String {
        let mut out = String::from("== hotdog telemetry ==\n");
        out.push_str(&self.snapshot().render_text());
        let events = self.flight.events();
        out.push_str(&format!(
            "-- flight recorder: {} event(s) held, {} dropped --\n",
            events.len(),
            self.flight.dropped()
        ));
        for e in events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Append the flight ring as JSON lines (plus one final
    /// `metrics.snapshot` line carrying every counter) to `path`.
    pub fn flush_jsonl(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(self.flight.render_jsonl().as_bytes())?;
        let snap = self.snapshot();
        let mut line = String::from("{\"event\":\"metrics.snapshot\"");
        for (k, v) in &snap.counters {
            line.push_str(&format!(",\"{k}\":{v}"));
        }
        line.push_str("}\n");
        file.write_all(line.as_bytes())
    }

    /// Drop-time hook: flush to `HOTDOG_TELEMETRY`'s path when set.
    /// Best-effort — a broken path must not panic a destructor — but
    /// never silent: a failed flush records one `telemetry.flush_failed`
    /// flight event and mirrors it to stderr, so an unwritable path shows
    /// up instead of vanishing with the process.
    pub fn flush_on_drop(&self) {
        if let Ok(path) = std::env::var(TELEMETRY_ENV) {
            if !path.is_empty() {
                if let Err(err) = self.flush_jsonl(&path) {
                    self.flight.record(
                        "telemetry.flush_failed",
                        vec![
                            ("path", path.as_str().into()),
                            ("error", err.to_string().into()),
                        ],
                    );
                    if let Some(event) = self.flight.events_of("telemetry.flush_failed").last() {
                        eprintln!("hotdog: {}", event.to_json());
                    }
                }
            }
        }
    }

    /// Whether `HOTDOG_TRACE` names a trace export path.
    pub fn trace_export_enabled() -> bool {
        std::env::var(TRACE_ENV).is_ok_and(|p| !p.is_empty())
    }

    /// Write every recorded span as one complete Chrome trace-event JSON
    /// document to `path` (overwriting: one complete file per run).
    pub fn flush_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, chrome_trace_json(&self.tracer.spans()))
    }

    /// Drop-time hook: export the trace to `HOTDOG_TRACE`'s path when
    /// set.  Same failure contract as [`Telemetry::flush_on_drop`].
    pub fn flush_trace_on_drop(&self) {
        if let Ok(path) = std::env::var(TRACE_ENV) {
            if !path.is_empty() {
                if let Err(err) = self.flush_trace(&path) {
                    self.flight.record(
                        "telemetry.trace_flush_failed",
                        vec![
                            ("path", path.as_str().into()),
                            ("error", err.to_string().into()),
                        ],
                    );
                    if let Some(event) =
                        self.flight.events_of("telemetry.trace_flush_failed").last()
                    {
                        eprintln!("hotdog: {}", event.to_json());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_text_carries_metrics_and_events() {
        let t = Telemetry::new();
        t.counter("driver.requests.total").add(3);
        t.event("batch.admitted", vec![("relation", "R".into())]);
        let dump = t.dump_text();
        assert!(dump.contains("driver.requests.total = 3"));
        assert!(dump.contains("\"event\":\"batch.admitted\""));
        assert!(dump.contains("1 event(s) held, 0 dropped"));
    }

    #[test]
    fn jsonl_flush_appends_snapshot_line() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "hotdog-telemetry-test-{}.jsonl",
            std::process::id()
        ));
        let path_str = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        let t = Telemetry::new();
        t.counter("net.frames_sent").add(2);
        t.event("worker.spawned", vec![("worker", 0u64.into())]);
        t.flush_jsonl(&path_str).expect("flush");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"worker.spawned\""));
        assert!(lines[1].contains("\"event\":\"metrics.snapshot\""));
        assert!(lines[1].contains("\"net.frames_sent\":2"));
    }

    #[test]
    fn signal_poll_is_quiet_without_a_signal() {
        let t = Telemetry::new();
        t.install_signal_dump();
        t.poll_dump(); // must not print or panic
        assert!(!signal::take_pending());
    }
}
