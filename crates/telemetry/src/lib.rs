//! # hotdog-telemetry
//!
//! The observability substrate of the distributed runtime: a lock-cheap
//! [metrics registry](metrics) (counters, gauges, fixed log2-bucket
//! histograms — no external deps, matching the vendored-offline policy)
//! plus a bounded in-memory [flight recorder](flight) of structured
//! events, bundled as one [`Telemetry`] handle that driver, transport and
//! benches share through an `Arc`.
//!
//! Three read paths:
//!
//! * **[`MetricsSnapshot`]** — frozen maps with derived equality.  Its
//!   [`MetricsSnapshot::deterministic`] subset (`driver.*` / `worker.*`
//!   counters) must be bit-identical across the threaded and TCP
//!   backends; the workspace telemetry oracle asserts it.
//! * **`SIGUSR1` / drop dumps** — [`Telemetry::install_signal_dump`]
//!   arms a flag-only signal handler; instrumented code polls
//!   [`Telemetry::poll_dump`] at safe points and prints
//!   [`Telemetry::dump_text`] to stderr.  With `HOTDOG_TELEMETRY=<path>`
//!   set, dropping the owning cluster appends the flight ring as JSON
//!   lines (plus one final `metrics.snapshot` line) to `<path>`.
//! * **bench embedding** — `hotdog-bench` folds key counters (messages,
//!   bytes, instructions) into `BENCH_runtime.json` per run.
//!
//! `HOTDOG_LOG=1` additionally mirrors every flight event to stderr as
//! it happens.

#![deny(unsafe_code)]

pub mod flight;
pub mod metrics;
pub mod signal;

pub use flight::{Event, FieldValue, FlightRecorder};
pub use metrics::{
    bucket_floor, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry, HISTOGRAM_BUCKETS,
};

use std::io::Write as _;
use std::sync::Arc;

/// Environment variable naming the JSONL flush path for drop-time dumps.
pub const TELEMETRY_ENV: &str = "HOTDOG_TELEMETRY";

/// One shared telemetry handle: a [`Registry`] plus a [`FlightRecorder`].
///
/// The driver creates one per cluster (or adopts the transport's, so the
/// wire-level and scheduler-level metrics land in the same registry) and
/// shares it via `Arc` with reader threads and callers.
#[derive(Default)]
pub struct Telemetry {
    registry: Registry,
    flight: FlightRecorder,
}

impl Telemetry {
    /// Fresh telemetry with the default flight-ring capacity.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Fresh telemetry behind an `Arc`, ready to share.
    pub fn shared() -> Arc<Self> {
        Arc::new(Telemetry::new())
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Get or register a counter (see [`Registry::counter`]).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Get or register a gauge (see [`Registry::gauge`]).
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// Get or register a histogram (see [`Registry::histogram`]).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// Record one flight event.
    pub fn event(&self, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        self.flight.record(kind, fields);
    }

    /// Freeze the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Arm the `SIGUSR1` handler for this process (idempotent).  Pair
    /// with [`Telemetry::poll_dump`] at safe points.
    pub fn install_signal_dump(&self) {
        signal::install();
    }

    /// If a `SIGUSR1` arrived since the last poll, print the
    /// human-readable dump to stderr.  One relaxed atomic read when idle.
    pub fn poll_dump(&self) {
        if signal::take_pending() {
            eprintln!("{}", self.dump_text());
        }
    }

    /// Human-readable dump: every metric, then the most recent flight
    /// events.
    pub fn dump_text(&self) -> String {
        let mut out = String::from("== hotdog telemetry ==\n");
        out.push_str(&self.snapshot().render_text());
        let events = self.flight.events();
        out.push_str(&format!(
            "-- flight recorder: {} event(s) held, {} dropped --\n",
            events.len(),
            self.flight.dropped()
        ));
        for e in events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Append the flight ring as JSON lines (plus one final
    /// `metrics.snapshot` line carrying every counter) to `path`.
    pub fn flush_jsonl(&self, path: &str) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(self.flight.render_jsonl().as_bytes())?;
        let snap = self.snapshot();
        let mut line = String::from("{\"event\":\"metrics.snapshot\"");
        for (k, v) in &snap.counters {
            line.push_str(&format!(",\"{k}\":{v}"));
        }
        line.push_str("}\n");
        file.write_all(line.as_bytes())
    }

    /// Drop-time hook: flush to `HOTDOG_TELEMETRY`'s path when set
    /// (best-effort — a broken path must not panic a destructor).
    pub fn flush_on_drop(&self) {
        if let Ok(path) = std::env::var(TELEMETRY_ENV) {
            if !path.is_empty() {
                let _ = self.flush_jsonl(&path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_text_carries_metrics_and_events() {
        let t = Telemetry::new();
        t.counter("driver.requests.total").add(3);
        t.event("batch.admitted", vec![("relation", "R".into())]);
        let dump = t.dump_text();
        assert!(dump.contains("driver.requests.total = 3"));
        assert!(dump.contains("\"event\":\"batch.admitted\""));
        assert!(dump.contains("1 event(s) held, 0 dropped"));
    }

    #[test]
    fn jsonl_flush_appends_snapshot_line() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "hotdog-telemetry-test-{}.jsonl",
            std::process::id()
        ));
        let path_str = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        let t = Telemetry::new();
        t.counter("net.frames_sent").add(2);
        t.event("worker.spawned", vec![("worker", 0u64.into())]);
        t.flush_jsonl(&path_str).expect("flush");
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"event\":\"worker.spawned\""));
        assert!(lines[1].contains("\"event\":\"metrics.snapshot\""));
        assert!(lines[1].contains("\"net.frames_sent\":2"));
    }

    #[test]
    fn signal_poll_is_quiet_without_a_signal() {
        let t = Telemetry::new();
        t.install_signal_dump();
        t.poll_dump(); // must not print or panic
        assert!(!signal::take_pending());
    }
}
